//! The shared coloring-adversary machinery behind Theorems 5 and 6.
//!
//! [`AdversaryCore`] holds the committed adversary state and the sequential
//! case analysis of Section 3 ([`AdversaryCore::answer`]). The round-commit
//! protocol in [`crate::round_commit`] drives it: all pairs of one comparison
//! round are answered by replaying them in **pair order** against the state
//! at round start, so the answers an algorithm observes never depend on
//! which OS thread asked first or how the round was cut into batch waves.
//!
//! The knowledge graph lives on the packed substrates of
//! [`ecs_graph::bitset`]: the known-unequal relation is a [`PairBitset`]
//! (one bit per unordered vertex pair, word-granular edge tests, per-root
//! degree counters), and the mark flags and per-color membership filters are
//! [`BitRow`]s, so the hot candidate checks of `find_swap_partner`
//! ("is this class adjacent to the candidate?", "does this class still have
//! an unmarked member?") collapse into word-parallel row intersections
//! instead of hash-set walks. The per-color member *lists* are kept as
//! ordered vectors alongside the masks: the adversary's swap-partner choice
//! depends on list order (insertion order mutated by `swap_remove`), and the
//! golden transcripts pin that order, so the lists stay the source of truth
//! for iteration while the masks answer every order-independent question.
//!
//! Answering and cost accounting are deliberately split:
//! [`AdversaryCore::answer`] applies the swap/mark/edge/contract intents of
//! one pair without counting it, and [`AdversaryCore::record`] charges one
//! comparison (and optionally a transcript entry) per *query served* — the
//! round protocol plans a pair once but charges every repeat.

use ecs_graph::{BitRow, PairBitset, UnionFind};
use ecs_model::{Partition, Transcript};

/// Why an element ended up marked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// The element's vertex reached degree above the threshold.
    HighElementDegree,
    /// The element's whole color class ran out of swap partners.
    HighColorDegree,
    /// Both of the above.
    Both,
}

/// The mutable-state interface the [`crate::RoundCommit`] protocol drives.
///
/// Two implementations exist: the packed [`AdversaryCore`] (production) and
/// the pointer-based [`crate::legacy::LegacyCore`] retained as the reference
/// for the substrate-parity suite and the packed-vs-pointer benchmarks.
///
/// Besides answering and charging, the state versions its knowledge: every
/// element carries the **commit epoch** at which its class membership, mark,
/// or incident known-unequal edges last changed. The incremental plan cache
/// in [`crate::RoundCommit`] keys its entries on these epochs — an entry
/// whose endpoints' epochs are unchanged is reused verbatim instead of being
/// replayed.
pub trait AdversaryState {
    /// Number of elements.
    fn n(&self) -> usize;

    /// Answers one equivalence test and applies its swap/mark/edge/contract
    /// intents **without charging it** — the planning half of the protocol.
    fn answer(&mut self, a: usize, b: usize) -> bool;

    /// Charges one served query (cost counter and optional transcript).
    fn record(&mut self, a: usize, b: usize, answer: bool);

    /// The monotone commit counter: bumped once per
    /// [`AdversaryState::commit_round`].
    fn commit_epoch(&self) -> u64;

    /// The commit epoch at which `elem`'s knowledge (class membership, mark,
    /// or incident known-unequal edges recorded on it as a queried endpoint)
    /// last changed. Zero until the element's first change is committed.
    fn epoch_of(&self, elem: usize) -> u64;

    /// Seals the answers planned since the previous commit: bumps the commit
    /// epoch, stamps every element whose knowledge changed in the window,
    /// and returns that dirty set (each element at most once, in first-touch
    /// order).
    fn commit_round(&mut self) -> &[usize];
}

/// The per-element knowledge-epoch bookkeeping behind the incremental plan
/// cache, shared by both [`AdversaryState`] substrates so their epoch
/// streams stay bit-identical: a monotone commit counter, the epoch at which
/// each element last changed, and the dirty set accumulated since the last
/// commit (deduplicated through a bit row).
#[derive(Debug)]
pub(crate) struct EpochTracker {
    commit_epoch: u64,
    elem_epoch: Vec<u64>,
    /// Elements touched since the last commit, in first-touch order.
    pending: Vec<usize>,
    /// Dedup mask over `pending`.
    pending_mask: BitRow,
    /// The most recent commit's dirty set, handed back by `commit`.
    last_dirty: Vec<usize>,
}

impl EpochTracker {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            commit_epoch: 0,
            elem_epoch: vec![0; n],
            pending: Vec::new(),
            pending_mask: BitRow::new(n),
            last_dirty: Vec::new(),
        }
    }

    /// Records that `elem`'s knowledge changed in the current window.
    pub(crate) fn touch(&mut self, elem: usize) {
        if self.pending_mask.set(elem) {
            self.pending.push(elem);
        }
    }

    pub(crate) fn commit_epoch(&self) -> u64 {
        self.commit_epoch
    }

    pub(crate) fn epoch_of(&self, elem: usize) -> u64 {
        self.elem_epoch[elem]
    }

    /// Bumps the epoch, stamps the pending dirty set, and returns it.
    pub(crate) fn commit(&mut self) -> &[usize] {
        self.commit_epoch += 1;
        for &e in &self.pending {
            self.elem_epoch[e] = self.commit_epoch;
            self.pending_mask.clear(e);
        }
        std::mem::swap(&mut self.pending, &mut self.last_dirty);
        self.pending.clear();
        &self.last_dirty
    }
}

/// The adversary's mutable state. The public adversary types wrap this (via
/// [`crate::RoundCommit`]) in a mutex so it can sit behind the `&self` oracle
/// interface.
#[derive(Debug)]
pub struct AdversaryCore {
    n: usize,
    /// Degree threshold: an unmarked element exceeding this is marked.
    degree_threshold: usize,
    /// Color (eventual class) of every element.
    color: Vec<usize>,
    /// Elements of each color in list order (marked and unmarked alike).
    /// Iteration order is observable through swap-partner choice, so these
    /// ordered lists stay authoritative; the masks below mirror them.
    members: Vec<Vec<usize>>,
    /// Position of each element inside its color's member list — turns the
    /// legacy `position()` scan in a swap into O(1) bookkeeping.
    member_pos: Vec<usize>,
    /// Bit-per-element mirror of `members`, one row per color, for
    /// word-parallel class filters.
    members_mask: Vec<BitRow>,
    /// Elements marked with [`Mark::HighElementDegree`] (possibly `Both`).
    mark_degree: BitRow,
    /// Elements marked with [`Mark::HighColorDegree`] (possibly `Both`).
    mark_color: BitRow,
    /// Union of the two mark rows — the "is marked at all" filter.
    marked: BitRow,
    /// Whether the whole color class has been marked.
    color_marked: Vec<bool>,
    /// Colors that must dodge marking by swapping away if possible
    /// (the "smallest class color" of Theorem 6).
    protected_color: Option<usize>,
    /// Contraction structure over elements (vertices of the knowledge graph).
    uf: UnionFind,
    /// Known-different edges between vertex roots: one bit per unordered
    /// pair, packed upper-triangular.
    unequal: PairBitset,
    /// Degree of every live root in the known-unequal graph.
    degree: Vec<u32>,
    /// Reused neighbour buffer for contractions (no per-contract allocation).
    scratch: Vec<usize>,
    /// Number of equivalence tests answered.
    comparisons: u64,
    /// Number of marked elements.
    marked_elements: usize,
    /// Number of swaps performed (diagnostic).
    swaps: u64,
    /// Optional record of every served query, for consistency audits.
    transcript: Option<Transcript>,
    /// Per-element knowledge epochs for the incremental plan cache.
    epochs: EpochTracker,
}

impl AdversaryCore {
    /// Creates the adversary with the given color class sizes. `sizes[c]` is
    /// the number of elements that will end up in class `c`; elements are
    /// assigned to colors in blocks (the algorithm cannot observe the initial
    /// layout because every answer it gets is adversarial anyway).
    ///
    /// # Panics
    ///
    /// Panics if the sizes are empty, contain zero, or the threshold is zero.
    pub fn new(sizes: &[usize], degree_threshold: usize, protected_color: Option<usize>) -> Self {
        assert!(!sizes.is_empty(), "need at least one color class");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "color class sizes must be positive"
        );
        assert!(degree_threshold > 0, "degree threshold must be positive");
        if let Some(p) = protected_color {
            assert!(p < sizes.len(), "protected color out of range");
        }
        let n: usize = sizes.iter().sum();
        let mut color = Vec::with_capacity(n);
        let mut member_pos = Vec::with_capacity(n);
        let mut members = vec![Vec::new(); sizes.len()];
        let mut members_mask = vec![BitRow::new(n); sizes.len()];
        for (c, &s) in sizes.iter().enumerate() {
            for _ in 0..s {
                let e = color.len();
                member_pos.push(members[c].len());
                members[c].push(e);
                members_mask[c].set(e);
                color.push(c);
            }
        }
        Self {
            n,
            degree_threshold,
            color,
            members,
            member_pos,
            members_mask,
            mark_degree: BitRow::new(n),
            mark_color: BitRow::new(n),
            marked: BitRow::new(n),
            color_marked: vec![false; sizes.len()],
            protected_color,
            uf: UnionFind::new(n),
            unequal: PairBitset::new(n),
            degree: vec![0; n],
            scratch: Vec::new(),
            comparisons: 0,
            marked_elements: 0,
            swaps: 0,
            transcript: None,
            epochs: EpochTracker::new(n),
        }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of equivalence tests answered so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of elements that have been marked so far.
    pub fn marked_elements(&self) -> usize {
        self.marked_elements
    }

    /// Number of color swaps performed (a diagnostic of how long the
    /// adversary managed to stay non-committal).
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Starts recording every served query into a [`Transcript`] (off by
    /// default: a full interrogation stores Θ(n²) entries).
    pub fn enable_transcript(&mut self) {
        if self.transcript.is_none() {
            self.transcript = Some(Transcript::new());
        }
    }

    /// The recorded transcript, when [`AdversaryCore::enable_transcript`] was
    /// called before the run.
    pub fn transcript(&self) -> Option<&Transcript> {
        self.transcript.as_ref()
    }

    /// The mark on `element`, if any, reassembled from the packed mark rows.
    pub fn mark_of(&self, element: usize) -> Option<Mark> {
        match (
            self.mark_degree.test(element),
            self.mark_color.test(element),
        ) {
            (false, false) => None,
            (true, false) => Some(Mark::HighElementDegree),
            (false, true) => Some(Mark::HighColorDegree),
            (true, true) => Some(Mark::Both),
        }
    }

    /// Whether any element of the protected color has been marked (Theorem 6:
    /// the bound counts comparisons until this first happens). One
    /// word-parallel intersection of the color's member mask with the mark
    /// row.
    pub fn protected_color_touched(&self) -> bool {
        match self.protected_color {
            None => false,
            Some(p) => self.members_mask[p].intersects(&self.marked),
        }
    }

    /// The partition the adversary has committed to (current colors). Once an
    /// algorithm has performed enough comparisons to pin the adversary down,
    /// this is the unique partition consistent with every answer given.
    pub fn partition(&self) -> Partition {
        Partition::from_labels(&self.color)
    }

    /// Replays a transcript of answered comparisons against the final colors
    /// and reports whether every answer was consistent (used by tests).
    pub fn is_consistent_with(&self, transcript: &[(usize, usize, bool)]) -> bool {
        transcript
            .iter()
            .all(|&(a, b, same)| (self.color[a] == self.color[b]) == same)
    }

    /// Charges one served query (cost counter and optional transcript). Kept
    /// separate from [`AdversaryCore::answer`] so the round protocol can plan
    /// a pair once but charge every repeat of it.
    pub(crate) fn record(&mut self, a: usize, b: usize, answer: bool) {
        self.comparisons += 1;
        if let Some(t) = self.transcript.as_mut() {
            t.record(a, b, answer);
        }
    }

    fn add_edge(&mut self, ra: usize, rb: usize) {
        if ra == rb {
            return;
        }
        if self.unequal.set(ra, rb) {
            self.degree[ra] += 1;
            self.degree[rb] += 1;
        }
    }

    /// Merges `rb`'s vertex into `ra`'s (or vice versa, whichever survives
    /// union-by-size), migrating the dropped root's packed edge row onto the
    /// keeper with exact degree bookkeeping.
    fn contract(&mut self, ra: usize, rb: usize) {
        if ra == rb {
            return;
        }
        self.uf.union(ra, rb);
        let keep = self.uf.find(ra);
        let drop = if keep == ra { rb } else { ra };
        let mut moved = std::mem::take(&mut self.scratch);
        moved.clear();
        self.unequal.for_each_in_row(drop, |z| moved.push(z));
        for &z in &moved {
            self.unequal.clear(drop, z);
            self.degree[z] -= 1;
            if z != keep && self.unequal.set(keep, z) {
                self.degree[keep] += 1;
                self.degree[z] += 1;
            }
        }
        self.degree[drop] = 0;
        self.scratch = moved;
    }

    fn set_mark(&mut self, element: usize, mark: Mark) {
        let changed = match mark {
            Mark::HighElementDegree => self.mark_degree.set(element),
            Mark::HighColorDegree => self.mark_color.set(element),
            Mark::Both => {
                let degree = self.mark_degree.set(element);
                let color = self.mark_color.set(element);
                degree || color
            }
        };
        if self.marked.set(element) {
            self.marked_elements += 1;
        }
        if changed {
            self.epochs.touch(element);
        }
    }

    /// Marks `element` with "high element degree" if it is unmarked and one
    /// more edge would push its vertex degree above the threshold. For
    /// protected (smallest-class) elements the adversary first tries to swap
    /// the element out of harm's way, per Theorem 6.
    fn maybe_mark_high_degree(&mut self, element: usize) {
        if self.marked.test(element) {
            return;
        }
        let root = self.uf.find_immutable(element);
        if (self.degree[root] as usize) < self.degree_threshold {
            return;
        }
        if Some(self.color[element]) == self.protected_color {
            // Theorem 6: attempt to swap the endangered smallest-class element
            // with any valid unmarked vertex before conceding a mark.
            if let Some(partner) = self.find_swap_partner(element, self.color[element]) {
                self.swap_colors(element, partner);
                return;
            }
        }
        self.set_mark(element, Mark::HighElementDegree);
    }

    /// Looks for an unmarked element `z` of a different color such that
    /// swapping colors with `candidate` keeps the coloring proper:
    /// `z` must not be adjacent to any vertex colored like `candidate`
    /// (`avoid_color`), and `candidate` must not be adjacent to any vertex
    /// colored like `z`.
    ///
    /// Classes are filtered word-parallel — "any unmarked member left?" is
    /// `mask ∧ ¬marked`, and "is this class adjacent to the candidate?" is
    /// one packed-row/mask intersection — while the surviving candidates are
    /// still visited in member-list order, which is the order the golden
    /// transcripts pin.
    fn find_swap_partner(&self, candidate: usize, avoid_color: usize) -> Option<usize> {
        let cand_root = self.uf.find_immutable(candidate);
        let avoid_mask = &self.members_mask[avoid_color];
        for (c, members) in self.members.iter().enumerate() {
            if c == avoid_color || self.color_marked[c] {
                continue;
            }
            // Word-parallel skip: a class with no unmarked member cannot
            // yield a partner (same outcome as scanning its list).
            if !self.members_mask[c].any_and_not(&self.marked) {
                continue;
            }
            // Colors adjacent to the candidate: the candidate's packed edge
            // row intersected with this class's member mask. Unmarked
            // vertices are singleton groups, so a root's own index is its
            // representative element and the mask lookup is exact.
            if self
                .unequal
                .row_intersects(cand_root, &self.members_mask[c])
            {
                continue;
            }
            for &z in members {
                if self.marked.test(z) || self.color[z] != c {
                    continue;
                }
                let z_root = self.uf.find_immutable(z);
                // z must not be adjacent to the avoided color: one more
                // packed row/mask intersection.
                if !self.unequal.row_intersects(z_root, avoid_mask) {
                    return Some(z);
                }
            }
        }
        None
    }

    fn swap_colors(&mut self, a: usize, b: usize) {
        let ca = self.color[a];
        let cb = self.color[b];
        if ca == cb {
            return;
        }
        self.color[a] = cb;
        self.color[b] = ca;
        // Maintain the membership lists with the exact swap_remove-then-push
        // sequence the swap-partner order depends on, plus the packed masks.
        self.remove_member(ca, a);
        self.remove_member(cb, b);
        self.push_member(ca, b);
        self.push_member(cb, a);
        self.members_mask[ca].clear(a);
        self.members_mask[ca].set(b);
        self.members_mask[cb].clear(b);
        self.members_mask[cb].set(a);
        self.swaps += 1;
        self.epochs.touch(a);
        self.epochs.touch(b);
    }

    fn remove_member(&mut self, c: usize, e: usize) {
        let pos = self.member_pos[e];
        debug_assert_eq!(self.members[c][pos], e, "member position out of sync");
        self.members[c].swap_remove(pos);
        if let Some(&moved) = self.members[c].get(pos) {
            self.member_pos[moved] = pos;
        }
    }

    fn push_member(&mut self, c: usize, e: usize) {
        self.member_pos[e] = self.members[c].len();
        self.members[c].push(e);
    }

    fn mark_whole_color(&mut self, color: usize) {
        if self.color_marked[color] {
            return;
        }
        self.color_marked[color] = true;
        for idx in 0..self.members[color].len() {
            let e = self.members[color][idx];
            self.set_mark(e, Mark::HighColorDegree);
        }
    }

    /// Answers one equivalence test, following the case analysis of Section 3,
    /// and applies its swap/mark/edge/contract effects. Does **not** charge
    /// the comparison — the round protocol calls [`AdversaryCore::record`]
    /// per served query instead (a pair is planned once per round but every
    /// repeat of it is charged).
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range.
    pub(crate) fn answer(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "comparison out of range");
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            // Already conceded equal earlier; stay consistent.
            return true;
        }
        if self.unequal.test(ra, rb) {
            // Already answered "not equal" for these vertices.
            return false;
        }

        // Case 1: degree-based marking.
        self.maybe_mark_high_degree(a);
        self.maybe_mark_high_degree(b);

        // Cases 2 and 3: same-colored pair with at least one unmarked element.
        if self.color[a] == self.color[b] && (!self.marked.test(a) || !self.marked.test(b)) {
            let unmarked = if !self.marked.test(a) { a } else { b };
            let common = self.color[a];
            match self.find_swap_partner(unmarked, common) {
                Some(partner) => self.swap_colors(unmarked, partner),
                None => self.mark_whole_color(common),
            }
        }

        // Case 4: answer.
        let both_marked = self.marked.test(a) && self.marked.test(b);
        let same = if both_marked {
            self.color[a] == self.color[b]
        } else {
            // At least one endpoint is still unmarked; after the swap phase
            // their colors must differ, and the adversary answers "not equal".
            debug_assert_ne!(
                self.color[a], self.color[b],
                "unmarked same-colored pair survived the swap/mark phase"
            );
            false
        };

        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if same {
            self.contract(ra, rb);
        } else {
            self.add_edge(ra, rb);
        }
        // A new fact was recorded (settled pairs returned early above): the
        // queried endpoints' knowledge changed. Neighbours whose edges merely
        // migrated in a contraction are deliberately *not* touched — their
        // already-settled answers are eternal, so cache entries on them stay
        // valid.
        self.epochs.touch(a);
        self.epochs.touch(b);
        same
    }
}

impl AdversaryState for AdversaryCore {
    fn n(&self) -> usize {
        AdversaryCore::n(self)
    }

    fn answer(&mut self, a: usize, b: usize) -> bool {
        AdversaryCore::answer(self, a, b)
    }

    fn record(&mut self, a: usize, b: usize, answer: bool) {
        AdversaryCore::record(self, a, b, answer);
    }

    fn commit_epoch(&self) -> u64 {
        self.epochs.commit_epoch()
    }

    fn epoch_of(&self, elem: usize) -> u64 {
        self.epochs.epoch_of(elem)
    }

    fn commit_round(&mut self) -> &[usize] {
        self.epochs.commit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_layout_matches_sizes() {
        let core = AdversaryCore::new(&[3, 3, 3], 2, None);
        assert_eq!(core.n(), 9);
        assert_eq!(core.partition().class_sizes(), vec![3, 3, 3]);
        assert_eq!(core.comparisons(), 0);
        assert_eq!(core.marked_elements(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_sizes() {
        let _ = AdversaryCore::new(&[2, 0], 1, None);
    }

    #[test]
    fn repeat_questions_stay_consistent() {
        let mut core = AdversaryCore::new(&[2, 2], 1, None);
        let first = core.answer(0, 2);
        let second = core.answer(0, 2);
        assert_eq!(first, second);
    }

    #[test]
    fn transcript_is_consistent_with_final_colors() {
        // Ask every pair (a small complete interrogation) and verify that the
        // final colors explain every answer.
        let sizes = [4usize, 4, 4];
        let n: usize = sizes.iter().sum();
        let mut core = AdversaryCore::new(&sizes, (n / (4 * 4)).max(1), None);
        let mut transcript = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                let same = core.answer(a, b);
                transcript.push((a, b, same));
            }
        }
        assert!(core.is_consistent_with(&transcript));
        // After complete interrogation, classes keep their prescribed sizes.
        let mut sizes_got = core.partition().class_sizes();
        sizes_got.sort_unstable();
        assert_eq!(sizes_got, vec![4, 4, 4]);
    }

    #[test]
    fn swaps_keep_answers_negative_early_on() {
        // With a generous threshold, the first few same-color probes should be
        // deflected by swaps rather than conceded.
        let mut core = AdversaryCore::new(&[5, 5, 5, 5], 5, None);
        // Elements 0 and 1 start with the same color; the adversary should
        // swap one away and answer "not equal".
        assert!(!core.answer(0, 1));
        assert!(core.swaps() >= 1);
        assert_eq!(core.marked_elements(), 0);
    }

    #[test]
    fn protected_color_resists_marking() {
        // Theorem 6 adversary: the protected color should stay unmarked while
        // plenty of unmarked swap partners remain.
        let mut core = AdversaryCore::new(&[2, 6, 6, 6], 2, Some(0));
        for other in 2..8 {
            let _ = core.answer(0, other);
        }
        assert!(
            !core.protected_color_touched(),
            "protected color was marked after only a handful of probes"
        );
    }

    #[test]
    fn answering_does_not_charge_but_recording_does() {
        let mut core = AdversaryCore::new(&[2, 2], 1, None);
        let answer = core.answer(0, 2);
        assert_eq!(core.comparisons(), 0, "planning a pair is free");
        core.record(0, 2, answer);
        core.record(2, 0, answer);
        assert_eq!(core.comparisons(), 2, "every served query is charged");
    }

    #[test]
    fn transcript_recording_is_opt_in() {
        let mut core = AdversaryCore::new(&[2, 2], 1, None);
        core.record(0, 2, false);
        assert!(core.transcript().is_none());
        core.enable_transcript();
        core.record(0, 3, false);
        assert_eq!(core.transcript().unwrap().len(), 1);
        assert_eq!(core.comparisons(), 2);
    }

    #[test]
    fn mark_bits_compose_like_the_enum() {
        let mut core = AdversaryCore::new(&[4, 4], 1, None);
        assert_eq!(core.mark_of(0), None);
        core.set_mark(0, Mark::HighElementDegree);
        assert_eq!(core.mark_of(0), Some(Mark::HighElementDegree));
        core.set_mark(0, Mark::HighElementDegree);
        assert_eq!(core.mark_of(0), Some(Mark::HighElementDegree));
        assert_eq!(core.marked_elements(), 1, "re-marking is idempotent");
        core.set_mark(0, Mark::HighColorDegree);
        assert_eq!(core.mark_of(0), Some(Mark::Both));
        core.set_mark(1, Mark::HighColorDegree);
        assert_eq!(core.mark_of(1), Some(Mark::HighColorDegree));
        core.set_mark(1, Mark::HighElementDegree);
        assert_eq!(core.mark_of(1), Some(Mark::Both));
        assert_eq!(core.marked_elements(), 2);
    }

    #[test]
    fn epochs_stamp_only_changed_elements_at_commit() {
        let mut core = AdversaryCore::new(&[2, 2], 1, None);
        assert_eq!(core.commit_epoch(), 0);
        assert!((0..4).all(|e| core.epoch_of(e) == 0));
        let _ = core.answer(0, 2); // new fact: touches the queried endpoints
        assert_eq!(core.epoch_of(0), 0, "epochs only move at commit");
        let dirty = core.commit_round().to_vec();
        assert_eq!(core.commit_epoch(), 1);
        assert!(dirty.contains(&0) && dirty.contains(&2));
        assert_eq!(core.epoch_of(0), 1);
        assert_eq!(core.epoch_of(2), 1);
        assert_eq!(core.epoch_of(1), 0, "untouched elements keep their epoch");
        // Replaying the settled pair is a pure read: nothing new to stamp.
        let _ = core.answer(0, 2);
        assert!(core.commit_round().is_empty());
        assert_eq!(core.commit_epoch(), 2);
        assert_eq!(core.epoch_of(0), 1);
    }

    #[test]
    fn swaps_dirty_the_partner_too() {
        let mut core = AdversaryCore::new(&[5, 5, 5, 5], 5, None);
        assert!(
            !core.answer(0, 1),
            "the probe should be deflected by a swap"
        );
        assert!(core.swaps() >= 1);
        let dirty = core.commit_round().to_vec();
        assert!(dirty.contains(&0) && dirty.contains(&1));
        assert!(
            dirty.len() >= 3,
            "the swap partner's class membership changed too: {dirty:?}"
        );
    }

    #[test]
    fn degrees_track_the_packed_graph_through_contractions() {
        let mut core = AdversaryCore::new(&[2, 2, 2], 1, None);
        // Force some edges and a contraction, then recount degrees from the
        // packed relation and compare with the incremental counters.
        for (a, b) in [(0, 2), (0, 4), (2, 4), (1, 3)] {
            let _ = core.answer(a, b);
        }
        for v in 0..core.n() {
            let mut recounted = 0u32;
            core.unequal.for_each_in_row(v, |_| recounted += 1);
            assert_eq!(core.degree[v], recounted, "degree mismatch at vertex {v}");
        }
    }
}
