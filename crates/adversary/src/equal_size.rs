//! The Theorem 5 adversary: every equivalence class has the same size `f`.

use crate::core_state::AdversaryCore;
use crate::round_commit::RoundCommit;
use crate::LowerBoundAdversary;
use ecs_model::{EquivalenceOracle, Partition, PlanStats, Transcript};
use parking_lot::Mutex;

/// An adaptive oracle that forces any correct equivalence class sorting
/// algorithm to spend `Ω(n²/f)` comparisons when all classes have size `f`.
///
/// Use it exactly like an [`ecs_model::InstanceOracle`]; after the algorithm
/// finishes, [`EqualSizeAdversary::comparisons`] reports how many tests it was
/// forced to make and [`EqualSizeAdversary::paper_lower_bound`] the
/// `n²/(64f)` value from Lemma 3's accounting.
///
/// The adversary participates in the session's round-boundary hooks (the
/// [`crate::round_commit`] protocol), so it answers bit-identically on every
/// [`ecs_model::ExecutionBackend`] — sequential, threaded, or batched — and
/// under [`ecs_model::ThroughputPool`] throughput mode.
#[derive(Debug)]
pub struct EqualSizeAdversary {
    protocol: Mutex<RoundCommit>,
    n: usize,
    f: usize,
}

impl EqualSizeAdversary {
    /// Creates the adversary for `n` elements in classes of exactly `f`
    /// elements each.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0` or `f` does not divide `n`.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(f > 0, "class size must be positive");
        assert!(n.is_multiple_of(f), "f = {f} must divide n = {n}");
        let k = n / f;
        let sizes = vec![f; k];
        let threshold = (n / (4 * f)).max(1);
        Self {
            protocol: Mutex::new(RoundCommit::new(AdversaryCore::new(
                &sizes, threshold, None,
            ))),
            n,
            f,
        }
    }

    /// Enables transcript recording (off by default: a full interrogation
    /// stores Θ(n²) entries), for consistency audits.
    pub fn with_transcript(self) -> Self {
        self.protocol.lock().core_mut().enable_transcript();
        self
    }

    /// The recorded transcript; empty unless
    /// [`EqualSizeAdversary::with_transcript`] was used.
    pub fn transcript(&self) -> Transcript {
        self.protocol
            .lock()
            .core()
            .transcript()
            .cloned()
            .unwrap_or_default()
    }

    /// The uniform class size `f`.
    pub fn class_size(&self) -> usize {
        self.f
    }

    /// Comparisons the algorithm has performed against this adversary.
    pub fn comparisons(&self) -> u64 {
        self.protocol.lock().core().comparisons()
    }

    /// Number of elements the adversary was forced to mark.
    pub fn marked_elements(&self) -> usize {
        self.protocol.lock().core().marked_elements()
    }

    /// Number of colour swaps the adversary used to stay non-committal.
    pub fn swaps(&self) -> u64 {
        self.protocol.lock().core().swaps()
    }

    /// Comparison rounds committed through the round protocol (single
    /// sequential comparisons count as one round each).
    pub fn rounds_committed(&self) -> u64 {
        self.protocol.lock().rounds_committed()
    }

    /// Disables the incremental plan cache: every round eagerly replays all
    /// of its pairs, like the pre-cache protocol. Observationally identical;
    /// only [`EqualSizeAdversary::plan_stats`] can tell the modes apart.
    pub fn with_full_replan(self) -> Self {
        self.protocol.lock().force_full_replan();
        self
    }

    /// The incremental planner's replay-count witness.
    pub fn plan_stats(&self) -> PlanStats {
        self.protocol.lock().plan_stats()
    }

    /// The partition the adversary has committed to.
    pub fn partition(&self) -> Partition {
        self.protocol.lock().core().partition()
    }

    /// The explicit constant of Lemma 3 / Theorem 5: once `n/8` elements are
    /// marked, at least `n²/(64f)` comparisons have happened; a finished sort
    /// marks everything, so this is a valid lower bound for the whole run.
    pub fn paper_lower_bound(&self) -> u64 {
        let n = self.n as u64;
        n * n / (64 * self.f as u64)
    }

    /// The older `Ω(n²/f²)` bound the paper improves upon, for side-by-side
    /// reporting.
    pub fn previous_lower_bound(&self) -> u64 {
        let n = self.n as u64;
        let f = self.f as u64;
        n * n / (64 * f * f)
    }
}

impl EquivalenceOracle for EqualSizeAdversary {
    fn n(&self) -> usize {
        self.n
    }

    fn same(&self, a: usize, b: usize) -> bool {
        self.protocol.lock().query(a, b)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        self.protocol.lock().query_batch(pairs)
    }

    fn round_opened(&self, pairs: &[(usize, usize)]) {
        self.protocol.lock().begin_round(pairs);
    }

    fn round_closed(&self) {
        self.protocol.lock().end_round();
    }
}

impl LowerBoundAdversary for EqualSizeAdversary {
    fn parameter(&self) -> usize {
        self.class_size()
    }

    fn comparisons(&self) -> u64 {
        EqualSizeAdversary::comparisons(self)
    }

    fn marked_elements(&self) -> usize {
        EqualSizeAdversary::marked_elements(self)
    }

    fn swaps(&self) -> u64 {
        EqualSizeAdversary::swaps(self)
    }

    fn paper_lower_bound(&self) -> u64 {
        EqualSizeAdversary::paper_lower_bound(self)
    }

    fn previous_lower_bound(&self) -> u64 {
        EqualSizeAdversary::previous_lower_bound(self)
    }

    fn partition(&self) -> Partition {
        EqualSizeAdversary::partition(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_core::{EcsAlgorithm, NaiveAllPairs, RepresentativeScan, RoundRobin};

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_f() {
        let _ = EqualSizeAdversary::new(10, 3);
    }

    #[test]
    fn representative_scan_is_forced_above_the_bound() {
        for &(n, f) in &[(64usize, 4usize), (128, 8), (240, 12), (300, 10)] {
            let adversary = EqualSizeAdversary::new(n, f);
            let run = RepresentativeScan::new().sort(&adversary);
            // The algorithm must produce exactly the adversary's committed
            // partition with classes of size f.
            assert_eq!(run.partition, adversary.partition(), "n={n}, f={f}");
            let mut sizes = run.partition.class_sizes();
            sizes.sort_unstable();
            assert!(
                sizes.iter().all(|&s| s == f),
                "n={n}, f={f}: sizes {sizes:?}"
            );
            assert!(
                adversary.comparisons() >= adversary.paper_lower_bound(),
                "n={n}, f={f}: {} comparisons below the n^2/64f bound {}",
                adversary.comparisons(),
                adversary.paper_lower_bound()
            );
        }
    }

    #[test]
    fn round_robin_is_forced_above_the_bound() {
        for &(n, f) in &[(120usize, 6usize), (200, 10)] {
            let adversary = EqualSizeAdversary::new(n, f);
            let run = RoundRobin::new().sort(&adversary);
            assert_eq!(run.partition, adversary.partition());
            assert!(
                adversary.comparisons() >= adversary.paper_lower_bound(),
                "n={n}, f={f}: {} < {}",
                adversary.comparisons(),
                adversary.paper_lower_bound()
            );
        }
    }

    #[test]
    fn naive_all_pairs_also_completes_against_the_adversary() {
        let adversary = EqualSizeAdversary::new(36, 6);
        let run = NaiveAllPairs::new().sort(&adversary);
        assert_eq!(run.partition, adversary.partition());
        assert_eq!(run.partition.num_classes(), 6);
    }

    #[test]
    fn new_bound_dominates_old_bound() {
        let adversary = EqualSizeAdversary::new(1024, 16);
        assert!(adversary.paper_lower_bound() >= 16 * adversary.previous_lower_bound());
    }

    #[test]
    fn transcript_explains_the_committed_partition() {
        let adversary = EqualSizeAdversary::new(60, 5).with_transcript();
        let run = RepresentativeScan::new().sort(&adversary);
        let transcript = adversary.transcript();
        assert_eq!(transcript.len() as u64, adversary.comparisons());
        assert!(transcript.consistent_with(&adversary.partition()));
        assert!(transcript.certifies(60, &run.partition));
    }

    #[test]
    fn extreme_class_sizes() {
        // f = 1: every element is its own class; bound is n^2/64.
        let singles = EqualSizeAdversary::new(40, 1);
        let run = RepresentativeScan::new().sort(&singles);
        assert_eq!(run.partition.num_classes(), 40);
        assert!(singles.comparisons() >= singles.paper_lower_bound());

        // f = n: a single class; the bound degenerates to n/64.
        let one = EqualSizeAdversary::new(40, 40);
        let run = RepresentativeScan::new().sort(&one);
        assert_eq!(run.partition.num_classes(), 1);
        assert!(one.comparisons() >= one.paper_lower_bound());
    }
}
