//! The Theorem 5 adversary: every equivalence class has the same size `f`.

use crate::core_state::AdversaryCore;
use ecs_model::{EquivalenceOracle, Partition};
use parking_lot::Mutex;

/// An adaptive oracle that forces any correct equivalence class sorting
/// algorithm to spend `Ω(n²/f)` comparisons when all classes have size `f`.
///
/// Use it exactly like an [`ecs_model::InstanceOracle`]; after the algorithm
/// finishes, [`EqualSizeAdversary::comparisons`] reports how many tests it was
/// forced to make and [`EqualSizeAdversary::paper_lower_bound`] the
/// `n²/(64f)` value from Lemma 3's accounting.
#[derive(Debug)]
pub struct EqualSizeAdversary {
    core: Mutex<AdversaryCore>,
    n: usize,
    f: usize,
}

impl EqualSizeAdversary {
    /// Creates the adversary for `n` elements in classes of exactly `f`
    /// elements each.
    ///
    /// # Panics
    ///
    /// Panics if `f == 0` or `f` does not divide `n`.
    pub fn new(n: usize, f: usize) -> Self {
        assert!(f > 0, "class size must be positive");
        assert!(n.is_multiple_of(f), "f = {f} must divide n = {n}");
        let k = n / f;
        let sizes = vec![f; k];
        let threshold = (n / (4 * f)).max(1);
        Self {
            core: Mutex::new(AdversaryCore::new(&sizes, threshold, None)),
            n,
            f,
        }
    }

    /// The uniform class size `f`.
    pub fn class_size(&self) -> usize {
        self.f
    }

    /// Comparisons the algorithm has performed against this adversary.
    pub fn comparisons(&self) -> u64 {
        self.core.lock().comparisons()
    }

    /// Number of elements the adversary was forced to mark.
    pub fn marked_elements(&self) -> usize {
        self.core.lock().marked_elements()
    }

    /// Number of colour swaps the adversary used to stay non-committal.
    pub fn swaps(&self) -> u64 {
        self.core.lock().swaps()
    }

    /// The partition the adversary has committed to.
    pub fn partition(&self) -> Partition {
        self.core.lock().partition()
    }

    /// The explicit constant of Lemma 3 / Theorem 5: once `n/8` elements are
    /// marked, at least `n²/(64f)` comparisons have happened; a finished sort
    /// marks everything, so this is a valid lower bound for the whole run.
    pub fn paper_lower_bound(&self) -> u64 {
        let n = self.n as u64;
        n * n / (64 * self.f as u64)
    }

    /// The older `Ω(n²/f²)` bound the paper improves upon, for side-by-side
    /// reporting.
    pub fn previous_lower_bound(&self) -> u64 {
        let n = self.n as u64;
        let f = self.f as u64;
        n * n / (64 * f * f)
    }
}

impl EquivalenceOracle for EqualSizeAdversary {
    fn n(&self) -> usize {
        self.n
    }

    fn same(&self, a: usize, b: usize) -> bool {
        self.core.lock().answer(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_core::{EcsAlgorithm, NaiveAllPairs, RepresentativeScan, RoundRobin};

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_non_dividing_f() {
        let _ = EqualSizeAdversary::new(10, 3);
    }

    #[test]
    fn representative_scan_is_forced_above_the_bound() {
        for &(n, f) in &[(64usize, 4usize), (128, 8), (240, 12), (300, 10)] {
            let adversary = EqualSizeAdversary::new(n, f);
            let run = RepresentativeScan::new().sort(&adversary);
            // The algorithm must produce exactly the adversary's committed
            // partition with classes of size f.
            assert_eq!(run.partition, adversary.partition(), "n={n}, f={f}");
            let mut sizes = run.partition.class_sizes();
            sizes.sort_unstable();
            assert!(
                sizes.iter().all(|&s| s == f),
                "n={n}, f={f}: sizes {sizes:?}"
            );
            assert!(
                adversary.comparisons() >= adversary.paper_lower_bound(),
                "n={n}, f={f}: {} comparisons below the n^2/64f bound {}",
                adversary.comparisons(),
                adversary.paper_lower_bound()
            );
        }
    }

    #[test]
    fn round_robin_is_forced_above_the_bound() {
        for &(n, f) in &[(120usize, 6usize), (200, 10)] {
            let adversary = EqualSizeAdversary::new(n, f);
            let run = RoundRobin::new().sort(&adversary);
            assert_eq!(run.partition, adversary.partition());
            assert!(
                adversary.comparisons() >= adversary.paper_lower_bound(),
                "n={n}, f={f}: {} < {}",
                adversary.comparisons(),
                adversary.paper_lower_bound()
            );
        }
    }

    #[test]
    fn naive_all_pairs_also_completes_against_the_adversary() {
        let adversary = EqualSizeAdversary::new(36, 6);
        let run = NaiveAllPairs::new().sort(&adversary);
        assert_eq!(run.partition, adversary.partition());
        assert_eq!(run.partition.num_classes(), 6);
    }

    #[test]
    fn new_bound_dominates_old_bound() {
        let adversary = EqualSizeAdversary::new(1024, 16);
        assert!(adversary.paper_lower_bound() >= 16 * adversary.previous_lower_bound());
    }

    #[test]
    fn extreme_class_sizes() {
        // f = 1: every element is its own class; bound is n^2/64.
        let singles = EqualSizeAdversary::new(40, 1);
        let run = RepresentativeScan::new().sort(&singles);
        assert_eq!(run.partition.num_classes(), 40);
        assert!(singles.comparisons() >= singles.paper_lower_bound());

        // f = n: a single class; the bound degenerates to n/64.
        let one = EqualSizeAdversary::new(40, 40);
        let run = RepresentativeScan::new().sort(&one);
        assert_eq!(run.partition.num_classes(), 1);
        assert!(one.comparisons() >= one.paper_lower_bound());
    }
}
