//! The pointer-based adversary core, retained as the reference
//! implementation for the packed substrate.
//!
//! [`LegacyCore`] is the pre-bitset [`crate::AdversaryCore`]: the
//! known-unequal relation as `HashMap<usize, HashSet<usize>>` adjacency sets,
//! marks as `Vec<Option<Mark>>`, and candidate filters recomputed as hash
//! sets per probe. It implements the same [`AdversaryState`] interface and
//! must answer **bit-identically** — the substrate-parity suite
//! (`tests/substrate_parity.rs`) pins packed against legacy pair by pair,
//! and the `adversary_scaling` benchmarks time the two side by side.
//!
//! Nothing in the production path constructs this type; keep it in sync only
//! through the parity suite (a behavioral divergence is a bug in the packed
//! port, not grounds to change this reference).

use crate::core_state::{AdversaryState, EpochTracker, Mark};
use crate::round_commit::RoundCommit;
use ecs_graph::UnionFind;
use ecs_model::PlanStats;
use ecs_model::{EquivalenceOracle, Partition};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};

/// The adversary's mutable state on the pointer substrate (the pre-packed
/// representation, verbatim).
#[derive(Debug)]
pub struct LegacyCore {
    n: usize,
    degree_threshold: usize,
    color: Vec<usize>,
    members: Vec<Vec<usize>>,
    mark: Vec<Option<Mark>>,
    color_marked: Vec<bool>,
    protected_color: Option<usize>,
    uf: UnionFind,
    adj: HashMap<usize, HashSet<usize>>,
    comparisons: u64,
    marked_elements: usize,
    swaps: u64,
    epochs: EpochTracker,
}

impl LegacyCore {
    /// Creates the adversary with the given color class sizes (same contract
    /// as [`crate::AdversaryCore::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the sizes are empty, contain zero, or the threshold is zero.
    pub fn new(sizes: &[usize], degree_threshold: usize, protected_color: Option<usize>) -> Self {
        assert!(!sizes.is_empty(), "need at least one color class");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "color class sizes must be positive"
        );
        assert!(degree_threshold > 0, "degree threshold must be positive");
        if let Some(p) = protected_color {
            assert!(p < sizes.len(), "protected color out of range");
        }
        let n: usize = sizes.iter().sum();
        let mut color = Vec::with_capacity(n);
        let mut members = vec![Vec::new(); sizes.len()];
        for (c, &s) in sizes.iter().enumerate() {
            for _ in 0..s {
                members[c].push(color.len());
                color.push(c);
            }
        }
        Self {
            n,
            degree_threshold,
            color,
            members,
            mark: vec![None; n],
            color_marked: vec![false; sizes.len()],
            protected_color,
            uf: UnionFind::new(n),
            adj: HashMap::new(),
            comparisons: 0,
            marked_elements: 0,
            swaps: 0,
            epochs: EpochTracker::new(n),
        }
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of equivalence tests answered so far.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of elements that have been marked so far.
    pub fn marked_elements(&self) -> usize {
        self.marked_elements
    }

    /// Number of color swaps performed.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Whether any element of the protected color has been marked.
    pub fn protected_color_touched(&self) -> bool {
        match self.protected_color {
            None => false,
            Some(p) => self.members[p].iter().any(|&e| self.mark[e].is_some()),
        }
    }

    /// The partition the adversary has committed to.
    pub fn partition(&self) -> Partition {
        Partition::from_labels(&self.color)
    }

    fn degree(&self, root: usize) -> usize {
        self.adj.get(&root).map(|s| s.len()).unwrap_or(0)
    }

    fn adjacent(&self, ra: usize, rb: usize) -> bool {
        self.adj.get(&ra).map(|s| s.contains(&rb)).unwrap_or(false)
    }

    fn add_edge(&mut self, ra: usize, rb: usize) {
        if ra == rb {
            return;
        }
        self.adj.entry(ra).or_default().insert(rb);
        self.adj.entry(rb).or_default().insert(ra);
    }

    fn contract(&mut self, ra: usize, rb: usize) {
        if ra == rb {
            return;
        }
        self.uf.union(ra, rb);
        let keep = self.uf.find(ra);
        let drop = if keep == ra { rb } else { ra };
        let dropped = self.adj.remove(&drop).unwrap_or_default();
        for z in dropped {
            if let Some(set) = self.adj.get_mut(&z) {
                set.remove(&drop);
                set.insert(keep);
            }
            self.adj.entry(keep).or_default().insert(z);
        }
    }

    fn set_mark(&mut self, element: usize, mark: Mark) {
        // Epoch parity with the packed core: the element is dirtied exactly
        // when the requested mark contributes a bit that was not already set.
        let changed = match self.mark[element] {
            None => true,
            Some(Mark::Both) => false,
            Some(existing) => existing != mark,
        };
        match self.mark[element] {
            None => {
                self.mark[element] = Some(mark);
                self.marked_elements += 1;
            }
            Some(existing) if existing != mark => {
                self.mark[element] = Some(Mark::Both);
            }
            _ => {}
        }
        if changed {
            self.epochs.touch(element);
        }
    }

    fn maybe_mark_high_degree(&mut self, element: usize) {
        if self.mark[element].is_some() {
            return;
        }
        let root = self.uf.find_immutable(element);
        if self.degree(root) < self.degree_threshold {
            return;
        }
        if Some(self.color[element]) == self.protected_color {
            if let Some(partner) = self.find_swap_partner(element, self.color[element]) {
                self.swap_colors(element, partner);
                return;
            }
        }
        self.set_mark(element, Mark::HighElementDegree);
    }

    fn find_swap_partner(&self, candidate: usize, avoid_color: usize) -> Option<usize> {
        let cand_root = self.uf.find_immutable(candidate);
        // Colors adjacent to the candidate, materialized as a hash set — the
        // per-probe allocation the packed port replaces with one row/mask
        // intersection.
        let colors_adjacent_to_candidate: HashSet<usize> = self
            .adj
            .get(&cand_root)
            .map(|set| {
                set.iter()
                    .map(|&r| self.color[self.representative_element(r)])
                    .collect()
            })
            .unwrap_or_default();
        for (c, members) in self.members.iter().enumerate() {
            if c == avoid_color || self.color_marked[c] {
                continue;
            }
            if colors_adjacent_to_candidate.contains(&c) {
                continue;
            }
            for &z in members {
                if self.mark[z].is_some() || self.color[z] != c {
                    continue;
                }
                let z_root = self.uf.find_immutable(z);
                let z_adjacent_to_avoid = self
                    .adj
                    .get(&z_root)
                    .map(|set| {
                        set.iter()
                            .any(|&r| self.color[self.representative_element(r)] == avoid_color)
                    })
                    .unwrap_or(false);
                if !z_adjacent_to_avoid {
                    return Some(z);
                }
            }
        }
        None
    }

    fn representative_element(&self, root: usize) -> usize {
        root
    }

    fn swap_colors(&mut self, a: usize, b: usize) {
        let ca = self.color[a];
        let cb = self.color[b];
        if ca == cb {
            return;
        }
        self.color[a] = cb;
        self.color[b] = ca;
        if let Some(pos) = self.members[ca].iter().position(|&e| e == a) {
            self.members[ca].swap_remove(pos);
        }
        if let Some(pos) = self.members[cb].iter().position(|&e| e == b) {
            self.members[cb].swap_remove(pos);
        }
        self.members[ca].push(b);
        self.members[cb].push(a);
        self.swaps += 1;
        self.epochs.touch(a);
        self.epochs.touch(b);
    }

    fn mark_whole_color(&mut self, color: usize) {
        if self.color_marked[color] {
            return;
        }
        self.color_marked[color] = true;
        let members = self.members[color].clone();
        for e in members {
            self.set_mark(e, Mark::HighColorDegree);
        }
    }

    fn answer(&mut self, a: usize, b: usize) -> bool {
        assert!(a < self.n && b < self.n, "comparison out of range");
        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if ra == rb {
            return true;
        }
        if self.adjacent(ra, rb) {
            return false;
        }

        self.maybe_mark_high_degree(a);
        self.maybe_mark_high_degree(b);

        if self.color[a] == self.color[b] && (self.mark[a].is_none() || self.mark[b].is_none()) {
            let unmarked = if self.mark[a].is_none() { a } else { b };
            let common = self.color[a];
            match self.find_swap_partner(unmarked, common) {
                Some(partner) => self.swap_colors(unmarked, partner),
                None => self.mark_whole_color(common),
            }
        }

        let both_marked = self.mark[a].is_some() && self.mark[b].is_some();
        let same = if both_marked {
            self.color[a] == self.color[b]
        } else {
            debug_assert_ne!(
                self.color[a], self.color[b],
                "unmarked same-colored pair survived the swap/mark phase"
            );
            false
        };

        let ra = self.uf.find(a);
        let rb = self.uf.find(b);
        if same {
            self.contract(ra, rb);
        } else {
            self.add_edge(ra, rb);
        }
        // Same dirty rule as the packed core: a new fact dirties its queried
        // endpoints; contraction-migrated neighbours keep their epochs.
        self.epochs.touch(a);
        self.epochs.touch(b);
        same
    }
}

impl AdversaryState for LegacyCore {
    fn n(&self) -> usize {
        LegacyCore::n(self)
    }

    fn answer(&mut self, a: usize, b: usize) -> bool {
        LegacyCore::answer(self, a, b)
    }

    fn record(&mut self, a: usize, b: usize, answer: bool) {
        let _ = (a, b, answer);
        self.comparisons += 1;
    }

    fn commit_epoch(&self) -> u64 {
        self.epochs.commit_epoch()
    }

    fn epoch_of(&self, elem: usize) -> u64 {
        self.epochs.epoch_of(elem)
    }

    fn commit_round(&mut self) -> &[usize] {
        self.epochs.commit()
    }
}

/// The pointer-substrate twin of [`crate::EqualSizeAdversary`] /
/// [`crate::SmallestClassAdversary`]: a [`LegacyCore`] behind the round
/// protocol with the hash-map plan, exposed as an oracle so parity tests and
/// benchmarks can run whole algorithms against it.
#[derive(Debug)]
pub struct LegacyAdversary {
    protocol: Mutex<RoundCommit<LegacyCore>>,
    n: usize,
}

impl LegacyAdversary {
    /// The pointer twin of [`crate::EqualSizeAdversary::new`] (same sizes
    /// and threshold).
    pub fn equal_size(n: usize, f: usize) -> Self {
        assert!(f > 0, "class size must be positive");
        assert!(n.is_multiple_of(f), "f = {f} must divide n = {n}");
        let sizes = vec![f; n / f];
        let threshold = (n / (4 * f)).max(1);
        Self {
            protocol: Mutex::new(RoundCommit::with_spill_plan(LegacyCore::new(
                &sizes, threshold, None,
            ))),
            n,
        }
    }

    /// The pointer twin of [`crate::SmallestClassAdversary::new`] (same
    /// class structure and threshold).
    pub fn smallest_class(n: usize, ell: usize) -> Self {
        assert!(ell > 0, "smallest class size must be positive");
        assert!(
            n > 2 * ell,
            "need n > 2*ell so that a strictly larger class exists (n = {n}, ell = {ell})"
        );
        let remaining = n - ell;
        let num_big = (remaining / (ell + 1)).max(1);
        let base = remaining / num_big;
        let extra = remaining % num_big;
        let mut sizes = vec![ell];
        sizes.extend((0..num_big).map(|c| base + usize::from(c < extra)));
        let threshold = (n / (4 * ell)).max(1);
        Self {
            protocol: Mutex::new(RoundCommit::with_spill_plan(LegacyCore::new(
                &sizes,
                threshold,
                Some(0),
            ))),
            n,
        }
    }

    /// Comparisons the algorithm has performed against this adversary.
    pub fn comparisons(&self) -> u64 {
        self.protocol.lock().core().comparisons()
    }

    /// Number of elements the adversary was forced to mark.
    pub fn marked_elements(&self) -> usize {
        self.protocol.lock().core().marked_elements()
    }

    /// Number of colour swaps the adversary used to stay non-committal.
    pub fn swaps(&self) -> u64 {
        self.protocol.lock().core().swaps()
    }

    /// Comparison rounds committed through the round protocol.
    pub fn rounds_committed(&self) -> u64 {
        self.protocol.lock().rounds_committed()
    }

    /// Disables the incremental plan cache: every round is eagerly
    /// re-planned in full, as in the pre-cache protocol (the baseline the
    /// replay-count witness and benches compare against).
    pub fn with_full_replan(self) -> Self {
        self.protocol.lock().force_full_replan();
        self
    }

    /// The incremental planner's replay-count witness.
    pub fn plan_stats(&self) -> PlanStats {
        self.protocol.lock().plan_stats()
    }

    /// Whether any protected-color element has been marked.
    pub fn protected_color_touched(&self) -> bool {
        self.protocol.lock().core().protected_color_touched()
    }

    /// The partition the adversary has committed to.
    pub fn partition(&self) -> Partition {
        self.protocol.lock().core().partition()
    }
}

impl EquivalenceOracle for LegacyAdversary {
    fn n(&self) -> usize {
        self.n
    }

    fn same(&self, a: usize, b: usize) -> bool {
        self.protocol.lock().query(a, b)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        self.protocol.lock().query_batch(pairs)
    }

    fn round_opened(&self, pairs: &[(usize, usize)]) {
        self.protocol.lock().begin_round(pairs);
    }

    fn round_closed(&self) {
        self.protocol.lock().end_round();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core_state::AdversaryCore;

    /// Exhaustive pairwise interrogation: the packed core and the legacy core
    /// must walk through identical answers, swap counts, and partitions.
    #[test]
    fn packed_core_matches_legacy_core_pair_for_pair() {
        for (sizes, threshold, protected) in [
            (vec![4usize, 4, 4], 1usize, None),
            (vec![5, 5, 5, 5], 5, None),
            (vec![2, 6, 6, 6], 2, Some(0)),
            (vec![3, 7, 7, 7, 8], 2, Some(0)),
        ] {
            let n: usize = sizes.iter().sum();
            let mut packed = AdversaryCore::new(&sizes, threshold, protected);
            let mut legacy = LegacyCore::new(&sizes, threshold, protected);
            for a in 0..n {
                for b in (a + 1)..n {
                    let pa = packed.answer(a, b);
                    let la = legacy.answer(a, b);
                    assert_eq!(pa, la, "sizes {sizes:?}: answers diverged at ({a}, {b})");
                }
            }
            assert_eq!(packed.swaps(), legacy.swaps(), "sizes {sizes:?}");
            assert_eq!(
                packed.marked_elements(),
                legacy.marked_elements(),
                "sizes {sizes:?}"
            );
            assert_eq!(packed.partition(), legacy.partition(), "sizes {sizes:?}");
            assert_eq!(
                packed.protected_color_touched(),
                legacy.protected_color_touched(),
                "sizes {sizes:?}"
            );
        }
    }

    /// The epoch streams must match pair for pair too: the plan cache keys
    /// on them, so a divergence would let the substrates cache differently.
    #[test]
    fn epoch_streams_match_across_substrates() {
        let sizes = vec![3usize, 7, 7, 7, 8];
        let n: usize = sizes.iter().sum();
        let mut packed = AdversaryCore::new(&sizes, 2, Some(0));
        let mut legacy = LegacyCore::new(&sizes, 2, Some(0));
        for a in 0..n {
            for b in (a + 1)..n {
                let _ = AdversaryState::answer(&mut packed, a, b);
                let _ = AdversaryState::answer(&mut legacy, a, b);
                assert_eq!(
                    AdversaryState::commit_round(&mut packed),
                    AdversaryState::commit_round(&mut legacy),
                    "dirty sets diverged at ({a}, {b})"
                );
            }
        }
        assert_eq!(packed.commit_epoch(), legacy.commit_epoch());
        for e in 0..n {
            assert_eq!(
                AdversaryState::epoch_of(&packed, e),
                AdversaryState::epoch_of(&legacy, e),
                "element {e}"
            );
        }
    }

    #[test]
    fn legacy_adversary_serves_rounds() {
        let adversary = LegacyAdversary::equal_size(16, 4);
        let pairs: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 8)).collect();
        adversary.round_opened(&pairs);
        let answers: Vec<bool> = pairs.iter().map(|&(a, b)| adversary.same(a, b)).collect();
        adversary.round_closed();
        assert_eq!(answers.len(), pairs.len());
        assert_eq!(adversary.comparisons(), pairs.len() as u64);
        assert_eq!(adversary.rounds_committed(), 1);
    }
}
