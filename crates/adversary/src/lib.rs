//! Lower-bound adversaries for equivalence class sorting (Section 3 of the
//! paper).
//!
//! The paper proves two improved lower bounds with a coloring adversary:
//!
//! * **Theorem 5** — if every equivalence class has the same size `f`, any
//!   algorithm needs `Ω(n²/f)` equivalence tests (improving the `Ω(n²/f²)`
//!   bound of Jayapaul et al.);
//! * **Theorem 6** — finding one element of the smallest class, of size `ℓ`,
//!   needs `Ω(n²/ℓ)` tests (improving `Ω(n²/ℓ²)`).
//!
//! The adversary maintains a weighted equitable coloring of the algorithm's
//! knowledge graph: vertices are the groups discovered so far (weights are
//! group sizes), color classes are the eventual equivalence classes, and an
//! edge joins two vertices that were answered "not equal". Unmarked elements
//! are kept flexible — when an algorithm probes two same-colored unmarked
//! elements the adversary tries to *swap* one of them with an unrelated
//! unmarked vertex so it can keep answering "not equal"; only when an element
//! has accumulated high degree (`> n/4f`) or its color class has run out of
//! swap partners does the adversary mark it and commit. Lemma 3 converts a
//! count of marked elements into the comparison lower bound.
//!
//! This crate implements that adversary as an [`ecs_model::EquivalenceOracle`]
//! so any algorithm from `ecs-core` can be run against it, plus helpers that
//! report the paper's bound for the chosen parameters so benchmark tables can
//! print "measured vs. `n²/(64f)`" side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core_state;
pub mod equal_size;
pub mod smallest_class;

pub use equal_size::EqualSizeAdversary;
pub use smallest_class::SmallestClassAdversary;
