//! Lower-bound adversaries for equivalence class sorting (Section 3 of the
//! paper).
//!
//! The paper proves two improved lower bounds with a coloring adversary:
//!
//! * **Theorem 5** — if every equivalence class has the same size `f`, any
//!   algorithm needs `Ω(n²/f)` equivalence tests (improving the `Ω(n²/f²)`
//!   bound of Jayapaul et al.);
//! * **Theorem 6** — finding one element of the smallest class, of size `ℓ`,
//!   needs `Ω(n²/ℓ)` tests (improving `Ω(n²/ℓ²)`).
//!
//! The adversary maintains a weighted equitable coloring of the algorithm's
//! knowledge graph: vertices are the groups discovered so far (weights are
//! group sizes), color classes are the eventual equivalence classes, and an
//! edge joins two vertices that were answered "not equal". Unmarked elements
//! are kept flexible — when an algorithm probes two same-colored unmarked
//! elements the adversary tries to *swap* one of them with an unrelated
//! unmarked vertex so it can keep answering "not equal"; only when an element
//! has accumulated high degree (`> n/4f`) or its color class has run out of
//! swap partners does the adversary mark it and commit. Lemma 3 converts a
//! count of marked elements into the comparison lower bound.
//!
//! Both adversaries run the **round-commit protocol** of [`round_commit`]:
//! when a comparison round opens, its pairs are replayed in canonical pair
//! order against the committed round-start state, merging their swap/mark
//! intents into one deterministic commit and pinning every pair's answer in
//! a plan; queries during the round are served from the plan. Answers
//! therefore do not depend on which OS thread asked first or how a round was
//! cut into batch waves, so the adversaries are bit-identical across
//! [`ecs_model::ExecutionBackend::Sequential`],
//! [`ecs_model::ExecutionBackend::Threaded`], and
//! [`ecs_model::ExecutionBackend::Batched`], and inside
//! [`ecs_model::ThroughputPool`] jobs.
//!
//! This crate implements the adversaries as [`ecs_model::EquivalenceOracle`]s
//! so any algorithm from `ecs-core` can be run against them, plus helpers
//! that report the paper's bound for the chosen parameters so benchmark
//! tables can print "measured vs. `n²/(64f)`" side by side.
//!
//! The adversary state lives on the **packed bitset substrate** of
//! [`ecs_graph::bitset`] — the known-unequal relation is one bit per
//! unordered pair, marks and class filters are bit rows, and round plans
//! are packed triangles. The pre-bitset pointer implementation is retained
//! verbatim in [`legacy`]; the parity suite in `tests/substrate_parity.rs`
//! pins the two substrates bit-for-bit against each other.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core_state;
pub mod equal_size;
pub mod legacy;
pub mod round_commit;
pub mod search;
pub mod smallest_class;

pub use core_state::{AdversaryCore, AdversaryState, Mark};
pub use equal_size::EqualSizeAdversary;
pub use legacy::{LegacyAdversary, LegacyCore};
pub use round_commit::{RoundCommit, PACKED_PLAN_MAX_N};
pub use search::{SearchReport, SmallestClassSearch};
pub use smallest_class::SmallestClassAdversary;

use ecs_model::{EquivalenceOracle, Partition};

/// The interface the lower-bound experiment runners drive: either Section 3
/// adversary, seen uniformly as "an adaptive oracle with a paper bound".
pub trait LowerBoundAdversary: EquivalenceOracle {
    /// The bound's size parameter (`f` for Theorem 5, `ℓ` for Theorem 6).
    fn parameter(&self) -> usize;

    /// Comparisons the algorithm has been forced to perform so far.
    fn comparisons(&self) -> u64;

    /// Number of elements the adversary was forced to mark.
    fn marked_elements(&self) -> usize;

    /// Number of color swaps the adversary used to stay non-committal (a
    /// diagnostic of the swap/mark heuristic, pinned by the golden suite).
    fn swaps(&self) -> u64;

    /// The paper's lower bound with Lemma 3's explicit constant
    /// (`n²/(64f)` / `n²/(64ℓ)`).
    fn paper_lower_bound(&self) -> u64;

    /// The older bound the paper improves on (`n²/(64f²)` / `n²/(64ℓ²)`).
    fn previous_lower_bound(&self) -> u64;

    /// The partition the adversary has committed to.
    fn partition(&self) -> Partition;
}
