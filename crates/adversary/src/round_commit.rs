//! The round-granular commit protocol that makes the order-adaptive
//! adversaries deterministic on every execution backend.
//!
//! The sequential adversary of Section 3 mutates its coloring after every
//! query, so its answers depend on the *temporal order* of queries — which a
//! work-stealing pool does not preserve, and which a batched backend reshapes
//! into waves. [`RoundCommit`] removes that dependency at round granularity:
//!
//! 1. **Snapshot & plan.** When the session opens a round
//!    ([`ecs_model::EquivalenceOracle::round_opened`] hands the round's pairs
//!    over), the protocol replays every pair **in pair order** — the round's
//!    canonical order, identical on every backend — through the sequential
//!    case analysis starting from the committed round-start state. The
//!    replay's merged swap/mark/edge/contract intents become the next
//!    committed state, and each pair's answer is stored in a plan.
//! 2. **Serve.** Every query between the hooks — scalar `same` calls from
//!    any pool thread, in any arrival order, or `same_batch` waves of any
//!    cut — is answered from the plan. Repeats are served (and charged) as
//!    often as they are asked, with the answer the plan pinned.
//! 3. **Commit.** [`ecs_model::EquivalenceOracle::round_closed`] discards
//!    the plan; the merged state advance becomes observable. Nothing between
//!    the hooks can observe intermediate replay states, so the commit is
//!    atomic at round granularity.
//!
//! Scalar queries arriving *outside* an open round (sequential algorithms'
//! single comparisons) run as their own single-pair round, which makes the
//! protocol **bit-identical to the classic sequential adversary** for every
//! sequential algorithm, and bit-identical across `Sequential`, `Threaded`,
//! and `Batched` backends for round-based algorithms: the plan is a pure
//! function of (committed state, round pairs), and both are
//! backend-independent.

use crate::core_state::AdversaryCore;
use std::collections::HashMap;

/// Drives an [`AdversaryCore`] through the plan/serve/commit round protocol.
#[derive(Debug)]
pub struct RoundCommit {
    core: AdversaryCore,
    /// The open round's planned answers, keyed by normalized pair; `None`
    /// when no round is open.
    plan: Option<HashMap<(usize, usize), bool>>,
    /// Rounds committed so far (single-pair auto-rounds included).
    rounds_committed: u64,
}

impl RoundCommit {
    /// Wraps a core in the round protocol.
    pub fn new(core: AdversaryCore) -> Self {
        Self {
            core,
            plan: None,
            rounds_committed: 0,
        }
    }

    /// The adversary state (already advanced past the open round's intents
    /// while a round is open — unobservable through the oracle interface,
    /// which serves planned answers until the round closes).
    pub fn core(&self) -> &AdversaryCore {
        &self.core
    }

    /// Mutable access to the core, for configuration (e.g. enabling the
    /// transcript) before a run.
    ///
    /// # Panics
    ///
    /// Panics while a round is open.
    pub fn core_mut(&mut self) -> &mut AdversaryCore {
        assert!(self.plan.is_none(), "cannot mutate the adversary mid-round");
        &mut self.core
    }

    /// Number of rounds committed so far.
    pub fn rounds_committed(&self) -> u64 {
        self.rounds_committed
    }

    /// Opens a round over `pairs` (the session's round, in submission order):
    /// replays them in that canonical order against the committed state and
    /// stores every pair's answer in the plan. Queries until
    /// [`RoundCommit::end_round`] are served from the plan, in any order.
    ///
    /// # Panics
    ///
    /// Panics if a round is already open — an order-adaptive oracle must not
    /// be shared by two concurrently-evaluating sessions.
    pub fn begin_round(&mut self, pairs: &[(usize, usize)]) {
        assert!(
            self.plan.is_none(),
            "a previous adversary round is still open (is the oracle shared by two sessions?)"
        );
        let mut plan = HashMap::with_capacity(pairs.len());
        for &(a, b) in pairs {
            let answer = self.core.answer(a, b);
            // Repeats within a round replay the committed fact and get the
            // identical answer, so first-wins insertion is a no-op for them.
            plan.entry(normalize(a, b)).or_insert(answer);
        }
        self.plan = Some(plan);
    }

    /// Answers one query. Inside an open round the answer is served from the
    /// round plan; outside, the query runs as its own single-pair round.
    ///
    /// # Panics
    ///
    /// Panics if a round is open and `(a, b)` was not part of it.
    pub fn query(&mut self, a: usize, b: usize) -> bool {
        let answer = match self.plan.as_ref() {
            Some(plan) => *plan.get(&normalize(a, b)).unwrap_or_else(|| {
                panic!("query ({a}, {b}) is not part of the open adversary round")
            }),
            None => self.core.answer(a, b),
        };
        self.core.record(a, b, answer);
        if self.plan.is_none() {
            self.rounds_committed += 1;
        }
        answer
    }

    /// Answers a wave of queries in pair order. Inside an open round the
    /// wave is served from the plan; outside, the whole wave forms one round.
    pub fn query_batch(&mut self, pairs: &[(usize, usize)]) -> Vec<bool> {
        if self.plan.is_some() {
            return pairs.iter().map(|&(a, b)| self.query(a, b)).collect();
        }
        self.begin_round(pairs);
        let answers = pairs.iter().map(|&(a, b)| self.query(a, b)).collect();
        self.end_round();
        answers
    }

    /// Closes the open round: discards the plan and publishes the round's
    /// merged state advance.
    ///
    /// # Panics
    ///
    /// Panics if no round is open.
    pub fn end_round(&mut self) {
        assert!(self.plan.is_some(), "no adversary round is open");
        self.plan = None;
        self.rounds_committed += 1;
    }
}

fn normalize(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protocol(sizes: &[usize], threshold: usize) -> RoundCommit {
        RoundCommit::new(AdversaryCore::new(sizes, threshold, None))
    }

    #[test]
    fn scalar_queries_outside_a_round_commit_immediately() {
        let mut p = protocol(&[2, 2], 1);
        let first = p.query(0, 2);
        let second = p.query(0, 2);
        assert_eq!(first, second, "repeat questions stay consistent");
        assert_eq!(p.core().comparisons(), 2);
        assert_eq!(p.rounds_committed(), 2);
    }

    #[test]
    fn round_queries_are_served_from_the_plan_in_any_order() {
        let pairs = [(0usize, 1usize), (4, 5), (0, 4), (8, 2), (1, 5)];
        let forward = {
            let mut p = protocol(&[4, 4, 4], 3);
            p.begin_round(&pairs);
            let answers: Vec<bool> = pairs.iter().map(|&(a, b)| p.query(a, b)).collect();
            p.end_round();
            (answers, p.core().partition(), p.core().swaps())
        };
        let scrambled = {
            let mut p = protocol(&[4, 4, 4], 3);
            p.begin_round(&pairs);
            // Arrival order differs (e.g. pool threads racing); answers and
            // the committed state must not.
            let mut answers: Vec<bool> = pairs.iter().rev().map(|&(a, b)| p.query(a, b)).collect();
            answers.reverse();
            p.end_round();
            (answers, p.core().partition(), p.core().swaps())
        };
        assert_eq!(forward, scrambled);
    }

    #[test]
    fn round_protocol_matches_the_sequential_adversary() {
        // Serving a round's pairs in submission order must replay exactly the
        // classic sequential case analysis.
        let pairs: Vec<(usize, usize)> = (0..6)
            .flat_map(|a| (a + 1..6).map(move |b| (a, b)))
            .collect();
        let mut sequential = AdversaryCore::new(&[3, 3], 1, None);
        let reference: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| sequential.answer(a, b))
            .collect();

        let mut p = protocol(&[3, 3], 1);
        p.begin_round(&pairs);
        let planned: Vec<bool> = pairs.iter().map(|&(a, b)| p.query(a, b)).collect();
        p.end_round();
        assert_eq!(planned, reference);
        assert_eq!(p.core().partition(), sequential.partition());
        assert_eq!(p.core().swaps(), sequential.swaps());
        assert_eq!(p.core().marked_elements(), sequential.marked_elements());
    }

    #[test]
    fn repeats_and_orientations_are_served_and_charged() {
        let mut p = protocol(&[5, 5, 5, 5], 5);
        p.begin_round(&[(0, 1), (1, 0), (0, 1)]);
        let a1 = p.query(0, 1);
        let a2 = p.query(1, 0);
        let a3 = p.query(0, 1);
        assert_eq!(a1, a2);
        assert_eq!(a1, a3);
        assert_eq!(p.core().comparisons(), 3, "every served query is charged");
        p.end_round();
        assert_eq!(p.rounds_committed(), 1);
    }

    #[test]
    fn batch_outside_a_round_forms_its_own_round() {
        let mut p = protocol(&[3, 3, 3], 2);
        let answers = p.query_batch(&[(0, 3), (1, 4), (0, 1)]);
        assert_eq!(answers.len(), 3);
        assert_eq!(p.rounds_committed(), 1);
        assert_eq!(p.core().comparisons(), 3);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn nested_rounds_are_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        p.begin_round(&[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "not part of the open adversary round")]
    fn queries_outside_the_plan_are_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        let _ = p.query(1, 3);
    }

    #[test]
    #[should_panic(expected = "no adversary round is open")]
    fn closing_without_opening_is_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.end_round();
    }

    #[test]
    fn complete_interrogation_stays_consistent_and_equitable() {
        // Ask every pair, one CR-style round per left endpoint, and verify
        // that the final colors explain every answer.
        let sizes = [4usize, 4, 4];
        let n: usize = sizes.iter().sum();
        let mut p = RoundCommit::new(AdversaryCore::new(&sizes, 1, None));
        p.core_mut().enable_transcript();
        let mut transcript = Vec::new();
        for a in 0..n {
            let round: Vec<(usize, usize)> = ((a + 1)..n).map(|b| (a, b)).collect();
            if round.is_empty() {
                continue;
            }
            p.begin_round(&round);
            for &(a, b) in &round {
                let same = p.query(a, b);
                transcript.push((a, b, same));
            }
            p.end_round();
        }
        assert!(p.core().is_consistent_with(&transcript));
        let recorded = p.core().transcript().unwrap();
        assert!(recorded.consistent_with(&p.core().partition()));
        let mut sizes_got = p.core().partition().class_sizes();
        sizes_got.sort_unstable();
        assert_eq!(sizes_got, vec![4, 4, 4]);
    }

    #[test]
    fn protected_color_resists_marking() {
        // Theorem 6 adversary behind the protocol: the protected color should
        // stay unmarked while plenty of unmarked swap partners remain.
        let mut p = RoundCommit::new(AdversaryCore::new(&[2, 6, 6, 6], 2, Some(0)));
        for other in 2..8 {
            let _ = p.query(0, other);
        }
        assert!(
            !p.core().protected_color_touched(),
            "protected color was marked after only a handful of probes"
        );
    }
}
