//! The round-granular commit protocol that makes the order-adaptive
//! adversaries deterministic on every execution backend.
//!
//! The sequential adversary of Section 3 mutates its coloring after every
//! query, so its answers depend on the *temporal order* of queries — which a
//! work-stealing pool does not preserve, and which a batched backend reshapes
//! into waves. [`RoundCommit`] removes that dependency at round granularity:
//!
//! 1. **Snapshot & plan.** When the session opens a round
//!    ([`ecs_model::EquivalenceOracle::round_opened`] hands the round's pairs
//!    over), the protocol replays every pair **in pair order** — the round's
//!    canonical order, identical on every backend — through the sequential
//!    case analysis starting from the committed round-start state. The
//!    replay's merged swap/mark/edge/contract intents become the next
//!    committed state, and each pair's answer is stored in a plan.
//! 2. **Serve.** Every query between the hooks — scalar `same` calls from
//!    any pool thread, in any arrival order, or `same_batch` waves of any
//!    cut — is answered from the plan. Repeats are served (and charged) as
//!    often as they are asked, with the answer the plan pinned.
//! 3. **Commit.** [`ecs_model::EquivalenceOracle::round_closed`] discards
//!    the plan; the merged state advance becomes observable. Nothing between
//!    the hooks can observe intermediate replay states, so the commit is
//!    atomic at round granularity.
//!
//! Scalar queries arriving *outside* an open round (sequential algorithms'
//! single comparisons) run as their own single-pair round, which makes the
//! protocol **bit-identical to the classic sequential adversary** for every
//! sequential algorithm, and bit-identical across `Sequential`, `Threaded`,
//! and `Batched` backends for round-based algorithms: the plan is a pure
//! function of (committed state, round pairs), and both are
//! backend-independent.
//!
//! ## Plan storage
//!
//! The plan is two packed upper-triangular [`PairBitset`]s over the element
//! universe — one bit says "this pair is in the open round", its twin holds
//! the planned answer — so serving a query is two word probes at the same
//! packed index and no hashing. The buffers are allocated once (lazily, at
//! the first round) and recycled: closing a round clears exactly the words
//! the round touched, so commit cost scans the round's words rather than
//! the whole triangle. Universes too large for the packed triangle (above
//! [`PACKED_PLAN_MAX_N`]) and explicitly-requested baselines
//! ([`RoundCommit::with_spill_plan`]) fall back to the legacy hash-map plan.

use crate::core_state::{AdversaryCore, AdversaryState};
use ecs_graph::{BitRow, PairBitset};
use std::collections::HashMap;

/// Largest universe that plans rounds in the packed pair triangle; above
/// this (8 MiB of plan bits per `PairBitset` at 8192 elements costs ~4 MiB,
/// quadratic beyond) the protocol spills to the hash-map plan.
pub const PACKED_PLAN_MAX_N: usize = 8192;

/// The open round's planned pairs and answers. The packed buffers persist
/// across rounds (allocated at the first [`RoundCommit::begin_round`], wiped
/// word-granularly at [`RoundCommit::end_round`]); the hash map is rebuilt
/// per round like the original pointer-based protocol.
#[derive(Debug)]
enum PlanStore {
    /// No round planned yet — the storage mode is decided lazily at the
    /// first `begin_round`, when the universe size is known to matter.
    Undecided,
    Packed {
        /// Bit (a, b) set iff the pair is part of the open round.
        planned: PairBitset,
        /// Planned answer for pair (a, b); only meaningful under `planned`.
        answers: PairBitset,
        /// Self-comparisons (a, a) planned this round (always answered
        /// `true`); kept off the triangle, which stores strict pairs only.
        diagonal: BitRow,
        diagonal_used: bool,
        /// Word indices of `planned`/`answers` written this round — the
        /// commit wipes exactly these (duplicates are harmless).
        touched: Vec<u32>,
    },
    Spill(HashMap<(usize, usize), bool>),
}

/// Drives an [`AdversaryState`] through the plan/serve/commit round protocol.
/// The default state is the packed [`AdversaryCore`]; the pointer-based
/// [`crate::legacy::LegacyCore`] slots in for parity tests and benchmarks.
#[derive(Debug)]
pub struct RoundCommit<S: AdversaryState = AdversaryCore> {
    core: S,
    store: PlanStore,
    /// Whether a round is currently open (the plan is live).
    round_open: bool,
    /// When set, always plan into the hash map even for small universes —
    /// the pointer baseline for the packed-vs-spill benchmarks.
    force_spill: bool,
    /// Rounds committed so far (single-pair auto-rounds included).
    rounds_committed: u64,
}

impl<S: AdversaryState> RoundCommit<S> {
    /// Wraps a core in the round protocol.
    pub fn new(core: S) -> Self {
        Self {
            core,
            store: PlanStore::Undecided,
            round_open: false,
            force_spill: false,
            rounds_committed: 0,
        }
    }

    /// Wraps a core in the round protocol with the hash-map plan forced on,
    /// regardless of universe size — the pointer baseline that the
    /// packed-vs-spill benchmarks and the substrate-parity suite compare
    /// against.
    pub fn with_spill_plan(core: S) -> Self {
        Self {
            force_spill: true,
            ..Self::new(core)
        }
    }

    /// The adversary state (already advanced past the open round's intents
    /// while a round is open — unobservable through the oracle interface,
    /// which serves planned answers until the round closes).
    pub fn core(&self) -> &S {
        &self.core
    }

    /// Mutable access to the core, for configuration (e.g. enabling the
    /// transcript) before a run.
    ///
    /// # Panics
    ///
    /// Panics while a round is open.
    pub fn core_mut(&mut self) -> &mut S {
        assert!(!self.round_open, "cannot mutate the adversary mid-round");
        &mut self.core
    }

    /// Number of rounds committed so far.
    pub fn rounds_committed(&self) -> u64 {
        self.rounds_committed
    }

    /// Whether this protocol plans rounds in the packed pair triangle (after
    /// the lazy decision at the first round; `false` while still undecided).
    pub fn plan_is_packed(&self) -> bool {
        matches!(self.store, PlanStore::Packed { .. })
    }

    /// Opens a round over `pairs` (the session's round, in submission order):
    /// replays them in that canonical order against the committed state and
    /// stores every pair's answer in the plan. Queries until
    /// [`RoundCommit::end_round`] are served from the plan, in any order.
    ///
    /// # Panics
    ///
    /// Panics if a round is already open — an order-adaptive oracle must not
    /// be shared by two concurrently-evaluating sessions.
    pub fn begin_round(&mut self, pairs: &[(usize, usize)]) {
        assert!(
            !self.round_open,
            "a previous adversary round is still open (is the oracle shared by two sessions?)"
        );
        if matches!(self.store, PlanStore::Undecided) {
            let n = self.core.n();
            self.store = if self.force_spill || n > PACKED_PLAN_MAX_N {
                PlanStore::Spill(HashMap::new())
            } else {
                PlanStore::Packed {
                    planned: PairBitset::new(n),
                    answers: PairBitset::new(n),
                    diagonal: BitRow::new(n),
                    diagonal_used: false,
                    touched: Vec::new(),
                }
            };
        }
        let Self { core, store, .. } = self;
        match store {
            PlanStore::Undecided => unreachable!("plan storage decided above"),
            PlanStore::Packed {
                planned,
                answers,
                diagonal,
                diagonal_used,
                touched,
            } => {
                for &(a, b) in pairs {
                    // Repeats within a round replay the committed fact and get
                    // the identical answer, so re-planning them is a no-op.
                    let answer = core.answer(a, b);
                    if a == b {
                        diagonal.set(a);
                        *diagonal_used = true;
                    } else if planned.set(a, b) {
                        if answer {
                            answers.set(a, b);
                        }
                        touched.push(planned.word_index(a, b) as u32);
                    }
                }
            }
            PlanStore::Spill(plan) => {
                plan.reserve(pairs.len());
                for &(a, b) in pairs {
                    let answer = core.answer(a, b);
                    plan.entry(normalize(a, b)).or_insert(answer);
                }
            }
        }
        self.round_open = true;
    }

    /// Answers one query. Inside an open round the answer is served from the
    /// round plan; outside, the query runs as its own single-pair round.
    ///
    /// # Panics
    ///
    /// Panics if a round is open and `(a, b)` was not part of it.
    pub fn query(&mut self, a: usize, b: usize) -> bool {
        let answer = if self.round_open {
            match &self.store {
                PlanStore::Undecided => unreachable!("open round always has a plan"),
                PlanStore::Packed {
                    planned,
                    answers,
                    diagonal,
                    ..
                } => {
                    if a == b {
                        assert!(
                            diagonal.test(a),
                            "query ({a}, {b}) is not part of the open adversary round"
                        );
                        true
                    } else {
                        assert!(
                            planned.test(a, b),
                            "query ({a}, {b}) is not part of the open adversary round"
                        );
                        answers.test(a, b)
                    }
                }
                PlanStore::Spill(plan) => *plan.get(&normalize(a, b)).unwrap_or_else(|| {
                    panic!("query ({a}, {b}) is not part of the open adversary round")
                }),
            }
        } else {
            self.core.answer(a, b)
        };
        self.core.record(a, b, answer);
        if !self.round_open {
            self.rounds_committed += 1;
        }
        answer
    }

    /// Answers a wave of queries in pair order. Inside an open round the
    /// wave is served from the plan; outside, the whole wave forms one round.
    pub fn query_batch(&mut self, pairs: &[(usize, usize)]) -> Vec<bool> {
        if self.round_open {
            return pairs.iter().map(|&(a, b)| self.query(a, b)).collect();
        }
        self.begin_round(pairs);
        let answers = pairs.iter().map(|&(a, b)| self.query(a, b)).collect();
        self.end_round();
        answers
    }

    /// Closes the open round: discards the plan and publishes the round's
    /// merged state advance. With the packed plan this wipes exactly the
    /// words the round touched, so a k-pair round commits in O(k), not O(n²).
    ///
    /// # Panics
    ///
    /// Panics if no round is open.
    pub fn end_round(&mut self) {
        assert!(self.round_open, "no adversary round is open");
        match &mut self.store {
            PlanStore::Undecided => unreachable!("open round always has a plan"),
            PlanStore::Packed {
                planned,
                answers,
                diagonal,
                diagonal_used,
                touched,
            } => {
                for &w in touched.iter() {
                    planned.clear_word(w as usize);
                    answers.clear_word(w as usize);
                }
                touched.clear();
                if *diagonal_used {
                    diagonal.clear_all();
                    *diagonal_used = false;
                }
            }
            PlanStore::Spill(plan) => plan.clear(),
        }
        self.round_open = false;
        self.rounds_committed += 1;
    }
}

fn normalize(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protocol(sizes: &[usize], threshold: usize) -> RoundCommit {
        RoundCommit::new(AdversaryCore::new(sizes, threshold, None))
    }

    fn spill_protocol(sizes: &[usize], threshold: usize) -> RoundCommit {
        RoundCommit::with_spill_plan(AdversaryCore::new(sizes, threshold, None))
    }

    #[test]
    fn scalar_queries_outside_a_round_commit_immediately() {
        let mut p = protocol(&[2, 2], 1);
        let first = p.query(0, 2);
        let second = p.query(0, 2);
        assert_eq!(first, second, "repeat questions stay consistent");
        assert_eq!(p.core().comparisons(), 2);
        assert_eq!(p.rounds_committed(), 2);
    }

    #[test]
    fn round_queries_are_served_from_the_plan_in_any_order() {
        let pairs = [(0usize, 1usize), (4, 5), (0, 4), (8, 2), (1, 5)];
        let forward = {
            let mut p = protocol(&[4, 4, 4], 3);
            p.begin_round(&pairs);
            let answers: Vec<bool> = pairs.iter().map(|&(a, b)| p.query(a, b)).collect();
            p.end_round();
            (answers, p.core().partition(), p.core().swaps())
        };
        let scrambled = {
            let mut p = protocol(&[4, 4, 4], 3);
            p.begin_round(&pairs);
            // Arrival order differs (e.g. pool threads racing); answers and
            // the committed state must not.
            let mut answers: Vec<bool> = pairs.iter().rev().map(|&(a, b)| p.query(a, b)).collect();
            answers.reverse();
            p.end_round();
            (answers, p.core().partition(), p.core().swaps())
        };
        assert_eq!(forward, scrambled);
    }

    #[test]
    fn round_protocol_matches_the_sequential_adversary() {
        // Serving a round's pairs in submission order must replay exactly the
        // classic sequential case analysis.
        let pairs: Vec<(usize, usize)> = (0..6)
            .flat_map(|a| (a + 1..6).map(move |b| (a, b)))
            .collect();
        let mut sequential = AdversaryCore::new(&[3, 3], 1, None);
        let reference: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| sequential.answer(a, b))
            .collect();

        let mut p = protocol(&[3, 3], 1);
        p.begin_round(&pairs);
        let planned: Vec<bool> = pairs.iter().map(|&(a, b)| p.query(a, b)).collect();
        p.end_round();
        assert_eq!(planned, reference);
        assert_eq!(p.core().partition(), sequential.partition());
        assert_eq!(p.core().swaps(), sequential.swaps());
        assert_eq!(p.core().marked_elements(), sequential.marked_elements());
    }

    #[test]
    fn packed_and_spill_plans_serve_identical_rounds() {
        let rounds: Vec<Vec<(usize, usize)>> = vec![
            vec![(0, 1), (2, 3), (4, 5), (6, 7)],
            vec![(0, 2), (1, 3), (4, 6), (5, 7), (0, 2)],
            vec![(0, 4), (1, 5), (2, 6), (3, 7), (7, 3)],
            vec![(0, 7), (1, 6), (2, 5), (3, 4)],
        ];
        let mut packed = protocol(&[4, 4], 1);
        let mut spill = spill_protocol(&[4, 4], 1);
        for round in &rounds {
            packed.begin_round(round);
            spill.begin_round(round);
            for &(a, b) in round {
                assert_eq!(packed.query(a, b), spill.query(a, b), "pair ({a}, {b})");
            }
            packed.end_round();
            spill.end_round();
        }
        assert!(packed.plan_is_packed());
        assert!(!spill.plan_is_packed());
        assert_eq!(packed.core().partition(), spill.core().partition());
        assert_eq!(packed.core().comparisons(), spill.core().comparisons());
        assert_eq!(packed.core().swaps(), spill.core().swaps());
        assert_eq!(packed.rounds_committed(), spill.rounds_committed());
    }

    #[test]
    fn packed_plan_words_are_recycled_between_rounds() {
        let mut p = protocol(&[4, 4], 1);
        p.begin_round(&[(0, 4), (1, 5)]);
        let _ = p.query(0, 4);
        let _ = p.query(1, 5);
        p.end_round();
        // A later round over different pairs must not see stale plan bits.
        p.begin_round(&[(2, 6)]);
        let _ = p.query(2, 6);
        p.end_round();
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.begin_round(&[(3, 7)]);
            p.query(0, 4) // planned two rounds ago, must be rejected now
        }));
        assert!(stale.is_err(), "stale plan bits survived the commit wipe");
    }

    #[test]
    fn repeats_and_orientations_are_served_and_charged() {
        let mut p = protocol(&[5, 5, 5, 5], 5);
        p.begin_round(&[(0, 1), (1, 0), (0, 1)]);
        let a1 = p.query(0, 1);
        let a2 = p.query(1, 0);
        let a3 = p.query(0, 1);
        assert_eq!(a1, a2);
        assert_eq!(a1, a3);
        assert_eq!(p.core().comparisons(), 3, "every served query is charged");
        p.end_round();
        assert_eq!(p.rounds_committed(), 1);
    }

    #[test]
    fn batch_outside_a_round_forms_its_own_round() {
        let mut p = protocol(&[3, 3, 3], 2);
        let answers = p.query_batch(&[(0, 3), (1, 4), (0, 1)]);
        assert_eq!(answers.len(), 3);
        assert_eq!(p.rounds_committed(), 1);
        assert_eq!(p.core().comparisons(), 3);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn nested_rounds_are_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        p.begin_round(&[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "not part of the open adversary round")]
    fn queries_outside_the_plan_are_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        let _ = p.query(1, 3);
    }

    #[test]
    #[should_panic(expected = "not part of the open adversary round")]
    fn spill_queries_outside_the_plan_are_rejected() {
        let mut p = spill_protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        let _ = p.query(1, 3);
    }

    #[test]
    #[should_panic(expected = "no adversary round is open")]
    fn closing_without_opening_is_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.end_round();
    }

    #[test]
    fn complete_interrogation_stays_consistent_and_equitable() {
        // Ask every pair, one CR-style round per left endpoint, and verify
        // that the final colors explain every answer.
        let sizes = [4usize, 4, 4];
        let n: usize = sizes.iter().sum();
        let mut p = RoundCommit::new(AdversaryCore::new(&sizes, 1, None));
        p.core_mut().enable_transcript();
        let mut transcript = Vec::new();
        for a in 0..n {
            let round: Vec<(usize, usize)> = ((a + 1)..n).map(|b| (a, b)).collect();
            if round.is_empty() {
                continue;
            }
            p.begin_round(&round);
            for &(a, b) in &round {
                let same = p.query(a, b);
                transcript.push((a, b, same));
            }
            p.end_round();
        }
        assert!(p.core().is_consistent_with(&transcript));
        let recorded = p.core().transcript().unwrap();
        assert!(recorded.consistent_with(&p.core().partition()));
        let mut sizes_got = p.core().partition().class_sizes();
        sizes_got.sort_unstable();
        assert_eq!(sizes_got, vec![4, 4, 4]);
    }

    #[test]
    fn protected_color_resists_marking() {
        // Theorem 6 adversary behind the protocol: the protected color should
        // stay unmarked while plenty of unmarked swap partners remain.
        let mut p = RoundCommit::new(AdversaryCore::new(&[2, 6, 6, 6], 2, Some(0)));
        for other in 2..8 {
            let _ = p.query(0, other);
        }
        assert!(
            !p.core().protected_color_touched(),
            "protected color was marked after only a handful of probes"
        );
    }
}
