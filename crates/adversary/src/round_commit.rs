//! The round-granular commit protocol that makes the order-adaptive
//! adversaries deterministic on every execution backend.
//!
//! The sequential adversary of Section 3 mutates its coloring after every
//! query, so its answers depend on the *temporal order* of queries — which a
//! work-stealing pool does not preserve, and which a batched backend reshapes
//! into waves. [`RoundCommit`] removes that dependency at round granularity:
//!
//! 1. **Snapshot & plan.** When the session opens a round
//!    ([`ecs_model::EquivalenceOracle::round_opened`] hands the round's pairs
//!    over), the protocol notes the round's pairs in **pair order** — the
//!    round's canonical order, identical on every backend. Replay against
//!    the committed round-start state is **lazy**: a query only forces the
//!    canonical-order prefix up to its own pair through the sequential case
//!    analysis, so early-exiting algorithms never pay for unqueried tails.
//! 2. **Serve.** Every query between the hooks — scalar `same` calls from
//!    any pool thread, in any arrival order, or `same_batch` waves of any
//!    cut — is answered from the plan. Repeats are served (and charged) as
//!    often as they are asked, with the answer the plan pinned.
//! 3. **Commit.** [`ecs_model::EquivalenceOracle::round_closed`] publishes
//!    the merged state advance and bumps the knowledge epoch
//!    ([`AdversaryState::commit_round`]). Nothing between the hooks can
//!    observe intermediate replay states, so the commit is atomic at round
//!    granularity.
//!
//! Scalar queries arriving *outside* an open round (sequential algorithms'
//! single comparisons) run as their own single-pair round, which makes the
//! protocol **bit-identical to the classic sequential adversary** for every
//! sequential algorithm, and bit-identical across `Sequential`, `Threaded`,
//! and `Batched` backends for round-based algorithms: the set of pairs the
//! replay advances through is a pure function of (committed state, round
//! pairs, set of queried pairs), and all three are backend-independent.
//!
//! ## The incremental plan cache
//!
//! Planned answers are not discarded at the commit: they live in a
//! persistent [`PlanCache`], keyed by the endpoints' knowledge epochs
//! ([`AdversaryState::epoch_of`]). The adversary's answers are *eternal* —
//! once a pair is settled (contracted equal, or joined by a known-unequal
//! edge) its answer can never change, and replaying a settled pair is a pure
//! read of the committed state. A cache entry therefore stays valid until
//! one of its endpoints' epochs advances; only then is the pair replayed
//! (still in canonical order), which is itself a pure read that re-validates
//! the entry. Pairs planned through the *mutating* path dirty their queried
//! endpoints, so their entries are invalidated at the very next commit and
//! earn their eternal status through one pure replay. The replay-count
//! witness ([`RoundCommit::plan_stats`]) makes the saving observable without
//! weakening any golden: on repeat-heavy round sequences, cached rounds
//! replay strictly fewer entries than the round size.
//!
//! ## Plan storage
//!
//! For universes up to [`PACKED_PLAN_MAX_N`], the cache is two packed
//! upper-triangular [`PairBitset`]s (entry-present and its answer) plus a
//! third marking the open round's membership, so serving a query is a few
//! word probes and no hashing. Per-pair epoch tags would cost 16 bytes per
//! pair, so the packed cache invalidates eagerly instead: the commit clears
//! the cached rows of exactly the elements the round dirtied. Universes
//! above the threshold and explicitly-requested baselines
//! ([`RoundCommit::with_spill_plan`]) keep the cache in a hash map whose
//! entries carry literal epoch tags and go stale by themselves; both the map
//! and the round-membership set recycle their allocations across rounds.

use crate::core_state::{AdversaryCore, AdversaryState};
use ecs_graph::{BitRow, PairBitset};
use ecs_model::PlanStats;
use std::collections::{HashMap, HashSet};

/// Largest universe that plans rounds in the packed pair triangle; above
/// this (8 MiB of plan bits per `PairBitset` at 8192 elements costs ~4 MiB,
/// quadratic beyond) the protocol spills to the hash-map plan.
pub const PACKED_PLAN_MAX_N: usize = 8192;

/// A spilled cache entry: the planned answer plus the endpoint epochs it was
/// computed under. The entry is valid while both epochs are unchanged.
#[derive(Debug, Clone, Copy)]
struct SpillEntry {
    answer: bool,
    epoch_a: u64,
    epoch_b: u64,
}

/// The persistent plan cache plus the open round's membership. All buffers
/// are allocated lazily at the first round and recycled for the lifetime of
/// the protocol.
#[derive(Debug)]
enum PlanCache {
    /// No round planned yet — the storage mode is decided lazily at the
    /// first round, when the universe size is known to matter.
    Undecided,
    Packed {
        /// Bit (a, b) set iff the pair holds a cached answer valid against
        /// the committed state (epoch-invalidated eagerly at each commit).
        cached: PairBitset,
        /// The cached answer for pair (a, b); meaningful only under `cached`.
        answers: PairBitset,
        /// Bit (a, b) set iff the pair is part of the open round.
        in_round: PairBitset,
        /// Word indices of `in_round` written this round — closing the round
        /// wipes exactly these (duplicates are harmless).
        touched: Vec<u32>,
        /// Self-comparisons (a, a) in the open round (always answered
        /// `true`); kept off the triangle, which stores strict pairs only.
        diagonal: BitRow,
        diagonal_used: bool,
        /// Scratch for the commit-time invalidation row scans.
        row_scratch: Vec<usize>,
    },
    Spill {
        /// Epoch-tagged cache; persists (entries and allocation) across
        /// rounds.
        cache: HashMap<(usize, usize), SpillEntry>,
        /// Membership of the open round; cleared (allocation retained) at
        /// each commit.
        in_round: HashSet<(usize, usize)>,
    },
}

/// Drives an [`AdversaryState`] through the plan/serve/commit round protocol
/// with the incremental plan cache. The default state is the packed
/// [`AdversaryCore`]; the pointer-based [`crate::legacy::LegacyCore`] slots
/// in for parity tests and benchmarks.
#[derive(Debug)]
pub struct RoundCommit<S: AdversaryState = AdversaryCore> {
    core: S,
    cache: PlanCache,
    /// The open round's pairs in canonical (submission) order; allocation
    /// recycled across rounds.
    round_pairs: Vec<(usize, usize)>,
    /// Lazy replay frontier: `round_pairs[..replay_pos]` has been advanced
    /// through the planner (replayed or served from cache).
    replay_pos: usize,
    /// Whether a round is currently open (the plan is live).
    round_open: bool,
    /// When set, always plan into the hash map even for small universes —
    /// the pointer baseline for the packed-vs-spill benchmarks.
    force_spill: bool,
    /// When set, every round eagerly replays all of its pairs at
    /// `begin_round` and the cache is never consulted — the pre-cache
    /// protocol, kept as the witness/bench baseline.
    full_replan: bool,
    /// Rounds committed so far (single-pair auto-rounds included).
    rounds_committed: u64,
    /// Replay-count witness.
    stats: PlanStats,
}

impl<S: AdversaryState> RoundCommit<S> {
    /// Wraps a core in the round protocol.
    pub fn new(core: S) -> Self {
        Self {
            core,
            cache: PlanCache::Undecided,
            round_pairs: Vec::new(),
            replay_pos: 0,
            round_open: false,
            force_spill: false,
            full_replan: false,
            rounds_committed: 0,
            stats: PlanStats::default(),
        }
    }

    /// Wraps a core in the round protocol with the hash-map plan forced on,
    /// regardless of universe size — the pointer baseline that the
    /// packed-vs-spill benchmarks and the substrate-parity suite compare
    /// against.
    pub fn with_spill_plan(core: S) -> Self {
        Self {
            force_spill: true,
            ..Self::new(core)
        }
    }

    /// Disables cache reuse and lazy planning: every round eagerly replays
    /// all of its pairs at [`RoundCommit::begin_round`], exactly like the
    /// pre-cache protocol. Observationally identical to the incremental
    /// planner (the bit-identity suites prove it); only
    /// [`RoundCommit::plan_stats`] can tell the two apart.
    ///
    /// # Panics
    ///
    /// Panics while a round is open.
    pub fn force_full_replan(&mut self) {
        assert!(!self.round_open, "cannot reconfigure the planner mid-round");
        self.full_replan = true;
    }

    /// The replay-count witness: how many pair occurrences were replayed
    /// through the case analysis, how many queries were served from a
    /// still-valid cache entry, and how many entries a commit invalidated.
    pub fn plan_stats(&self) -> PlanStats {
        self.stats
    }

    /// The adversary state (already advanced past the open round's replayed
    /// prefix while a round is open — unobservable through the oracle
    /// interface, which serves planned answers until the round closes).
    pub fn core(&self) -> &S {
        &self.core
    }

    /// Mutable access to the core, for configuration (e.g. enabling the
    /// transcript) before a run.
    ///
    /// # Panics
    ///
    /// Panics while a round is open.
    pub fn core_mut(&mut self) -> &mut S {
        assert!(!self.round_open, "cannot mutate the adversary mid-round");
        &mut self.core
    }

    /// Number of rounds committed so far.
    pub fn rounds_committed(&self) -> u64 {
        self.rounds_committed
    }

    /// Whether this protocol plans rounds in the packed pair triangle (after
    /// the lazy decision at the first round; `false` while still undecided).
    pub fn plan_is_packed(&self) -> bool {
        matches!(self.cache, PlanCache::Packed { .. })
    }

    /// Opens a round over `pairs` (the session's round, in submission
    /// order). Queries until [`RoundCommit::end_round`] are served from the
    /// plan, in any order; replay against the committed state happens lazily
    /// as queries demand it (or eagerly here under
    /// [`RoundCommit::force_full_replan`]).
    ///
    /// # Panics
    ///
    /// Panics if a round is already open — an order-adaptive oracle must not
    /// be shared by two concurrently-evaluating sessions.
    pub fn begin_round(&mut self, pairs: &[(usize, usize)]) {
        assert!(
            !self.round_open,
            "a previous adversary round is still open (is the oracle shared by two sessions?)"
        );
        self.ensure_cache();
        self.round_pairs.clear();
        self.round_pairs.extend_from_slice(pairs);
        self.replay_pos = 0;
        match &mut self.cache {
            PlanCache::Undecided => unreachable!("plan storage decided above"),
            PlanCache::Packed {
                in_round,
                touched,
                diagonal,
                diagonal_used,
                ..
            } => {
                for &(a, b) in pairs {
                    if a == b {
                        diagonal.set(a);
                        *diagonal_used = true;
                    } else if in_round.set(a, b) {
                        touched.push(in_round.word_index(a, b) as u32);
                    }
                }
            }
            PlanCache::Spill { in_round, .. } => {
                for &(a, b) in pairs {
                    in_round.insert(normalize(a, b));
                }
            }
        }
        self.round_open = true;
        if self.full_replan {
            while self.replay_pos < self.round_pairs.len() {
                self.step();
            }
        }
    }

    /// Answers one query. Inside an open round the answer is served from the
    /// plan; outside, the query runs as its own single-pair round (same
    /// cache, epoch-commit, and accounting path as round queries).
    ///
    /// # Panics
    ///
    /// Panics if a round is open and `(a, b)` was not part of it.
    pub fn query(&mut self, a: usize, b: usize) -> bool {
        if self.round_open {
            return self.serve(a, b);
        }
        self.begin_round(&[(a, b)]);
        let answer = self.serve(a, b);
        self.end_round();
        answer
    }

    /// Answers a wave of queries in pair order. Inside an open round the
    /// wave is served from the plan; outside, the whole wave forms one round.
    pub fn query_batch(&mut self, pairs: &[(usize, usize)]) -> Vec<bool> {
        if self.round_open {
            return pairs.iter().map(|&(a, b)| self.query(a, b)).collect();
        }
        self.begin_round(pairs);
        let answers = pairs.iter().map(|&(a, b)| self.serve(a, b)).collect();
        self.end_round();
        answers
    }

    /// Closes the open round: publishes the round's merged state advance,
    /// bumps the knowledge epoch, and invalidates cache entries whose
    /// endpoints the round dirtied. Pairs beyond the lazy replay frontier
    /// were never queried and are dropped without ever being replayed.
    ///
    /// # Panics
    ///
    /// Panics if no round is open.
    pub fn end_round(&mut self) {
        assert!(self.round_open, "no adversary round is open");
        self.round_pairs.clear();
        self.replay_pos = 0;
        match &mut self.cache {
            PlanCache::Undecided => unreachable!("open round always has a plan"),
            PlanCache::Packed {
                in_round,
                touched,
                diagonal,
                diagonal_used,
                ..
            } => {
                for &w in touched.iter() {
                    in_round.clear_word(w as usize);
                }
                touched.clear();
                if *diagonal_used {
                    diagonal.clear_all();
                    *diagonal_used = false;
                }
            }
            PlanCache::Spill { in_round, .. } => in_round.clear(),
        }
        // Commit the epoch advance. The packed cache invalidates eagerly —
        // the dirty elements' cached rows are cleared word-by-word — while
        // the spilled cache's epoch tags go stale by themselves.
        let Self {
            core, cache, stats, ..
        } = self;
        let dirty = core.commit_round();
        if !dirty.is_empty() {
            if let PlanCache::Packed {
                cached,
                row_scratch,
                ..
            } = cache
            {
                for &e in dirty {
                    row_scratch.clear();
                    cached.for_each_in_row(e, |z| row_scratch.push(z));
                    for &z in row_scratch.iter() {
                        if cached.clear(e, z) {
                            stats.invalidated += 1;
                        }
                    }
                }
            }
        }
        self.round_open = false;
        self.rounds_committed += 1;
    }

    /// Decides the storage mode at the first round.
    fn ensure_cache(&mut self) {
        if matches!(self.cache, PlanCache::Undecided) {
            let n = self.core.n();
            self.cache = if self.force_spill || n > PACKED_PLAN_MAX_N {
                PlanCache::Spill {
                    cache: HashMap::new(),
                    in_round: HashSet::new(),
                }
            } else {
                PlanCache::Packed {
                    cached: PairBitset::new(n),
                    answers: PairBitset::new(n),
                    in_round: PairBitset::new(n),
                    touched: Vec::new(),
                    diagonal: BitRow::new(n),
                    diagonal_used: false,
                    row_scratch: Vec::new(),
                }
            };
        }
    }

    /// Serves one query of the open round, forcing the lazy replay as far as
    /// the queried pair requires.
    fn serve(&mut self, a: usize, b: usize) -> bool {
        assert!(
            self.pair_in_round(a, b),
            "query ({a}, {b}) is not part of the open adversary round"
        );
        let answer = if a == b {
            true
        } else {
            if Self::entry_valid(&self.cache, &self.core, a, b) {
                // Served from the cache (an earlier round's entry, or a
                // repeat already planned this round): no replay at all. The
                // full-replan baseline plans every round eagerly, so its
                // entries are fresh plans, not cache reuse.
                if !self.full_replan {
                    self.stats.cached += 1;
                }
            } else {
                // Lazy prefix planning: advance the canonical-order replay
                // only until this pair holds a valid entry. Entries are
                // valid for the rest of the round (epochs move at commits),
                // so the walk terminates at the pair's first occurrence.
                while !Self::entry_valid(&self.cache, &self.core, a, b) {
                    self.step();
                }
            }
            Self::entry_answer(&self.cache, a, b)
        };
        self.core.record(a, b, answer);
        answer
    }

    /// Advances the replay frontier by one pair: a no-op for self-pairs and
    /// (in incremental mode) for pairs with a valid cache entry; otherwise
    /// one call into the sequential case analysis.
    fn step(&mut self) {
        let (a, b) = self.round_pairs[self.replay_pos];
        self.replay_pos += 1;
        if a == b {
            // Self-pairs are always `true` and never mutate the core: the
            // pre-cache replay's `answer(a, a)` was a pure read.
            return;
        }
        if !self.full_replan && Self::entry_valid(&self.cache, &self.core, a, b) {
            return;
        }
        let answer = self.core.answer(a, b);
        self.stats.replayed += 1;
        let overwrote_stale = Self::store_entry(&mut self.cache, &self.core, a, b, answer);
        if overwrote_stale && !self.full_replan {
            self.stats.invalidated += 1;
        }
    }

    /// Whether `(a, b)` belongs to the open round.
    fn pair_in_round(&self, a: usize, b: usize) -> bool {
        match &self.cache {
            PlanCache::Undecided => unreachable!("open round always has a plan"),
            PlanCache::Packed {
                in_round, diagonal, ..
            } => {
                if a == b {
                    diagonal.test(a)
                } else {
                    in_round.test(a, b)
                }
            }
            PlanCache::Spill { in_round, .. } => in_round.contains(&normalize(a, b)),
        }
    }

    /// Whether the cache holds a valid answer for `(a, b)` (strict pair).
    fn entry_valid(cache: &PlanCache, core: &S, a: usize, b: usize) -> bool {
        match cache {
            PlanCache::Undecided => false,
            PlanCache::Packed { cached, .. } => cached.test(a, b),
            PlanCache::Spill { cache, .. } => {
                let (na, nb) = normalize(a, b);
                cache.get(&(na, nb)).is_some_and(|e| {
                    e.epoch_a == core.epoch_of(na) && e.epoch_b == core.epoch_of(nb)
                })
            }
        }
    }

    /// The cached answer for `(a, b)`; only meaningful after
    /// [`RoundCommit::entry_valid`] (or a fresh store) holds.
    fn entry_answer(cache: &PlanCache, a: usize, b: usize) -> bool {
        match cache {
            PlanCache::Undecided => unreachable!("open round always has a plan"),
            PlanCache::Packed { answers, .. } => answers.test(a, b),
            PlanCache::Spill { cache, .. } => cache[&normalize(a, b)].answer,
        }
    }

    /// Stores a freshly replayed answer, tagged with the endpoints' current
    /// epochs. Returns whether a previous (stale or bypassed) entry was
    /// overwritten.
    fn store_entry(cache: &mut PlanCache, core: &S, a: usize, b: usize, answer: bool) -> bool {
        match cache {
            PlanCache::Undecided => unreachable!("open round always has a plan"),
            PlanCache::Packed {
                cached, answers, ..
            } => {
                cached.set(a, b);
                if answer {
                    answers.set(a, b);
                } else {
                    answers.clear(a, b);
                }
                false
            }
            PlanCache::Spill { cache, .. } => {
                let (na, nb) = normalize(a, b);
                let entry = SpillEntry {
                    answer,
                    epoch_a: core.epoch_of(na),
                    epoch_b: core.epoch_of(nb),
                };
                cache.insert((na, nb), entry).is_some()
            }
        }
    }

    /// Capacities of the spilled cache map and round-membership set, for the
    /// allocation-recycling test.
    #[cfg(test)]
    fn spill_capacities(&self) -> Option<(usize, usize)> {
        match &self.cache {
            PlanCache::Spill { cache, in_round } => Some((cache.capacity(), in_round.capacity())),
            _ => None,
        }
    }
}

fn normalize(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn protocol(sizes: &[usize], threshold: usize) -> RoundCommit {
        RoundCommit::new(AdversaryCore::new(sizes, threshold, None))
    }

    fn spill_protocol(sizes: &[usize], threshold: usize) -> RoundCommit {
        RoundCommit::with_spill_plan(AdversaryCore::new(sizes, threshold, None))
    }

    #[test]
    fn scalar_queries_outside_a_round_commit_immediately() {
        let mut p = protocol(&[2, 2], 1);
        let first = p.query(0, 2);
        let second = p.query(0, 2);
        assert_eq!(first, second, "repeat questions stay consistent");
        assert_eq!(p.core().comparisons(), 2);
        assert_eq!(p.rounds_committed(), 2);
    }

    #[test]
    fn round_queries_are_served_from_the_plan_in_any_order() {
        let pairs = [(0usize, 1usize), (4, 5), (0, 4), (8, 2), (1, 5)];
        let forward = {
            let mut p = protocol(&[4, 4, 4], 3);
            p.begin_round(&pairs);
            let answers: Vec<bool> = pairs.iter().map(|&(a, b)| p.query(a, b)).collect();
            p.end_round();
            (answers, p.core().partition(), p.core().swaps())
        };
        let scrambled = {
            let mut p = protocol(&[4, 4, 4], 3);
            p.begin_round(&pairs);
            // Arrival order differs (e.g. pool threads racing); answers and
            // the committed state must not.
            let mut answers: Vec<bool> = pairs.iter().rev().map(|&(a, b)| p.query(a, b)).collect();
            answers.reverse();
            p.end_round();
            (answers, p.core().partition(), p.core().swaps())
        };
        assert_eq!(forward, scrambled);
    }

    #[test]
    fn round_protocol_matches_the_sequential_adversary() {
        // Serving a round's pairs in submission order must replay exactly the
        // classic sequential case analysis.
        let pairs: Vec<(usize, usize)> = (0..6)
            .flat_map(|a| (a + 1..6).map(move |b| (a, b)))
            .collect();
        let mut sequential = AdversaryCore::new(&[3, 3], 1, None);
        let reference: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| sequential.answer(a, b))
            .collect();

        let mut p = protocol(&[3, 3], 1);
        p.begin_round(&pairs);
        let planned: Vec<bool> = pairs.iter().map(|&(a, b)| p.query(a, b)).collect();
        p.end_round();
        assert_eq!(planned, reference);
        assert_eq!(p.core().partition(), sequential.partition());
        assert_eq!(p.core().swaps(), sequential.swaps());
        assert_eq!(p.core().marked_elements(), sequential.marked_elements());
    }

    #[test]
    fn packed_and_spill_plans_serve_identical_rounds() {
        let rounds: Vec<Vec<(usize, usize)>> = vec![
            vec![(0, 1), (2, 3), (4, 5), (6, 7)],
            vec![(0, 2), (1, 3), (4, 6), (5, 7), (0, 2)],
            vec![(0, 4), (1, 5), (2, 6), (3, 7), (7, 3)],
            vec![(0, 7), (1, 6), (2, 5), (3, 4)],
        ];
        let mut packed = protocol(&[4, 4], 1);
        let mut spill = spill_protocol(&[4, 4], 1);
        for round in &rounds {
            packed.begin_round(round);
            spill.begin_round(round);
            for &(a, b) in round {
                assert_eq!(packed.query(a, b), spill.query(a, b), "pair ({a}, {b})");
            }
            packed.end_round();
            spill.end_round();
        }
        assert!(packed.plan_is_packed());
        assert!(!spill.plan_is_packed());
        assert_eq!(packed.core().partition(), spill.core().partition());
        assert_eq!(packed.core().comparisons(), spill.core().comparisons());
        assert_eq!(packed.core().swaps(), spill.core().swaps());
        assert_eq!(packed.rounds_committed(), spill.rounds_committed());
        assert_eq!(
            packed.plan_stats().replayed,
            spill.plan_stats().replayed,
            "both substrates must make identical reuse decisions"
        );
        assert_eq!(packed.plan_stats().cached, spill.plan_stats().cached);
    }

    #[test]
    fn packed_plan_words_are_recycled_between_rounds() {
        let mut p = protocol(&[4, 4], 1);
        p.begin_round(&[(0, 4), (1, 5)]);
        let _ = p.query(0, 4);
        let _ = p.query(1, 5);
        p.end_round();
        // A later round over different pairs must not see stale plan bits.
        p.begin_round(&[(2, 6)]);
        let _ = p.query(2, 6);
        p.end_round();
        let stale = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.begin_round(&[(3, 7)]);
            p.query(0, 4) // planned two rounds ago, must be rejected now
        }));
        assert!(stale.is_err(), "stale plan bits survived the commit wipe");
    }

    #[test]
    fn repeats_and_orientations_are_served_and_charged() {
        let mut p = protocol(&[5, 5, 5, 5], 5);
        p.begin_round(&[(0, 1), (1, 0), (0, 1)]);
        let a1 = p.query(0, 1);
        let a2 = p.query(1, 0);
        let a3 = p.query(0, 1);
        assert_eq!(a1, a2);
        assert_eq!(a1, a3);
        assert_eq!(p.core().comparisons(), 3, "every served query is charged");
        p.end_round();
        assert_eq!(p.rounds_committed(), 1);
        let stats = p.plan_stats();
        assert_eq!(stats.replayed, 1, "the pair is planned once");
        assert_eq!(stats.cached, 2, "repeats are served from the fresh entry");
    }

    #[test]
    fn batch_outside_a_round_forms_its_own_round() {
        let mut p = protocol(&[3, 3, 3], 2);
        let answers = p.query_batch(&[(0, 3), (1, 4), (0, 1)]);
        assert_eq!(answers.len(), 3);
        assert_eq!(p.rounds_committed(), 1);
        assert_eq!(p.core().comparisons(), 3);
    }

    #[test]
    #[should_panic(expected = "still open")]
    fn nested_rounds_are_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        p.begin_round(&[(1, 3)]);
    }

    #[test]
    #[should_panic(expected = "not part of the open adversary round")]
    fn queries_outside_the_plan_are_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        let _ = p.query(1, 3);
    }

    #[test]
    #[should_panic(expected = "not part of the open adversary round")]
    fn spill_queries_outside_the_plan_are_rejected() {
        let mut p = spill_protocol(&[2, 2], 1);
        p.begin_round(&[(0, 2)]);
        let _ = p.query(1, 3);
    }

    #[test]
    #[should_panic(expected = "no adversary round is open")]
    fn closing_without_opening_is_rejected() {
        let mut p = protocol(&[2, 2], 1);
        p.end_round();
    }

    #[test]
    fn complete_interrogation_stays_consistent_and_equitable() {
        // Ask every pair, one CR-style round per left endpoint, and verify
        // that the final colors explain every answer.
        let sizes = [4usize, 4, 4];
        let n: usize = sizes.iter().sum();
        let mut p = RoundCommit::new(AdversaryCore::new(&sizes, 1, None));
        p.core_mut().enable_transcript();
        let mut transcript = Vec::new();
        for a in 0..n {
            let round: Vec<(usize, usize)> = ((a + 1)..n).map(|b| (a, b)).collect();
            if round.is_empty() {
                continue;
            }
            p.begin_round(&round);
            for &(a, b) in &round {
                let same = p.query(a, b);
                transcript.push((a, b, same));
            }
            p.end_round();
        }
        assert!(p.core().is_consistent_with(&transcript));
        let recorded = p.core().transcript().unwrap();
        assert!(recorded.consistent_with(&p.core().partition()));
        let mut sizes_got = p.core().partition().class_sizes();
        sizes_got.sort_unstable();
        assert_eq!(sizes_got, vec![4, 4, 4]);
    }

    #[test]
    fn protected_color_resists_marking() {
        // Theorem 6 adversary behind the protocol: the protected color should
        // stay unmarked while plenty of unmarked swap partners remain.
        let mut p = RoundCommit::new(AdversaryCore::new(&[2, 6, 6, 6], 2, Some(0)));
        for other in 2..8 {
            let _ = p.query(0, other);
        }
        assert!(
            !p.core().protected_color_touched(),
            "protected color was marked after only a handful of probes"
        );
    }

    #[test]
    fn lazy_planning_replays_only_the_queried_prefix() {
        let mut p = protocol(&[4, 4], 1);
        p.begin_round(&[(0, 4), (1, 5), (2, 6), (3, 7)]);
        let _ = p.query(1, 5);
        p.end_round();
        let stats = p.plan_stats();
        assert_eq!(
            stats.replayed, 2,
            "only the canonical prefix up to the queried pair is replayed"
        );
        assert_eq!(p.core().comparisons(), 1, "only the served query charges");
    }

    /// The cache lifecycle on a repeat-heavy sequence: a fresh round replays
    /// everything and dirties its endpoints, the repeat replays once more
    /// (pure reads that re-validate the entries), and from then on the round
    /// replays nothing at all.
    #[test]
    fn repeat_rounds_stop_replaying_after_one_revalidation() {
        for spill in [false, true] {
            let round = [(0usize, 4usize), (1, 5), (2, 6)];
            let mut p = if spill {
                spill_protocol(&[4, 4], 1)
            } else {
                protocol(&[4, 4], 1)
            };
            let mut deltas = Vec::new();
            let mut prev = PlanStats::default();
            for _ in 0..4 {
                p.begin_round(&round);
                for &(a, b) in &round {
                    let _ = p.query(a, b);
                }
                p.end_round();
                let now = p.plan_stats();
                deltas.push(now.since(&prev));
                prev = now;
            }
            assert_eq!(deltas[0].replayed, 3, "spill={spill}: fresh round");
            assert_eq!(deltas[0].cached, 0, "spill={spill}");
            assert_eq!(
                deltas[1].replayed, 3,
                "spill={spill}: the fresh facts dirtied their endpoints"
            );
            assert_eq!(
                deltas[2].replayed, 0,
                "spill={spill}: pure replays re-validated every entry"
            );
            assert_eq!(deltas[2].cached, 3, "spill={spill}");
            assert_eq!(deltas[3].replayed, 0, "spill={spill}: steady state");
            assert_eq!(p.core().comparisons(), 12, "every query still charged");
        }
    }

    #[test]
    fn scalar_repeats_reuse_the_cache_after_one_revalidation() {
        let mut p = protocol(&[2, 2], 1);
        let _ = p.query(0, 2); // fresh fact: replayed, endpoints dirtied
        let _ = p.query(0, 2); // stale entry: one pure replay re-validates
        let _ = p.query(0, 2); // clean commit behind it: served from cache
        let s = p.plan_stats();
        assert_eq!(s.replayed, 2);
        assert_eq!(s.cached, 1);
        assert!(s.invalidated >= 1);
        assert_eq!(p.core().comparisons(), 3);
        assert_eq!(p.rounds_committed(), 3);
    }

    /// Full replan is the pre-cache protocol: observably identical, but the
    /// witness shows it replaying every occurrence of every round.
    #[test]
    fn full_replan_matches_incremental_observably() {
        let rounds: Vec<Vec<(usize, usize)>> = vec![
            vec![(0, 4), (1, 5), (2, 6)],
            vec![(0, 4), (1, 5), (2, 6)],
            vec![(0, 1), (4, 5), (0, 4)],
            vec![(0, 4), (1, 5), (2, 6)],
        ];
        let mut incremental = protocol(&[4, 4], 1);
        let mut full = protocol(&[4, 4], 1);
        full.force_full_replan();
        for round in &rounds {
            incremental.begin_round(round);
            full.begin_round(round);
            for &(a, b) in round {
                assert_eq!(incremental.query(a, b), full.query(a, b), "pair ({a}, {b})");
            }
            incremental.end_round();
            full.end_round();
        }
        assert_eq!(incremental.core().partition(), full.core().partition());
        assert_eq!(incremental.core().comparisons(), full.core().comparisons());
        assert_eq!(incremental.core().swaps(), full.core().swaps());
        let total: u64 = rounds.iter().map(|r| r.len() as u64).sum();
        assert_eq!(full.plan_stats().replayed, total);
        assert_eq!(full.plan_stats().cached, 0);
        assert!(
            incremental.plan_stats().replayed < total,
            "the incremental planner must have reused entries: {:?}",
            incremental.plan_stats()
        );
    }

    #[test]
    fn spill_plan_allocation_is_recycled_across_rounds() {
        let mut p = spill_protocol(&[8, 8], 1);
        let big: Vec<(usize, usize)> = (0..8).map(|i| (i, i + 8)).collect();
        p.begin_round(&big);
        for &(a, b) in &big {
            let _ = p.query(a, b);
        }
        p.end_round();
        let (cache_cap, round_cap) = p.spill_capacities().unwrap();
        assert!(round_cap >= 8, "the big round must grow the membership set");
        for _ in 0..5 {
            p.begin_round(&[(0, 8)]);
            let _ = p.query(0, 8);
            p.end_round();
        }
        let (cache_after, round_after) = p.spill_capacities().unwrap();
        assert!(cache_after >= cache_cap, "cache map allocation shrank");
        assert!(
            round_after >= round_cap,
            "round-membership allocation was not recycled"
        );
    }

    #[test]
    fn diagonal_pairs_are_served_true_and_charged() {
        let mut p = protocol(&[2, 2], 1);
        p.begin_round(&[(1, 1), (0, 2)]);
        assert!(p.query(1, 1));
        let _ = p.query(0, 2);
        p.end_round();
        assert_eq!(p.core().comparisons(), 2);
        assert_eq!(
            p.plan_stats().replayed,
            1,
            "self-pairs are never replayed through the case analysis"
        );
    }
}
