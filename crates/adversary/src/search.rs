//! An adaptive smallest-class *search* runner for the Theorem 6 workload.
//!
//! Theorem 6 lower-bounds the cost of *finding one member* of the smallest
//! equivalence class. [`SmallestClassSearch`] is the matching upper-bound
//! player: a wave-parallel representative search that classifies the universe
//! block by block, then reports a member of the smallest class it found. The
//! interesting property for this workspace is its round structure — each
//! phase submits one comparison round whose pairs depend on the answers of
//! every earlier phase, making it a genuinely *adaptive* workload for the
//! adversaries' round-commit protocol (unlike the fixed schedules of
//! `ecs_core`, whose round `r + 1` is a pure function of round `r`'s answers
//! within a static template).
//!
//! ## Round structure
//!
//! Elements are scanned in blocks of `wave`. Phase `r` submits a single
//! round containing, in canonical order:
//!
//! 1. **links** — `(rep, x)` for every element `x` of the block against
//!    every representative discovered before the phase;
//! 2. **intra-block pairs** — every pair inside the block, so elements that
//!    match none of the old representatives can still be grouped with the
//!    *new* classes founded earlier in the same block;
//! 3. under [`SmallestClassSearch::with_audit`], **audit repeats** — every
//!    earlier block's intra-block pairs, re-asked verbatim.
//!
//! The audit repeats are deliberately repeat-heavy: their endpoints are old
//! non-representative elements that acquire no new facts after their own
//! block's phase (representatives, by contrast, are endpoints of fresh link
//! pairs every phase, so *their* plan-cache entries are invalidated at every
//! commit). Against the incremental plan cache, audit replays therefore die
//! out after one revalidation while the charged cost — which the model
//! counts per served query — is identical in both plan modes. That contrast
//! is exactly what the `incremental_planning` benchmarks and the
//! `--search` lower-bound table measure.

use ecs_model::{
    ComparisonSession, EquivalenceOracle, ExecutionBackend, Metrics, Partition, ReadMode,
};

/// A wave-parallel adaptive search for a member of the smallest equivalence
/// class (the Theorem 6 task), built on block-scan representative discovery.
#[derive(Debug, Clone, Copy)]
pub struct SmallestClassSearch {
    wave: usize,
    audit: bool,
}

/// What a [`SmallestClassSearch`] run found and what it cost.
#[derive(Debug, Clone)]
pub struct SearchReport {
    /// An element of the smallest class discovered (the smallest element of
    /// the first such class in representative-discovery order).
    pub witness: usize,
    /// Size of the smallest class.
    pub class_size: usize,
    /// Number of equivalence classes discovered.
    pub classes: usize,
    /// Number of block phases (= comparison rounds submitted).
    pub phases: u64,
    /// The session's charged cost — identical whichever plan mode the oracle
    /// runs, and whichever backend executed the rounds.
    pub metrics: Metrics,
    /// The full classification the search derived along the way.
    pub partition: Partition,
}

impl SmallestClassSearch {
    /// Creates the search with block width `wave` (the number of new
    /// elements classified per phase).
    ///
    /// # Panics
    ///
    /// Panics if `wave == 0`.
    pub fn new(wave: usize) -> Self {
        assert!(wave >= 1, "block width must be positive");
        Self { wave, audit: false }
    }

    /// Enables audit mode: every phase re-asks all earlier blocks'
    /// intra-block pairs. The repeats are charged like any served query (the
    /// report's metrics grow accordingly) but their answers are already
    /// settled, which makes the workload a stress test for the incremental
    /// plan cache.
    pub fn with_audit(mut self) -> Self {
        self.audit = true;
        self
    }

    /// The block width.
    pub fn wave(&self) -> usize {
        self.wave
    }

    /// Whether audit repeats are enabled.
    pub fn audit(&self) -> bool {
        self.audit
    }

    /// Runs the search against `oracle` on `backend` and reports a member of
    /// the smallest class plus the full derived classification.
    ///
    /// The session uses concurrent reads (a representative appears in many
    /// pairs per round) and `n` processors, the paper's standard budget.
    ///
    /// # Panics
    ///
    /// Panics if the oracle's universe is empty.
    pub fn run<O: EquivalenceOracle>(&self, oracle: &O, backend: ExecutionBackend) -> SearchReport {
        let n = oracle.n();
        assert!(n > 0, "cannot search an empty universe");
        let mut session = ComparisonSession::with_processors_and_backend(
            oracle,
            ReadMode::Concurrent,
            n,
            backend,
        );

        // reps[c] founded class c; class_of uses usize::MAX for "not yet".
        let mut reps: Vec<usize> = Vec::new();
        let mut class_of = vec![usize::MAX; n];
        let mut audit_pairs: Vec<(usize, usize)> = Vec::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut phases = 0u64;

        let mut start = 0;
        while start < n {
            let end = (start + self.wave).min(n);
            let width = end - start;
            phases += 1;

            let prior_reps = reps.len();
            pairs.clear();
            for x in start..end {
                for &r in &reps {
                    pairs.push((r, x));
                }
            }
            let link_count = pairs.len();
            for i in start..end {
                for j in (i + 1)..end {
                    pairs.push((i, j));
                }
            }
            let intra_count = pairs.len() - link_count;
            if self.audit {
                pairs.extend_from_slice(&audit_pairs);
            }

            let answers = session.execute_round(&pairs);
            let links = &answers[..link_count];
            let intra = &answers[link_count..link_count + intra_count];
            // Index of pair (start + i, start + j), i < j, in the intra
            // segment (row-major upper triangle of the block).
            let intra_idx = |i: usize, j: usize| i * width - i * (i + 1) / 2 + (j - i - 1);

            for bi in 0..width {
                let x = start + bi;
                let my_links = &links[bi * prior_reps..(bi + 1) * prior_reps];
                if let Some(ri) = my_links.iter().position(|&same| same) {
                    class_of[x] = ri;
                    continue;
                }
                // No old class matched: try the classes founded earlier in
                // this very block, through the intra-block answers.
                let fresh = reps[prior_reps..]
                    .iter()
                    .position(|&y| intra[intra_idx(y - start, bi)]);
                match fresh {
                    Some(offset) => class_of[x] = prior_reps + offset,
                    None => {
                        class_of[x] = reps.len();
                        reps.push(x);
                    }
                }
            }

            if self.audit {
                audit_pairs.extend((start..end).flat_map(|i| ((i + 1)..end).map(move |j| (i, j))));
            }
            start = end;
        }

        let partition = Partition::from_labels(&class_of);
        let sizes = partition.class_sizes();
        let mut counts = vec![0usize; reps.len()];
        for &c in &class_of {
            counts[c] += 1;
        }
        let class_size = *counts.iter().min().expect("at least one class");
        let smallest = counts
            .iter()
            .position(|&s| s == class_size)
            .expect("a class of minimum size");
        let witness = reps[smallest];
        debug_assert_eq!(sizes.iter().min().copied(), Some(class_size));

        SearchReport {
            witness,
            class_size,
            classes: reps.len(),
            phases,
            metrics: session.into_metrics(),
            partition,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SmallestClassAdversary;
    use ecs_model::{Instance, InstanceOracle};

    /// A deterministic instance with the given class sizes, classes
    /// round-robin-interleaved across element positions so every scan block
    /// mixes classes.
    fn instance_from_sizes(sizes: &[usize]) -> Instance {
        let n: usize = sizes.iter().sum();
        let mut remaining = sizes.to_vec();
        let mut labels = Vec::with_capacity(n);
        let mut c = 0;
        while labels.len() < n {
            if remaining[c] > 0 {
                labels.push(c);
                remaining[c] -= 1;
            }
            c = (c + 1) % sizes.len();
        }
        Instance::from_labels(&labels)
    }

    #[test]
    #[should_panic(expected = "block width must be positive")]
    fn rejects_zero_wave() {
        let _ = SmallestClassSearch::new(0);
    }

    #[test]
    fn recovers_a_known_instance_exactly() {
        let instance = instance_from_sizes(&[3, 7, 5, 9, 1, 6]);
        let oracle = InstanceOracle::new(&instance);
        for wave in [1, 4, 16, 64] {
            let report = SmallestClassSearch::new(wave).run(&oracle, ExecutionBackend::Sequential);
            assert_eq!(report.partition, *instance.ground_truth(), "wave={wave}");
            assert_eq!(report.class_size, 1, "wave={wave}");
            assert_eq!(report.classes, 6, "wave={wave}");
            assert!(
                instance.ground_truth().class_sizes()
                    [instance.ground_truth().label_of(report.witness)]
                    == 1,
                "wave={wave}: witness {} is not in the smallest class",
                report.witness
            );
        }
    }

    #[test]
    fn audit_mode_changes_cost_but_not_the_answer() {
        let instance = instance_from_sizes(&[2, 5, 5, 4]);
        let oracle = InstanceOracle::new(&instance);
        let plain = SmallestClassSearch::new(4).run(&oracle, ExecutionBackend::Sequential);
        let audited = SmallestClassSearch::new(4)
            .with_audit()
            .run(&oracle, ExecutionBackend::Sequential);
        assert_eq!(plain.partition, audited.partition);
        assert_eq!(plain.witness, audited.witness);
        assert_eq!(plain.phases, audited.phases);
        assert!(
            audited.metrics.comparisons() > plain.metrics.comparisons(),
            "audit repeats must be charged"
        );
    }

    #[test]
    fn pins_the_adversary_smallest_class() {
        for &(n, ell, wave) in &[(96usize, 4usize, 8usize), (120, 3, 16)] {
            let adversary = SmallestClassAdversary::new(n, ell);
            let report =
                SmallestClassSearch::new(wave).run(&adversary, ExecutionBackend::Sequential);
            assert_eq!(report.partition, adversary.partition(), "n={n}, ell={ell}");
            assert_eq!(report.class_size, ell, "n={n}, ell={ell}");
            assert!(
                adversary.smallest_class_pinned(),
                "n={n}, ell={ell}: the search finished without pinning the class"
            );
            assert!(
                adversary.comparisons() >= adversary.paper_lower_bound(),
                "n={n}, ell={ell}: {} < {}",
                adversary.comparisons(),
                adversary.paper_lower_bound()
            );
        }
    }

    #[test]
    fn backends_and_plan_modes_agree_bit_for_bit() {
        let backends = [
            ExecutionBackend::Sequential,
            ExecutionBackend::Threaded {
                threads: 2,
                threshold: 1,
            },
            ExecutionBackend::Batched { wave: 64 },
        ];
        let reference: Option<(Partition, u64, Metrics)> = None;
        let mut reference = reference;
        for backend in backends {
            for full in [false, true] {
                let adversary = SmallestClassAdversary::new(72, 3);
                let adversary = if full {
                    adversary.with_full_replan()
                } else {
                    adversary
                };
                let report = SmallestClassSearch::new(8)
                    .with_audit()
                    .run(&adversary, backend);
                let sample = (
                    report.partition.clone(),
                    adversary.comparisons(),
                    report.metrics.clone(),
                );
                match &reference {
                    None => reference = Some(sample),
                    Some(r) => assert_eq!(
                        *r, sample,
                        "backend {backend:?}, full_replan={full} diverged"
                    ),
                }
            }
        }
    }

    #[test]
    fn audit_replays_die_out_against_the_plan_cache() {
        let adversary = SmallestClassAdversary::new(96, 4);
        let report = SmallestClassSearch::new(8)
            .with_audit()
            .run(&adversary, ExecutionBackend::Sequential);
        let stats = adversary.plan_stats();
        let served: u64 = report.metrics.comparisons();
        assert!(
            stats.replayed < served,
            "cached rounds must replay strictly fewer entries than they serve: {stats:?} vs {served}"
        );
        assert!(
            stats.cached > 0,
            "audit repeats never hit the cache: {stats:?}"
        );

        // The full-replan baseline replays every occurrence.
        let baseline = SmallestClassAdversary::new(96, 4).with_full_replan();
        let base_report = SmallestClassSearch::new(8)
            .with_audit()
            .run(&baseline, ExecutionBackend::Sequential);
        assert_eq!(report.partition, base_report.partition);
        assert_eq!(report.metrics, base_report.metrics);
        assert!(
            baseline.plan_stats().replayed > stats.replayed,
            "incremental planning did not reduce replays: {:?} vs {stats:?}",
            baseline.plan_stats()
        );
    }
}
