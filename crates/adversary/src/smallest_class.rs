//! The Theorem 6 adversary: finding an element of the smallest class, of size
//! `ℓ`, needs `Ω(n²/ℓ)` comparisons.

use crate::core_state::AdversaryCore;
use crate::round_commit::RoundCommit;
use crate::LowerBoundAdversary;
use ecs_model::{EquivalenceOracle, Partition, PlanStats, Transcript};
use parking_lot::Mutex;

/// An adaptive oracle under which identifying any member of the smallest
/// equivalence class requires `Ω(n²/ℓ)` comparisons.
///
/// The construction follows Section 3: `ℓ` elements start with a special
/// "smallest class" color, the remaining `n − ℓ` elements are split into
/// roughly `(n − ℓ)/(ℓ + 1)` color classes of size about `ℓ + 1`, the degree
/// threshold is `n/(4ℓ)`, and whenever a smallest-class element is about to be
/// marked the adversary first tries to swap it out of danger. As long as fewer
/// than `n/8` elements are marked, no smallest-class element is pinned down,
/// so an algorithm that claims to have found one earlier can be refuted.
///
/// Like [`crate::EqualSizeAdversary`], this adversary runs the
/// [`crate::round_commit`] protocol and is bit-identical across execution
/// backends and under throughput mode.
#[derive(Debug)]
pub struct SmallestClassAdversary {
    protocol: Mutex<RoundCommit>,
    n: usize,
    ell: usize,
}

impl SmallestClassAdversary {
    /// Creates the adversary for `n` elements with smallest class size `ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `ℓ == 0` or `ℓ + 1 > n − ℓ` (there must be room for at least
    /// one larger class).
    pub fn new(n: usize, ell: usize) -> Self {
        assert!(ell > 0, "smallest class size must be positive");
        assert!(
            n > 2 * ell,
            "need n > 2*ell so that a strictly larger class exists (n = {n}, ell = {ell})"
        );
        let remaining = n - ell;
        let num_big = (remaining / (ell + 1)).max(1);
        // Balance the remaining elements across the big classes.
        let base = remaining / num_big;
        let extra = remaining % num_big;
        let mut sizes = vec![ell];
        sizes.extend((0..num_big).map(|c| base + usize::from(c < extra)));
        let threshold = (n / (4 * ell)).max(1);
        Self {
            protocol: Mutex::new(RoundCommit::new(AdversaryCore::new(
                &sizes,
                threshold,
                Some(0),
            ))),
            n,
            ell,
        }
    }

    /// Enables transcript recording (off by default), for consistency audits.
    pub fn with_transcript(self) -> Self {
        self.protocol.lock().core_mut().enable_transcript();
        self
    }

    /// The recorded transcript; empty unless
    /// [`SmallestClassAdversary::with_transcript`] was used.
    pub fn transcript(&self) -> Transcript {
        self.protocol
            .lock()
            .core()
            .transcript()
            .cloned()
            .unwrap_or_default()
    }

    /// The smallest class size `ℓ`.
    pub fn smallest_class_size(&self) -> usize {
        self.ell
    }

    /// Comparisons performed so far.
    pub fn comparisons(&self) -> u64 {
        self.protocol.lock().core().comparisons()
    }

    /// Number of marked elements.
    pub fn marked_elements(&self) -> usize {
        self.protocol.lock().core().marked_elements()
    }

    /// Number of colour swaps the adversary used to stay non-committal.
    pub fn swaps(&self) -> u64 {
        self.protocol.lock().core().swaps()
    }

    /// Comparison rounds committed through the round protocol.
    pub fn rounds_committed(&self) -> u64 {
        self.protocol.lock().rounds_committed()
    }

    /// Disables the incremental plan cache: every round eagerly replays all
    /// of its pairs, like the pre-cache protocol. Observationally identical;
    /// only [`SmallestClassAdversary::plan_stats`] can tell the modes apart.
    pub fn with_full_replan(self) -> Self {
        self.protocol.lock().force_full_replan();
        self
    }

    /// The incremental planner's replay-count witness.
    pub fn plan_stats(&self) -> PlanStats {
        self.protocol.lock().plan_stats()
    }

    /// Whether any smallest-class element has been marked yet — the event
    /// whose cost Theorem 6 bounds from below.
    pub fn smallest_class_pinned(&self) -> bool {
        self.protocol.lock().core().protected_color_touched()
    }

    /// The partition the adversary has committed to.
    pub fn partition(&self) -> Partition {
        self.protocol.lock().core().partition()
    }

    /// The paper's lower bound with Lemma 3's explicit constant: `n²/(64ℓ)`.
    pub fn paper_lower_bound(&self) -> u64 {
        let n = self.n as u64;
        n * n / (64 * self.ell as u64)
    }

    /// The older `Ω(n²/ℓ²)` bound, for comparison columns.
    pub fn previous_lower_bound(&self) -> u64 {
        let n = self.n as u64;
        let l = self.ell as u64;
        n * n / (64 * l * l)
    }
}

impl EquivalenceOracle for SmallestClassAdversary {
    fn n(&self) -> usize {
        self.n
    }

    fn same(&self, a: usize, b: usize) -> bool {
        self.protocol.lock().query(a, b)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        self.protocol.lock().query_batch(pairs)
    }

    fn round_opened(&self, pairs: &[(usize, usize)]) {
        self.protocol.lock().begin_round(pairs);
    }

    fn round_closed(&self) {
        self.protocol.lock().end_round();
    }
}

impl LowerBoundAdversary for SmallestClassAdversary {
    fn parameter(&self) -> usize {
        self.smallest_class_size()
    }

    fn comparisons(&self) -> u64 {
        SmallestClassAdversary::comparisons(self)
    }

    fn marked_elements(&self) -> usize {
        SmallestClassAdversary::marked_elements(self)
    }

    fn swaps(&self) -> u64 {
        SmallestClassAdversary::swaps(self)
    }

    fn paper_lower_bound(&self) -> u64 {
        SmallestClassAdversary::paper_lower_bound(self)
    }

    fn previous_lower_bound(&self) -> u64 {
        SmallestClassAdversary::previous_lower_bound(self)
    }

    fn partition(&self) -> Partition {
        SmallestClassAdversary::partition(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_core::{EcsAlgorithm, RepresentativeScan, RoundRobin};

    #[test]
    #[should_panic(expected = "n > 2*ell")]
    fn rejects_too_large_ell() {
        let _ = SmallestClassAdversary::new(10, 5);
    }

    #[test]
    fn class_structure_has_a_unique_smallest_class() {
        let adversary = SmallestClassAdversary::new(100, 4);
        let sizes = adversary.partition().class_sizes();
        let min = *sizes.iter().min().unwrap();
        assert_eq!(min, 4);
        assert_eq!(sizes.iter().filter(|&&s| s == min).count(), 1);
        assert!(sizes.iter().all(|&s| s == 4 || s >= 5));
    }

    #[test]
    fn full_classification_costs_at_least_the_bound() {
        for &(n, ell) in &[(100usize, 4usize), (150, 3), (200, 8)] {
            let adversary = SmallestClassAdversary::new(n, ell);
            let run = RepresentativeScan::new().sort(&adversary);
            assert_eq!(run.partition, adversary.partition(), "n={n}, ell={ell}");
            assert!(
                adversary.comparisons() >= adversary.paper_lower_bound(),
                "n={n}, ell={ell}: {} < {}",
                adversary.comparisons(),
                adversary.paper_lower_bound()
            );
            // Completing the sort necessarily pins the smallest class down.
            assert!(adversary.smallest_class_pinned());
        }
    }

    #[test]
    fn round_robin_against_the_adversary() {
        let adversary = SmallestClassAdversary::new(120, 5);
        let run = RoundRobin::new().sort(&adversary);
        assert_eq!(run.partition, adversary.partition());
        assert!(adversary.comparisons() >= adversary.paper_lower_bound());
    }

    #[test]
    fn smallest_class_stays_unpinned_under_light_probing() {
        let adversary = SmallestClassAdversary::new(400, 4);
        // Probe a few hundred scattered pairs — far fewer than n^2/(64*ell).
        let mut count = 0u64;
        for a in 0..40 {
            for b in 40..45 {
                let _ = adversary.same(a, b);
                count += 1;
            }
        }
        assert!(count < adversary.paper_lower_bound());
        assert!(
            !adversary.smallest_class_pinned(),
            "smallest class pinned after only {count} comparisons"
        );
    }

    #[test]
    fn transcript_explains_the_committed_partition() {
        let adversary = SmallestClassAdversary::new(80, 4).with_transcript();
        let run = RepresentativeScan::new().sort(&adversary);
        let transcript = adversary.transcript();
        assert_eq!(transcript.len() as u64, adversary.comparisons());
        assert!(transcript.consistent_with(&adversary.partition()));
        assert!(transcript.certifies(80, &run.partition));
    }

    #[test]
    fn new_bound_dominates_old_bound() {
        let adversary = SmallestClassAdversary::new(1000, 10);
        assert!(adversary.paper_lower_bound() >= 10 * adversary.previous_lower_bound());
    }
}
