//! Experiment runners for the paper's Section 5 study and the Theorem 7
//! dominance check.

use crate::regression::LinearFit;
use crate::stats::Summary;
use ecs_core::{EcsAlgorithm, RoundRobin};
use ecs_distributions::{
    class_distribution::AnyDistribution, ClassDistribution, CutoffDistribution,
};
use ecs_model::throughput::Job;
use ecs_model::{ExecutionBackend, Instance, InstanceOracle, ThroughputPool};
use ecs_rng::StreamSplit;
use rayon::prelude::*;

/// Configuration of one Figure 5 series: a distribution, the input sizes, and
/// the number of trials per size.
#[derive(Debug, Clone)]
pub struct Figure5Config {
    /// The class-size distribution the elements are drawn from.
    pub distribution: AnyDistribution,
    /// The input sizes `n` to test.
    pub sizes: Vec<usize>,
    /// Independent trials per size (the paper uses 10).
    pub trials: usize,
    /// Master seed; every `(size, trial)` pair derives its own stream.
    pub seed: u64,
}

impl Figure5Config {
    /// The paper's size grid for the uniform / geometric / Poisson panels:
    /// 10 000 to 200 000 in steps of 10 000, 10 trials.
    pub fn paper_large(distribution: AnyDistribution, seed: u64) -> Self {
        Self {
            distribution,
            sizes: (1..=20).map(|i| i * 10_000).collect(),
            trials: 10,
            seed,
        }
    }

    /// The paper's size grid for the zeta panels: 1 000 to 20 000 in steps of
    /// 1 000, 10 trials.
    pub fn paper_zeta(distribution: AnyDistribution, seed: u64) -> Self {
        Self {
            distribution,
            sizes: (1..=20).map(|i| i * 1_000).collect(),
            trials: 10,
            seed,
        }
    }

    /// A scaled-down grid (sizes divided by `factor`) for quick runs and CI.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        assert!(factor >= 1);
        self.sizes = self.sizes.iter().map(|&s| (s / factor).max(100)).collect();
        self
    }
}

/// Measurements at one input size.
#[derive(Debug, Clone)]
pub struct Figure5Point {
    /// Input size `n`.
    pub n: usize,
    /// Total comparisons of each trial.
    pub comparisons: Vec<u64>,
    /// Summary statistics over the trials.
    pub summary: Summary,
}

/// One series (curve) of the Figure 5 reproduction.
#[derive(Debug, Clone)]
pub struct Figure5Series {
    /// Label, e.g. `"uniform(k=10)"`.
    pub label: String,
    /// Per-size measurements.
    pub points: Vec<Figure5Point>,
    /// Least-squares fit of mean comparisons against `n`, when the paper
    /// proves (high-probability or expected) linear behaviour.
    pub fit: Option<LinearFit>,
    /// Whether the paper claims a linear bound for this configuration.
    pub linear_expected: bool,
}

impl Figure5Series {
    /// The per-size mean comparisons, as `(n, mean)` pairs.
    pub fn means(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.n as f64, p.summary.mean()))
            .collect()
    }

    /// The largest relative deviation of any single trial from the fitted
    /// line (the "data points vary by as much as 10%" number for zeta s = 2).
    pub fn max_relative_spread(&self) -> f64 {
        let Some(fit) = &self.fit else { return 0.0 };
        let mut worst = 0.0f64;
        for p in &self.points {
            let pred = fit.predict(p.n as f64);
            if pred <= 0.0 {
                continue;
            }
            for &c in &p.comparisons {
                worst = worst.max(((c as f64 - pred) / pred).abs());
            }
        }
        worst
    }
}

/// Whether the Figure 5 reproduction fits a least-squares line for this
/// distribution: Theorem 8 proves linearity for uniform/geometric/Poisson and
/// Theorem 9 for zeta with s > 2; the boundary s = 2 is included because the
/// paper's experiments fit a line there too (observed near-linear, within
/// ~10% spread, though unproven — `tail_bounds::paper_comparison_bound`
/// accordingly reports no bound for s ≤ 2).
pub fn paper_claims_linear(distribution: &AnyDistribution) -> bool {
    match distribution {
        AnyDistribution::Uniform(_)
        | AnyDistribution::Geometric(_)
        | AnyDistribution::Poisson(_) => true,
        AnyDistribution::Zeta(z) => z.s() >= 2.0,
    }
}

/// One Figure 5 trial: draw an instance addressed by `(n, trial)` from the
/// config's seed, run round-robin, return the total comparisons. This is the
/// *only* measurement code path — the serial loop, the per-size parallel
/// loop, and the pooled grid all call it with identical stream coordinates,
/// which is what makes their outputs bit-identical.
fn figure5_trial(
    distribution: &AnyDistribution,
    split: StreamSplit,
    n: usize,
    trial: usize,
    backend: ExecutionBackend,
) -> u64 {
    let mut rng = split.stream(&[n as u64, trial as u64]);
    let instance = Instance::from_distribution(distribution, n, &mut rng);
    let oracle = InstanceOracle::new(&instance);
    let run = RoundRobin::new().sort_with_backend(&oracle, backend);
    debug_assert!(instance.verify(&run.partition));
    run.metrics.comparisons()
}

/// Assembles a [`Figure5Series`] from the per-size trial measurements.
fn assemble_figure5_series(config: &Figure5Config, per_size: Vec<Vec<u64>>) -> Figure5Series {
    debug_assert_eq!(per_size.len(), config.sizes.len());
    let points: Vec<Figure5Point> = config
        .sizes
        .iter()
        .zip(per_size)
        .map(|(&n, comparisons)| {
            let summary =
                Summary::from_slice(&comparisons.iter().map(|&c| c as f64).collect::<Vec<_>>());
            Figure5Point {
                n,
                comparisons,
                summary,
            }
        })
        .collect();

    let linear_expected = paper_claims_linear(&config.distribution);
    let fit = if linear_expected {
        let x: Vec<f64> = points.iter().map(|p| p.n as f64).collect();
        let y: Vec<f64> = points.iter().map(|p| p.summary.mean()).collect();
        LinearFit::fit(&x, &y)
    } else {
        None
    };

    Figure5Series {
        label: config.distribution.name(),
        points,
        fit,
        linear_expected,
    }
}

/// Runs one Figure 5 series: for every size and trial, draw an instance from
/// the distribution, run the round-robin algorithm, and record the total
/// comparisons. Trials of each size run in parallel via rayon; for
/// whole-grid throughput across sizes and distributions, prefer
/// [`figure5_grid`]. Sessions evaluate on the environment's backend
/// ([`ExecutionBackend::from_env`]); use [`figure5_series_with_backend`] to
/// pin one explicitly.
pub fn figure5_series(config: &Figure5Config) -> Figure5Series {
    figure5_series_with_backend(config, ExecutionBackend::from_env())
}

/// [`figure5_series`] with every trial session evaluating on an explicit
/// [`ExecutionBackend`] (e.g. the `--batch` / `--threads` CLI selection).
/// The backend never changes any measurement — partitions and metrics are
/// bit-identical across backends — only where and how oracle queries run.
pub fn figure5_series_with_backend(
    config: &Figure5Config,
    backend: ExecutionBackend,
) -> Figure5Series {
    let split = StreamSplit::new(config.seed);
    let per_size: Vec<Vec<u64>> = config
        .sizes
        .iter()
        .map(|&n| {
            (0..config.trials)
                .into_par_iter()
                .map(|trial| figure5_trial(&config.distribution, split, n, trial, backend))
                .collect()
        })
        .collect();
    assemble_figure5_series(config, per_size)
}

/// Runs a whole grid of Figure 5 configurations through one
/// [`ThroughputPool`]: every `(config, size, trial)` job of the grid is
/// submitted up front (one fairness session per config), so the pool stays
/// saturated across size and distribution boundaries instead of draining at
/// each per-size barrier. Results are bit-identical to calling
/// [`figure5_series`] per config — the jobs run the same code on the same
/// stream coordinates.
pub fn figure5_grid(configs: &[Figure5Config], pool: &ThroughputPool) -> Vec<Figure5Series> {
    figure5_grid_with_backend(configs, pool, ExecutionBackend::from_env())
}

/// [`figure5_grid`] with every trial job's session evaluating on an explicit
/// [`ExecutionBackend`] — this is how the `--batch` flag reaches pooled
/// trials. Bit-identical to [`figure5_series_with_backend`] per config on
/// any backend.
pub fn figure5_grid_with_backend(
    configs: &[Figure5Config],
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Vec<Figure5Series> {
    let sessions: Vec<Vec<Job<'_, u64>>> = configs
        .iter()
        .map(|config| {
            let split = StreamSplit::new(config.seed);
            let mut jobs: Vec<Job<'_, u64>> =
                Vec::with_capacity(config.sizes.len() * config.trials);
            for &n in &config.sizes {
                for trial in 0..config.trials {
                    let distribution = &config.distribution;
                    jobs.push(Box::new(move || {
                        figure5_trial(distribution, split, n, trial, backend)
                    }));
                }
            }
            jobs
        })
        .collect();

    let per_config = pool.run_sessions(sessions);

    configs
        .iter()
        .zip(per_config)
        .map(|(config, flat)| {
            let per_size: Vec<Vec<u64>> = if config.trials == 0 {
                config.sizes.iter().map(|_| Vec::new()).collect()
            } else {
                flat.chunks(config.trials).map(<[u64]>::to_vec).collect()
            };
            assemble_figure5_series(config, per_size)
        })
        .collect()
}

/// Configuration for the Theorem 7 stochastic-dominance experiment.
#[derive(Debug, Clone)]
pub struct DominanceConfig {
    /// The class-size distribution.
    pub distribution: AnyDistribution,
    /// The input size `n`.
    pub n: usize,
    /// Number of paired trials.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
}

/// Result of the Theorem 7 experiment.
///
/// Theorem 7's accounting sums the `2·min(Y_i, Y_j)` lemma of Jayapaul et al.
/// over *distinct* class pairs, so the quantity it bounds by `2·Σ D_N(n)`
/// draws is the number of **cross-class** tests; the within-class "equal"
/// answers that contract groups add at most `n − k` further comparisons. The
/// experiment therefore reports both the cross-class count (checked against
/// the Theorem 7 bound) and the total count (checked against the bound plus
/// `n`), which is exactly how Theorem 8 uses the result to conclude `O(n)`
/// total work.
#[derive(Debug, Clone)]
pub struct DominanceResult {
    /// Label of the distribution.
    pub label: String,
    /// Measured round-robin total comparisons per trial.
    pub measured_total: Vec<u64>,
    /// Measured round-robin cross-class comparisons per trial.
    pub measured_cross: Vec<u64>,
    /// Input size `n`.
    pub n: usize,
    /// Sampled Theorem 7 bounds (`2·Σ` of `n` draws from `D_N(n)`) per trial.
    pub bound_samples: Vec<u64>,
    /// The exact mean of the bound, `2·n·E[D_N(n)]`.
    pub bound_mean: f64,
}

impl DominanceResult {
    /// Fraction of trials whose *cross-class* comparisons were at most the
    /// bound's expected value (the literal Theorem 7 quantity).
    pub fn fraction_cross_below_bound(&self) -> f64 {
        if self.measured_cross.is_empty() {
            return 1.0;
        }
        let below = self
            .measured_cross
            .iter()
            .filter(|&&m| (m as f64) <= self.bound_mean)
            .count();
        below as f64 / self.measured_cross.len() as f64
    }

    /// Fraction of trials whose *total* comparisons were at most the bound
    /// plus `n` (bound on cross-class tests plus at most `n` within-class
    /// contractions), the form in which Theorem 8 concludes linear work.
    pub fn fraction_total_below_bound_plus_n(&self) -> f64 {
        if self.measured_total.is_empty() {
            return 1.0;
        }
        let limit = self.bound_mean + self.n as f64;
        let below = self
            .measured_total
            .iter()
            .filter(|&&m| (m as f64) <= limit)
            .count();
        below as f64 / self.measured_total.len() as f64
    }

    /// Mean of the measured total comparison counts.
    pub fn measured_mean(&self) -> f64 {
        Summary::from_slice(
            &self
                .measured_total
                .iter()
                .map(|&c| c as f64)
                .collect::<Vec<_>>(),
        )
        .mean()
    }

    /// Mean of the measured cross-class comparison counts.
    pub fn measured_cross_mean(&self) -> f64 {
        Summary::from_slice(
            &self
                .measured_cross
                .iter()
                .map(|&c| c as f64)
                .collect::<Vec<_>>(),
        )
        .mean()
    }
}

/// An oracle wrapper that counts how many answered tests crossed two distinct
/// ground-truth classes.
struct CrossCountingOracle<'a> {
    inner: InstanceOracle<'a>,
    cross: std::sync::atomic::AtomicU64,
}

impl ecs_model::EquivalenceOracle for CrossCountingOracle<'_> {
    fn n(&self) -> usize {
        self.inner.n()
    }
    fn same(&self, a: usize, b: usize) -> bool {
        let same = self.inner.same(a, b);
        if !same {
            self.cross
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        same
    }
}

/// One Theorem 7 measurement trial: `(total, cross-class)` comparisons of a
/// round-robin run on the instance addressed by `(1, trial)`. Shared by the
/// per-config runner and the pooled grid so both measure identically.
fn dominance_trial(
    distribution: &AnyDistribution,
    split: StreamSplit,
    n: usize,
    trial: usize,
    backend: ExecutionBackend,
) -> (u64, u64) {
    let mut rng = split.stream(&[1, trial as u64]);
    let instance = Instance::from_distribution(distribution, n, &mut rng);
    let oracle = CrossCountingOracle {
        inner: InstanceOracle::new(&instance),
        cross: std::sync::atomic::AtomicU64::new(0),
    };
    let run = RoundRobin::new().sort_with_backend(&oracle, backend);
    debug_assert!(instance.verify(&run.partition));
    (
        run.metrics.comparisons(),
        oracle.cross.load(std::sync::atomic::Ordering::Relaxed),
    )
}

/// Assembles a [`DominanceResult`] from the measurement tuples (the cheap
/// bound sampling runs inline; it is a handful of RNG draws per trial).
fn assemble_dominance(config: &DominanceConfig, measurements: Vec<(u64, u64)>) -> DominanceResult {
    let split = StreamSplit::new(config.seed);
    let cutoff = CutoffDistribution::new(config.distribution, config.n);
    let bound_samples: Vec<u64> = (0..config.trials)
        .map(|trial| {
            let mut rng = split.stream(&[2, trial as u64]);
            cutoff.theorem7_bound(&mut rng)
        })
        .collect();

    DominanceResult {
        label: config.distribution.name(),
        measured_total: measurements.iter().map(|&(t, _)| t).collect(),
        measured_cross: measurements.iter().map(|&(_, c)| c).collect(),
        n: config.n,
        bound_samples,
        bound_mean: 2.0 * config.n as f64 * cutoff.mean(),
    }
}

/// Runs the Theorem 7 experiment: measures round-robin comparisons on inputs
/// drawn from the distribution and compares them against the
/// `2·Σ_{i=1}^n V_i` bound where `V_i ~ D_N(n)`. Trials run in parallel via
/// rayon; for whole-grid throughput across configurations, prefer
/// [`dominance_grid`]. Sessions evaluate on the environment's backend; use
/// [`dominance_experiment_with_backend`] to pin one explicitly.
pub fn dominance_experiment(config: &DominanceConfig) -> DominanceResult {
    dominance_experiment_with_backend(config, ExecutionBackend::from_env())
}

/// [`dominance_experiment`] with every trial session evaluating on an
/// explicit [`ExecutionBackend`]; measurements are bit-identical across
/// backends.
pub fn dominance_experiment_with_backend(
    config: &DominanceConfig,
    backend: ExecutionBackend,
) -> DominanceResult {
    let split = StreamSplit::new(config.seed);
    let measurements: Vec<(u64, u64)> = (0..config.trials)
        .into_par_iter()
        .map(|trial| dominance_trial(&config.distribution, split, config.n, trial, backend))
        .collect();
    assemble_dominance(config, measurements)
}

/// Runs every configuration of a Theorem 7 dominance sweep through one
/// [`ThroughputPool`], one fairness session per configuration, so all
/// `configs × trials` measurement jobs share the pool instead of running as
/// a serial loop of per-config barriers. Bit-identical to calling
/// [`dominance_experiment`] per config.
pub fn dominance_grid(configs: &[DominanceConfig], pool: &ThroughputPool) -> Vec<DominanceResult> {
    dominance_grid_with_backend(configs, pool, ExecutionBackend::from_env())
}

/// [`dominance_grid`] with every trial job's session evaluating on an
/// explicit [`ExecutionBackend`] — how the `--batch` flag reaches pooled
/// dominance trials. Bit-identical to
/// [`dominance_experiment_with_backend`] per config on any backend.
pub fn dominance_grid_with_backend(
    configs: &[DominanceConfig],
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Vec<DominanceResult> {
    let sessions: Vec<Vec<Job<'_, (u64, u64)>>> = configs
        .iter()
        .map(|config| {
            let split = StreamSplit::new(config.seed);
            (0..config.trials)
                .map(|trial| {
                    let distribution = &config.distribution;
                    let n = config.n;
                    Box::new(move || dominance_trial(distribution, split, n, trial, backend))
                        as Job<'_, (u64, u64)>
                })
                .collect()
        })
        .collect();

    let per_config = pool.run_sessions(sessions);

    configs
        .iter()
        .zip(per_config)
        .map(|(config, measurements)| assemble_dominance(config, measurements))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_series_shapes_and_determinism() {
        let config = Figure5Config {
            distribution: AnyDistribution::uniform(10),
            sizes: vec![200, 400, 800],
            trials: 3,
            seed: 99,
        };
        let series = figure5_series(&config);
        assert_eq!(series.points.len(), 3);
        assert!(series.points.iter().all(|p| p.comparisons.len() == 3));
        assert!(series.linear_expected);
        assert!(series.fit.is_some());
        // Deterministic under the same seed.
        let again = figure5_series(&config);
        assert_eq!(
            series.points[0].comparisons, again.points[0].comparisons,
            "same seed must reproduce identical measurements"
        );
        // Larger inputs cost more comparisons on average.
        let means = series.means();
        assert!(means[2].1 > means[0].1);
    }

    #[test]
    fn uniform_series_is_nearly_linear() {
        let config = Figure5Config {
            distribution: AnyDistribution::uniform(10),
            sizes: vec![500, 1000, 1500, 2000, 2500],
            trials: 4,
            seed: 7,
        };
        let series = figure5_series(&config);
        let fit = series.fit.unwrap();
        assert!(
            fit.r_squared > 0.98,
            "uniform(10) should be tightly linear, R^2 = {}",
            fit.r_squared
        );
    }

    #[test]
    fn zeta_small_s_has_no_fit() {
        let config = Figure5Config {
            distribution: AnyDistribution::zeta(1.5),
            sizes: vec![200, 400],
            trials: 2,
            seed: 5,
        };
        let series = figure5_series(&config);
        assert!(!series.linear_expected);
        assert!(series.fit.is_none());
        assert_eq!(series.max_relative_spread(), 0.0);
    }

    #[test]
    fn scaled_down_config_shrinks_sizes() {
        let config = Figure5Config::paper_large(AnyDistribution::uniform(10), 1).scaled_down(100);
        assert_eq!(config.sizes[0], 100);
        assert_eq!(config.sizes.len(), 20);
        let zeta = Figure5Config::paper_zeta(AnyDistribution::zeta(2.0), 1);
        assert_eq!(zeta.sizes[0], 1_000);
        assert_eq!(zeta.sizes.last().copied(), Some(20_000));
    }

    #[test]
    fn dominance_holds_for_uniform_on_average() {
        let config = DominanceConfig {
            distribution: AnyDistribution::uniform(25),
            n: 1_500,
            trials: 6,
            seed: 11,
        };
        let result = dominance_experiment(&config);
        assert_eq!(result.measured_total.len(), 6);
        assert_eq!(result.measured_cross.len(), 6);
        assert_eq!(result.bound_samples.len(), 6);
        assert!(
            result.fraction_cross_below_bound() >= 0.99,
            "cross-class mean {} vs bound mean {}",
            result.measured_cross_mean(),
            result.bound_mean
        );
        assert!(
            result.fraction_total_below_bound_plus_n() >= 0.99,
            "total mean {} vs bound mean + n {}",
            result.measured_mean(),
            result.bound_mean + config.n as f64
        );
        // Cross-class counts are a subset of the totals.
        for (total, cross) in result.measured_total.iter().zip(&result.measured_cross) {
            assert!(cross <= total);
        }
    }

    #[test]
    fn pooled_grid_matches_per_config_series() {
        let configs = vec![
            Figure5Config {
                distribution: AnyDistribution::uniform(10),
                sizes: vec![200, 400],
                trials: 3,
                seed: 99,
            },
            Figure5Config {
                distribution: AnyDistribution::zeta(2.5),
                sizes: vec![150, 300, 450],
                trials: 2,
                seed: 7,
            },
        ];
        for pool in [
            ThroughputPool::new(ecs_model::ExecutionBackend::Sequential),
            ThroughputPool::from_jobs(4),
        ] {
            let grid = figure5_grid(&configs, &pool);
            assert_eq!(grid.len(), configs.len());
            for (config, series) in configs.iter().zip(&grid) {
                let reference = figure5_series(config);
                assert_eq!(series.label, reference.label);
                for (a, b) in series.points.iter().zip(&reference.points) {
                    assert_eq!(a.n, b.n);
                    assert_eq!(
                        a.comparisons,
                        b.comparisons,
                        "{} trial measurements diverged between pooled and serial",
                        pool.label()
                    );
                }
            }
        }
    }

    #[test]
    fn pooled_dominance_grid_matches_per_config_runs() {
        let configs = vec![
            DominanceConfig {
                distribution: AnyDistribution::uniform(25),
                n: 600,
                trials: 3,
                seed: 11,
            },
            DominanceConfig {
                distribution: AnyDistribution::geometric(0.3),
                n: 400,
                trials: 4,
                seed: 5,
            },
        ];
        let pool = ThroughputPool::from_jobs(3);
        let grid = dominance_grid(&configs, &pool);
        for (config, pooled) in configs.iter().zip(&grid) {
            let reference = dominance_experiment(config);
            assert_eq!(pooled.measured_total, reference.measured_total);
            assert_eq!(pooled.measured_cross, reference.measured_cross);
            assert_eq!(pooled.bound_samples, reference.bound_samples);
            assert_eq!(pooled.bound_mean, reference.bound_mean);
        }
    }

    #[test]
    fn explicit_backends_never_change_measurements() {
        let config = Figure5Config {
            distribution: AnyDistribution::uniform(10),
            sizes: vec![200, 400],
            trials: 2,
            seed: 3,
        };
        let reference = figure5_series_with_backend(&config, ExecutionBackend::Sequential);
        for backend in [
            ExecutionBackend::batched(64),
            ExecutionBackend::batched(0),
            ExecutionBackend::threaded(2),
        ] {
            let series = figure5_series_with_backend(&config, backend);
            for (a, b) in series.points.iter().zip(&reference.points) {
                assert_eq!(
                    a.comparisons,
                    b.comparisons,
                    "{} trial measurements diverged from sequential",
                    backend.label()
                );
            }
        }
        // The pooled grid takes the same explicit backend per trial job.
        let pool = ThroughputPool::from_jobs(2);
        let grid = figure5_grid_with_backend(
            std::slice::from_ref(&config),
            &pool,
            ExecutionBackend::batched(16),
        );
        for (a, b) in grid[0].points.iter().zip(&reference.points) {
            assert_eq!(a.comparisons, b.comparisons);
        }
        let dom_config = DominanceConfig {
            distribution: AnyDistribution::uniform(25),
            n: 400,
            trials: 2,
            seed: 11,
        };
        let dom_reference =
            dominance_experiment_with_backend(&dom_config, ExecutionBackend::Sequential);
        let dom_batched =
            dominance_experiment_with_backend(&dom_config, ExecutionBackend::batched(32));
        assert_eq!(dom_batched.measured_total, dom_reference.measured_total);
        assert_eq!(dom_batched.measured_cross, dom_reference.measured_cross);
        let dom_grid =
            dominance_grid_with_backend(&[dom_config], &pool, ExecutionBackend::batched(32));
        assert_eq!(dom_grid[0].measured_total, dom_reference.measured_total);
    }

    #[test]
    fn paper_linearity_claims() {
        assert!(paper_claims_linear(&AnyDistribution::uniform(5)));
        assert!(paper_claims_linear(&AnyDistribution::geometric(0.5)));
        assert!(paper_claims_linear(&AnyDistribution::poisson(5.0)));
        assert!(paper_claims_linear(&AnyDistribution::zeta(2.5)));
        assert!(paper_claims_linear(&AnyDistribution::zeta(2.0)));
        assert!(!paper_claims_linear(&AnyDistribution::zeta(1.5)));
    }
}
