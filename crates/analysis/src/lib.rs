//! Statistics, regression, and experiment running for the reproduction of the
//! paper's Section 5 experiments.
//!
//! The paper's experimental section runs the round-robin algorithm of
//! Jayapaul et al. on inputs whose class sizes are drawn from uniform,
//! geometric, Poisson, and zeta distributions, plots total comparisons against
//! `n`, and fits least-squares lines wherever Section 4 proves linear
//! behaviour. This crate supplies the statistical machinery (summary
//! statistics, least-squares fits with `R²`), the experiment runners that
//! regenerate each panel of Figure 5 and the Theorem 7 dominance check, and
//! plain-text/CSV/Markdown rendering for the benchmark binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiment;
pub mod regression;
pub mod report;
pub mod stats;

pub use experiment::{
    dominance_experiment, dominance_experiment_with_backend, dominance_grid,
    dominance_grid_with_backend, figure5_grid, figure5_grid_with_backend, figure5_series,
    figure5_series_with_backend, DominanceConfig, DominanceResult, Figure5Config, Figure5Point,
    Figure5Series,
};
pub use regression::LinearFit;
pub use report::Table;
pub use stats::Summary;
