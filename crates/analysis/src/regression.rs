//! Ordinary least-squares line fitting.
//!
//! Figure 5 of the paper overlays a best-fit line on every series for which
//! Section 4 proves linear comparison counts (everything except zeta with
//! `s < 2`). The fits here reproduce those lines and report `R²` so the
//! "tightly concentrated around the best fit line" observation can be checked
//! quantitatively.

/// An ordinary least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 when the fit is exact).
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a line through the points `(x[i], y[i])`.
    ///
    /// Returns `None` on degenerate inputs instead of producing NaN/Inf
    /// coefficients:
    ///
    /// * fewer than two points;
    /// * constant `x` — including *near*-singular spreads where `Σ(dx)²` is
    ///   pure floating-point rounding noise relative to the magnitude of the
    ///   data (the slope would amplify that noise to an arbitrary, often
    ///   infinite, value);
    /// * non-finite inputs (NaN/±Inf in `x` or `y`, or coefficients that
    ///   overflow).
    pub fn fit(x: &[f64], y: &[f64]) -> Option<Self> {
        assert_eq!(x.len(), y.len(), "x and y must have the same length");
        let n = x.len();
        if n < 2 {
            return None;
        }
        let mean_x = x.iter().sum::<f64>() / n as f64;
        let mean_y = y.iter().sum::<f64>() / n as f64;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        let mut x_scale = 0.0f64;
        for i in 0..n {
            let dx = x[i] - mean_x;
            let dy = y[i] - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
            x_scale = x_scale.max(x[i].abs());
        }
        // Near-singular gate: `sxx` at the level of squared rounding error of
        // the x magnitudes means the x values are numerically constant, and
        // dividing by it would only amplify representation noise. The floor
        // is built from max|x| rather than Σx² so it cannot overflow for
        // data Σ(dx)² itself can still represent. `NaN`s fail this
        // comparison too (any comparison with NaN is false).
        let noise = f64::EPSILON * x_scale;
        let singular_floor = noise * noise * n as f64;
        if !(sxx > singular_floor && sxx > 0.0) {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy <= 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        if !(slope.is_finite() && intercept.is_finite() && r_squared.is_finite()) {
            return None;
        }
        Some(Self {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// The largest relative residual `|y − ŷ| / ŷ` over the given points —
    /// the number behind the paper's "data points vary by as much as 10%"
    /// remark for zeta with `s = 2`.
    pub fn max_relative_residual(&self, x: &[f64], y: &[f64]) -> f64 {
        x.iter()
            .zip(y)
            .map(|(&xi, &yi)| {
                let pred = self.predict(xi);
                if pred.abs() < f64::EPSILON {
                    0.0
                } else {
                    ((yi - pred) / pred).abs()
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Fits `y ≈ c·x^p` by regressing `ln y` on `ln x`; returns `(p, c, r²)`.
///
/// Used to characterise the growth exponent of the zeta series with `s < 2`,
/// where the paper leaves the growth rate as an open question.
///
/// Points with non-positive (or NaN) coordinates are excluded before taking
/// logarithms; if fewer than two usable points remain, or the surviving `x`
/// values are constant or near-singular, the fit is degenerate and `None` is
/// returned (see [`LinearFit::fit`]) — never NaN/Inf exponents.
pub fn power_law_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(x.len(), y.len());
    let (lx, ly): (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y)
        .filter(|(&a, &b)| a > 0.0 && b > 0.0)
        .map(|(&a, &b)| (a.ln(), b.ln()))
        .unzip();
    let fit = LinearFit::fit(&lx, &ly)?;
    Some((fit.slope, fit.intercept.exp(), fit.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_is_recovered() {
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 67.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_or_degenerate_points() {
        assert!(LinearFit::fit(&[1.0], &[2.0]).is_none());
        assert!(LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(LinearFit::fit(&[], &[]).is_none());
    }

    #[test]
    fn near_singular_x_is_rejected_not_exploded() {
        // These x values are "equal" up to one unit of floating-point
        // rounding (0.1 + 0.2 != 0.3 in f64), so Σ(dx)² is pure noise
        // (~1e-33). The old code divided by it, amplifying the noise into an
        // astronomically large — for larger y, infinite — slope.
        let x = [0.1 + 0.2, 0.3, 0.3];
        let y = [0.0, 1e300, -1e300];
        assert!(
            LinearFit::fit(&x, &y).is_none(),
            "rounding-noise x spread must be treated as constant x"
        );
        // A small-but-real spread is still fitted.
        let fit = LinearFit::fit(&[1.0, 1.000001, 1.000002], &[1.0, 2.0, 3.0]).unwrap();
        assert!(fit.slope.is_finite());
        assert!((fit.slope - 1e6).abs() / 1e6 < 1e-3);
        // Huge-but-well-conditioned magnitudes are still fitted: the
        // singular floor is built from max|x|, so it cannot overflow the way
        // a Σx² floor would (Σx² = inf would reject every such fit).
        let fit = LinearFit::fit(&[1.4e154, 1.5e154, 1.6e154], &[1.0, 2.0, 3.0]).unwrap();
        assert!(fit.slope.is_finite());
        assert!(
            (fit.slope * 1e153 - 1.0).abs() < 1e-6,
            "slope = dy/dx = 1e-153"
        );
    }

    #[test]
    fn non_finite_inputs_are_rejected() {
        assert!(LinearFit::fit(&[1.0, f64::NAN, 3.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(LinearFit::fit(&[1.0, 2.0, 3.0], &[1.0, f64::NAN, 3.0]).is_none());
        assert!(LinearFit::fit(&[1.0, f64::INFINITY], &[1.0, 2.0]).is_none());
        assert!(LinearFit::fit(&[1.0, 2.0], &[f64::NEG_INFINITY, 2.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = LinearFit::fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn constant_y_has_r_squared_one() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r_squared() {
        let x: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!(fit.r_squared > 0.99);
        assert!(fit.r_squared < 1.0);
        assert!(fit.max_relative_residual(&x, &y) < 0.5);
    }

    #[test]
    fn power_law_degenerate_inputs_return_none() {
        // Constant x after the positivity filter: the log-log regression has
        // an undefined exponent.
        assert!(power_law_fit(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]).is_none());
        // Non-positive coordinates are filtered; fewer than two points
        // survive, so no fit — not a NaN from ln of a non-positive value.
        assert!(power_law_fit(&[-1.0, 0.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(power_law_fit(&[1.0, 2.0, 3.0], &[0.0, -2.0, 3.0]).is_none());
        assert!(power_law_fit(&[], &[]).is_none());
        // NaNs fail the positivity filter rather than poisoning the logs.
        assert!(power_law_fit(&[f64::NAN, 2.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn power_law_recovers_exponent() {
        let x: Vec<f64> = (1..=40).map(|i| i as f64 * 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.5 * v.powf(1.7)).collect();
        let (p, c, r2) = power_law_fit(&x, &y).unwrap();
        assert!((p - 1.7).abs() < 1e-9);
        assert!((c - 0.5).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn r_squared_is_in_unit_interval(
            points in proptest::collection::vec((0.0f64..1e4, -1e4f64..1e4), 2..60)
        ) {
            let x: Vec<f64> = points.iter().map(|p| p.0).collect();
            let y: Vec<f64> = points.iter().map(|p| p.1).collect();
            if let Some(fit) = LinearFit::fit(&x, &y) {
                prop_assert!(fit.r_squared >= -1e-9);
                prop_assert!(fit.r_squared <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn fit_minimises_error_against_nearby_lines(
            points in proptest::collection::vec((0.0f64..100.0, -100.0f64..100.0), 3..40)
        ) {
            let x: Vec<f64> = points.iter().map(|p| p.0).collect();
            let y: Vec<f64> = points.iter().map(|p| p.1).collect();
            if let Some(fit) = LinearFit::fit(&x, &y) {
                let sse = |slope: f64, intercept: f64| -> f64 {
                    x.iter().zip(&y).map(|(&xi, &yi)| (yi - slope * xi - intercept).powi(2)).sum()
                };
                let best = sse(fit.slope, fit.intercept);
                for (ds, di) in [(0.01, 0.0), (-0.01, 0.0), (0.0, 0.5), (0.0, -0.5)] {
                    prop_assert!(best <= sse(fit.slope + ds, fit.intercept + di) + 1e-6);
                }
            }
        }
    }
}
