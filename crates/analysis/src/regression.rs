//! Ordinary least-squares line fitting.
//!
//! Figure 5 of the paper overlays a best-fit line on every series for which
//! Section 4 proves linear comparison counts (everything except zeta with
//! `s < 2`). The fits here reproduce those lines and report `R²` so the
//! "tightly concentrated around the best fit line" observation can be checked
//! quantitatively.

/// An ordinary least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 when the fit is exact).
    pub r_squared: f64,
}

impl LinearFit {
    /// Fits a line through the points `(x[i], y[i])`.
    ///
    /// Returns `None` if fewer than two points are given or all `x` values are
    /// identical (the slope would be undefined).
    pub fn fit(x: &[f64], y: &[f64]) -> Option<Self> {
        assert_eq!(x.len(), y.len(), "x and y must have the same length");
        let n = x.len();
        if n < 2 {
            return None;
        }
        let mean_x = x.iter().sum::<f64>() / n as f64;
        let mean_y = y.iter().sum::<f64>() / n as f64;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for i in 0..n {
            let dx = x[i] - mean_x;
            let dy = y[i] - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx <= 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy <= 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Some(Self {
            slope,
            intercept,
            r_squared,
        })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// The largest relative residual `|y − ŷ| / ŷ` over the given points —
    /// the number behind the paper's "data points vary by as much as 10%"
    /// remark for zeta with `s = 2`.
    pub fn max_relative_residual(&self, x: &[f64], y: &[f64]) -> f64 {
        x.iter()
            .zip(y)
            .map(|(&xi, &yi)| {
                let pred = self.predict(xi);
                if pred.abs() < f64::EPSILON {
                    0.0
                } else {
                    ((yi - pred) / pred).abs()
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Fits `y ≈ c·x^p` by regressing `ln y` on `ln x`; returns `(p, c, r²)`.
///
/// Used to characterise the growth exponent of the zeta series with `s < 2`,
/// where the paper leaves the growth rate as an open question.
pub fn power_law_fit(x: &[f64], y: &[f64]) -> Option<(f64, f64, f64)> {
    assert_eq!(x.len(), y.len());
    let (lx, ly): (Vec<f64>, Vec<f64>) = x
        .iter()
        .zip(y)
        .filter(|(&a, &b)| a > 0.0 && b > 0.0)
        .map(|(&a, &b)| (a.ln(), b.ln()))
        .unzip();
    let fit = LinearFit::fit(&lx, &ly)?;
    Some((fit.slope, fit.intercept.exp(), fit.r_squared))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_is_recovered() {
        let x: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!((fit.slope - 3.0).abs() < 1e-12);
        assert!((fit.intercept - 7.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(20.0) - 67.0).abs() < 1e-9);
    }

    #[test]
    fn too_few_or_degenerate_points() {
        assert!(LinearFit::fit(&[1.0], &[2.0]).is_none());
        assert!(LinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
        assert!(LinearFit::fit(&[], &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let _ = LinearFit::fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn constant_y_has_r_squared_one() {
        let fit = LinearFit::fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r_squared() {
        let x: Vec<f64> = (1..=50).map(|i| i as f64).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| 2.0 * v + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = LinearFit::fit(&x, &y).unwrap();
        assert!(fit.r_squared > 0.99);
        assert!(fit.r_squared < 1.0);
        assert!(fit.max_relative_residual(&x, &y) < 0.5);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let x: Vec<f64> = (1..=40).map(|i| i as f64 * 10.0).collect();
        let y: Vec<f64> = x.iter().map(|v| 0.5 * v.powf(1.7)).collect();
        let (p, c, r2) = power_law_fit(&x, &y).unwrap();
        assert!((p - 1.7).abs() < 1e-9);
        assert!((c - 0.5).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn r_squared_is_in_unit_interval(
            points in proptest::collection::vec((0.0f64..1e4, -1e4f64..1e4), 2..60)
        ) {
            let x: Vec<f64> = points.iter().map(|p| p.0).collect();
            let y: Vec<f64> = points.iter().map(|p| p.1).collect();
            if let Some(fit) = LinearFit::fit(&x, &y) {
                prop_assert!(fit.r_squared >= -1e-9);
                prop_assert!(fit.r_squared <= 1.0 + 1e-9);
            }
        }

        #[test]
        fn fit_minimises_error_against_nearby_lines(
            points in proptest::collection::vec((0.0f64..100.0, -100.0f64..100.0), 3..40)
        ) {
            let x: Vec<f64> = points.iter().map(|p| p.0).collect();
            let y: Vec<f64> = points.iter().map(|p| p.1).collect();
            if let Some(fit) = LinearFit::fit(&x, &y) {
                let sse = |slope: f64, intercept: f64| -> f64 {
                    x.iter().zip(&y).map(|(&xi, &yi)| (yi - slope * xi - intercept).powi(2)).sum()
                };
                let best = sse(fit.slope, fit.intercept);
                for (ds, di) in [(0.01, 0.0), (-0.01, 0.0), (0.0, 0.5), (0.0, -0.5)] {
                    prop_assert!(best <= sse(fit.slope + ds, fit.intercept + di) + 1e-6);
                }
            }
        }
    }
}
