//! Plain-text, Markdown, and CSV rendering of experiment results.

/// A simple rectangular table with named columns.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row has {} cells but the table has {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Convenience for building a row out of displayable values.
    pub fn push_display_row<D: std::fmt::Display>(&mut self, row: &[D]) {
        self.push_row(row.iter().map(|d| d.to_string()).collect());
    }

    /// Renders as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("### {}\n\n", self.title));
        }
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders as CSV (header row first).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders as an aligned plain-text table for terminal output.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("{}\n", self.title));
        }
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to a file.
    pub fn write_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with a sensible number of significant digits for tables.
pub fn fmt_float(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 1000.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["n", "comparisons"]);
        t.push_row(vec!["10".into(), "45".into()]);
        t.push_row(vec!["20".into(), "190".into()]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| n | comparisons |"));
        assert!(md.contains("| 10 | 45 |"));
        assert_eq!(md.matches('\n').count(), 6);
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["1,5".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"1,5\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let txt = sample().to_text();
        assert!(txt.contains("demo"));
        let lines: Vec<&str> = txt.lines().collect();
        assert!(lines.len() >= 4);
        assert!(lines[1].starts_with("n "));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn wrong_width_row_rejected() {
        let mut t = sample();
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn display_row_and_counts() {
        let mut t = Table::new("", &["x", "y"]);
        t.push_display_row(&[1.5, 2.5]);
        assert_eq!(t.num_rows(), 1);
        assert!(t.to_markdown().contains("| 1.5 | 2.5 |"));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let t = sample();
        let path = std::env::temp_dir().join("ecs_analysis_report_test.csv");
        t.write_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, t.to_csv());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(1234.7), "1235");
        assert_eq!(fmt_float(12.345), "12.35");
        assert_eq!(fmt_float(0.01234), "0.0123");
    }
}
