//! Summary statistics (Welford's online algorithm).

/// Streaming mean / variance / extremes of a sample, computed with Welford's
/// numerically stable update.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice of observations.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Sample mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`NaN`-free input assumed); 0 if empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 if empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Coefficient of variation (`std_dev / mean`), 0 when the mean is 0.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean()
        }
    }

    /// A symmetric ~95% confidence half-width for the mean
    /// (`1.96 × std_error`).
    pub fn confidence95(&self) -> f64 {
        1.96 * self.std_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_all_zero() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; the unbiased sample variance is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn coefficient_of_variation_and_confidence() {
        let s = Summary::from_slice(&[10.0, 12.0, 8.0, 10.0]);
        assert!(s.coefficient_of_variation() > 0.0);
        assert!(s.confidence95() > 0.0);
        let zero_mean = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(zero_mean.coefficient_of_variation(), 0.0);
    }

    proptest! {
        #[test]
        fn matches_two_pass_computation(values in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::from_slice(&values);
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
            if values.len() > 1 {
                let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
                prop_assert!((s.variance() - var).abs() < 1e-4 * var.abs().max(1.0));
            }
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert_eq!(s.min(), min);
            prop_assert_eq!(s.max(), max);
        }

        #[test]
        fn mean_is_within_min_max(values in proptest::collection::vec(-1e3f64..1e3, 1..50)) {
            let s = Summary::from_slice(&values);
            prop_assert!(s.mean() >= s.min() - 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
        }
    }
}
