//! Measures adversarial lower-bound rounds under the round-commit protocol:
//! sequential vs pooled vs batched evaluation of the same run, plus the whole
//! Theorem 5 grid drained serially vs through the throughput pool.
//!
//! Every group first asserts bit-identity (forced comparisons and committed
//! partition) across the configurations it times, so a regression in the
//! protocol's determinism fails the bench before any number is reported.
//! Set `ECS_BENCH_SMOKE=1` to shrink the workload (used by CI on every
//! push).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_adversary::{
    EqualSizeAdversary, LegacyAdversary, SmallestClassAdversary, SmallestClassSearch,
};
use ecs_bench::runners::{theorem5_table, AdversaryAlgorithm};
use ecs_bench::smoke;
use ecs_core::{EcsAlgorithm, ErMergeSort};
use ecs_model::{ExecutionBackend, ThroughputPool};
use std::hint::black_box;

/// The backends one adversarial run is timed on. The threaded backend uses
/// `threshold: 1` so even test-sized rounds cross the pool.
fn backends() -> [ExecutionBackend; 4] {
    [
        ExecutionBackend::Sequential,
        ExecutionBackend::Threaded {
            threads: 2,
            threshold: 1,
        },
        ExecutionBackend::batched(64),
        ExecutionBackend::batched(0),
    ]
}

/// One full ER merge sort against the Theorem 5 adversary on `backend`.
fn forced_run(n: usize, f: usize, backend: ExecutionBackend) -> (u64, ecs_model::Partition) {
    let adversary = EqualSizeAdversary::new(n, f);
    let run = ErMergeSort::new().sort_with_backend(&adversary, backend);
    assert_eq!(run.partition, adversary.partition());
    (adversary.comparisons(), run.partition)
}

fn round_protocol(c: &mut Criterion) {
    let (n, f) = if smoke() { (128, 8) } else { (512, 16) };

    // Determinism gate: identical forced counts and partitions everywhere.
    // backends()[0] is Sequential — the reference itself — so skip it.
    let reference = forced_run(n, f, ExecutionBackend::Sequential);
    for backend in backends().into_iter().skip(1) {
        assert_eq!(
            forced_run(n, f, backend),
            reference,
            "adversarial run diverged on {}",
            backend.label()
        );
    }

    let mut group = c.benchmark_group("adversary_round_protocol");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(if smoke() { 1 } else { 2 }));
    for backend in backends() {
        group.bench_with_input(
            BenchmarkId::new("er_merge_vs_equal_size", backend.label()),
            &backend,
            |b, &backend| {
                b.iter(|| black_box(forced_run(n, f, backend).0));
            },
        );
    }
    group.finish();
}

/// Packed bitset substrate vs the retained pointer substrate: the same ER
/// merge sort forced through the Theorem 5 adversary on both
/// representations, gated on bit-identical histories before timing.
fn substrates(c: &mut Criterion) {
    let (n, f) = if smoke() { (128, 8) } else { (512, 16) };

    // Identity gate: the pointer reference must be driven through the exact
    // same history (forced count and committed partition) as the packed
    // production core.
    let packed_reference = {
        let adversary = EqualSizeAdversary::new(n, f);
        let run = ErMergeSort::new().sort(&adversary);
        assert_eq!(run.partition, adversary.partition());
        (adversary.comparisons(), adversary.partition())
    };
    let legacy_reference = {
        let adversary = LegacyAdversary::equal_size(n, f);
        let run = ErMergeSort::new().sort(&adversary);
        assert_eq!(run.partition, adversary.partition());
        (adversary.comparisons(), adversary.partition())
    };
    assert_eq!(
        packed_reference, legacy_reference,
        "packed and pointer substrates diverged at n={n}, f={f}"
    );

    let mut group = c.benchmark_group("adversary_substrates");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(if smoke() { 1 } else { 2 }));
    group.bench_with_input(BenchmarkId::new("er_merge", "packed"), &(), |b, _| {
        b.iter(|| {
            let adversary = EqualSizeAdversary::new(n, f);
            let _ = ErMergeSort::new().sort(&adversary);
            black_box(adversary.comparisons())
        });
    });
    group.bench_with_input(BenchmarkId::new("er_merge", "pointer"), &(), |b, _| {
        b.iter(|| {
            let adversary = LegacyAdversary::equal_size(n, f);
            let _ = ErMergeSort::new().sort(&adversary);
            black_box(adversary.comparisons())
        });
    });
    group.finish();
}

fn grid_throughput(c: &mut Criterion) {
    let grid: Vec<(usize, usize)> = if smoke() {
        vec![(128, 4), (128, 8)]
    } else {
        vec![(256, 4), (256, 8), (512, 16)]
    };
    let algorithms = AdversaryAlgorithm::all();
    let pools = [
        ThroughputPool::from_jobs(1),
        ThroughputPool::from_jobs(2),
        ThroughputPool::from_jobs(4),
    ];

    // Determinism gate: the rendered table is byte-identical for every pool
    // (pools[0] is the serial reference itself, so it is not re-run).
    let reference =
        theorem5_table(&grid, &algorithms, &pools[0], ExecutionBackend::Sequential).to_markdown();
    for pool in &pools[1..] {
        assert_eq!(
            theorem5_table(&grid, &algorithms, pool, ExecutionBackend::Sequential).to_markdown(),
            reference,
            "lower-bound grid diverged under pool {}",
            pool.label()
        );
    }

    let mut group = c.benchmark_group("adversary_grid_throughput");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(if smoke() { 1 } else { 3 }));
    for pool in pools {
        group.bench_with_input(
            BenchmarkId::new("theorem5_grid", pool.label()),
            &pool,
            |b, pool| {
                b.iter(|| {
                    let table =
                        theorem5_table(&grid, &algorithms, pool, ExecutionBackend::Sequential);
                    black_box(table.num_rows())
                });
            },
        );
    }
    group.finish();
}

/// Incremental plan cache vs the full-replan baseline on the repeat-heavy
/// Theorem 6 adaptive-search workload (audit mode re-asks every earlier
/// block's intra-block pairs each phase), gated on bit-identical histories —
/// partition, forced comparisons, and session metrics — before timing.
fn incremental_planning(c: &mut Criterion) {
    let (n, ell, wave) = if smoke() { (96, 4, 16) } else { (384, 8, 32) };

    let run = |full_replan: bool| {
        let adversary = SmallestClassAdversary::new(n, ell);
        let adversary = if full_replan {
            adversary.with_full_replan()
        } else {
            adversary
        };
        let report = SmallestClassSearch::new(wave)
            .with_audit()
            .run(&adversary, ExecutionBackend::Sequential);
        assert_eq!(report.partition, adversary.partition());
        (
            report.partition,
            adversary.comparisons(),
            report.metrics,
            adversary.plan_stats(),
        )
    };

    // Bit-identity gate: the two plan modes must produce the same history;
    // only the replay-count witness may differ — and the incremental planner
    // must actually replay fewer entries on this repeat-heavy workload.
    let incremental = run(false);
    let full = run(true);
    assert_eq!(
        (&incremental.0, incremental.1, &incremental.2),
        (&full.0, full.1, &full.2),
        "plan modes diverged at n={n}, ell={ell}, wave={wave}"
    );
    assert!(
        incremental.3.replayed < full.3.replayed,
        "incremental planning did not reduce replays: {:?} vs {:?}",
        incremental.3,
        full.3
    );

    let mut group = c.benchmark_group("incremental_planning");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(if smoke() { 1 } else { 2 }));
    group.bench_with_input(BenchmarkId::new("search_audit", "cached"), &(), |b, _| {
        b.iter(|| black_box(run(false).1));
    });
    group.bench_with_input(
        BenchmarkId::new("search_audit", "full_replan"),
        &(),
        |b, _| {
            b.iter(|| black_box(run(true).1));
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    round_protocol,
    substrates,
    grid_throughput,
    incremental_planning
);
criterion_main!(benches);
