//! Sequential vs. threaded round evaluation: wall-clock scaling of the
//! execution backend on large instances.
//!
//! Two workloads, both with `n >= 100_000` elements by default:
//!
//! * **balanced** — a single maximal ER round (a perfect matching of
//!   `n / 2` comparison pairs) on a balanced 8-class instance;
//! * **zeta** — the same round shape on a heavy-tailed zeta(2.5) instance,
//!   the paper's adversarial distribution regime.
//!
//! Each workload is evaluated under the sequential backend and 2-, 4- and
//! 8-thread work-stealing pools; answers are asserted bit-identical across
//! backends before timing starts. An algorithm-level group times the full
//! Theorem 1 compound-merge sort under each backend.
//!
//! Set `ECS_BENCH_SMOKE=1` to shrink the instances (used by CI to exercise
//! the harness on every push without paying the full measurement cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_bench::smoke;
use ecs_core::{CrCompoundMerge, EcsAlgorithm};
use ecs_distributions::class_distribution::AnyDistribution;
use ecs_model::{ComparisonSession, ExecutionBackend, Instance, InstanceOracle, ReadMode};
use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
use std::hint::black_box;

fn backends() -> Vec<ExecutionBackend> {
    vec![
        ExecutionBackend::Sequential,
        ExecutionBackend::threaded(2),
        ExecutionBackend::threaded(4),
        ExecutionBackend::threaded(8),
    ]
}

/// A maximal ER round: the perfect matching (0,1), (2,3), ...
fn matching_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn bench_round_evaluation(
    c: &mut Criterion,
    group_name: &str,
    instance: &Instance,
    pairs: &[(usize, usize)],
) {
    // Concurrent-read mode so the timed path is the backend's evaluation
    // alone: exclusive-read validation rebuilds a matching HashSet per round,
    // which would dominate the measurement (the pairs are a matching either
    // way).
    let oracle = InstanceOracle::new(instance);
    let reference = {
        let mut session = ComparisonSession::with_backend(
            &oracle,
            ReadMode::Concurrent,
            ExecutionBackend::Sequential,
        );
        session.execute_round(pairs)
    };

    let mut group = c.benchmark_group(group_name);
    group.sample_size(if smoke() { 3 } else { 10 });
    for backend in backends() {
        // Determinism gate: every backend must reproduce the sequential
        // answers bit-for-bit before its timing is worth reporting.
        let mut check = ComparisonSession::with_backend(&oracle, ReadMode::Concurrent, backend);
        assert_eq!(
            check.execute_round(pairs),
            reference,
            "{} diverged from sequential answers",
            backend.label()
        );

        group.bench_with_input(
            BenchmarkId::new("execute_round", backend.label()),
            pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut session =
                        ComparisonSession::with_backend(&oracle, ReadMode::Concurrent, backend);
                    black_box(session.execute_round(pairs).len())
                });
            },
        );
    }
    group.finish();
}

fn balanced_round(c: &mut Criterion) {
    let n = if smoke() { 20_000 } else { 200_000 };
    let mut rng = Xoshiro256StarStar::seed_from_u64(2016);
    let instance = Instance::balanced(n, 8, &mut rng);
    let pairs = matching_pairs(n);
    bench_round_evaluation(c, &format!("backend_balanced_n{n}"), &instance, &pairs);
}

fn zeta_round(c: &mut Criterion) {
    let n = if smoke() { 10_000 } else { 100_000 };
    let mut rng = Xoshiro256StarStar::seed_from_u64(2016);
    let instance = Instance::from_distribution(&AnyDistribution::zeta(2.5), n, &mut rng);
    let pairs = matching_pairs(n);
    bench_round_evaluation(c, &format!("backend_zeta_n{n}"), &instance, &pairs);
}

fn cr_compound_sort(c: &mut Criterion) {
    let n = if smoke() { 10_000 } else { 100_000 };
    let k = 8;
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let instance = Instance::balanced(n, k, &mut rng);
    let oracle = InstanceOracle::new(&instance);

    let mut group = c.benchmark_group(format!("backend_cr_compound_n{n}"));
    group.sample_size(if smoke() { 3 } else { 10 });
    for backend in backends() {
        group.bench_with_input(
            BenchmarkId::new("sort", backend.label()),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let run = CrCompoundMerge::new(k).sort_with_backend(&oracle, backend);
                    debug_assert!(instance.verify(&run.partition));
                    black_box(run.metrics.comparisons())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, balanced_round, zeta_round, cr_compound_sort);
criterion_main!(benches);
