//! Self-tuning vs. best-fixed execution: does `Backend::Auto` earn its keep?
//!
//! Three groups on a large balanced instance:
//!
//! * **round** — one maximal ER round (a perfect matching of `n / 2` pairs)
//!   under `Auto`, the sequential backend, and the fixed threaded pools it
//!   chooses between. Every backend is gated on bit-identical answers before
//!   timing starts, and `Auto` is additionally gated on replaying its own
//!   calibration log to the same answers.
//! * **sort** — the full Theorem 1 compound-merge sort under `Auto` vs. the
//!   fixed backends, the end-to-end view of the same question.
//! * **probe** — the calibration micro-probe itself (uncached path cost is
//!   amortized by a process-wide `OnceLock`; this times the cached read),
//!   plus the per-round `preview` decision lookup — the overhead `Auto`
//!   pays on top of whatever backend it lowers to.
//!
//! Set `ECS_BENCH_SMOKE=1` to shrink the instances (used by CI to exercise
//! the harness on every push without paying the full measurement cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_bench::smoke;
use ecs_core::{CrCompoundMerge, EcsAlgorithm};
use ecs_model::{
    CalibrationProbe, ComparisonSession, ExecutionBackend, Instance, InstanceOracle, ReadMode,
};
use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
use std::hint::black_box;

/// The fixed backends `Auto` lowers onto, for side-by-side comparison.
fn fixed_backends() -> Vec<ExecutionBackend> {
    vec![
        ExecutionBackend::Sequential,
        ExecutionBackend::threaded(2),
        ExecutionBackend::threaded(4),
    ]
}

/// A maximal ER round: the perfect matching (0,1), (2,3), ...
fn matching_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn auto_round(c: &mut Criterion) {
    let n = if smoke() { 20_000 } else { 200_000 };
    let mut rng = Xoshiro256StarStar::seed_from_u64(2016);
    let instance = Instance::balanced(n, 8, &mut rng);
    let oracle = InstanceOracle::new(&instance);
    let pairs = matching_pairs(n);

    let reference = {
        let mut session = ComparisonSession::with_backend(
            &oracle,
            ReadMode::Concurrent,
            ExecutionBackend::Sequential,
        );
        session.execute_round(&pairs)
    };

    // Bit-identity gate, with the replay leg: an `Auto` recording must
    // reproduce the sequential answers, and so must a replay of its log.
    let recorder = ExecutionBackend::auto();
    let mut check = ComparisonSession::with_backend(&oracle, ReadMode::Concurrent, recorder);
    assert_eq!(
        check.execute_round(&pairs),
        reference,
        "auto diverged from sequential answers"
    );
    let log = recorder
        .calibration()
        .expect("auto exposes its calibration handle")
        .finish();
    let replayer = ExecutionBackend::auto_replay(&log);
    let mut check = ComparisonSession::with_backend(&oracle, ReadMode::Concurrent, replayer);
    assert_eq!(
        check.execute_round(&pairs),
        reference,
        "auto replay diverged from sequential answers"
    );

    let mut group = c.benchmark_group(format!("calibration_round_n{n}"));
    group.sample_size(if smoke() { 3 } else { 10 });
    let mut contenders = fixed_backends();
    contenders.push(ExecutionBackend::auto());
    for backend in contenders {
        group.bench_with_input(
            BenchmarkId::new("execute_round", backend.label()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut session =
                        ComparisonSession::with_backend(&oracle, ReadMode::Concurrent, backend);
                    black_box(session.execute_round(pairs).len())
                });
            },
        );
    }
    group.finish();
}

fn auto_sort(c: &mut Criterion) {
    let n = if smoke() { 10_000 } else { 100_000 };
    let k = 8;
    let mut rng = Xoshiro256StarStar::seed_from_u64(7);
    let instance = Instance::balanced(n, k, &mut rng);
    let oracle = InstanceOracle::new(&instance);

    let mut group = c.benchmark_group(format!("calibration_sort_n{n}"));
    group.sample_size(if smoke() { 3 } else { 10 });
    let mut contenders = fixed_backends();
    contenders.push(ExecutionBackend::auto());
    for backend in contenders {
        group.bench_with_input(
            BenchmarkId::new("sort", backend.label()),
            &instance,
            |b, instance| {
                b.iter(|| {
                    let run = CrCompoundMerge::new(k).sort_with_backend(&oracle, backend);
                    debug_assert!(instance.verify(&run.partition));
                    black_box(run.metrics.comparisons())
                });
            },
        );
    }
    group.finish();
}

fn calibration_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration_overhead");
    group.sample_size(if smoke() { 3 } else { 10 });
    group.bench_function("probe_cached", |b| {
        b.iter(|| black_box(CalibrationProbe::measure().pair_ns));
    });
    let backend = ExecutionBackend::auto();
    group.bench_function("preview_decision", |b| {
        b.iter(|| black_box(black_box(backend).worker_decision().threads));
    });
    group.finish();
}

criterion_group!(benches, auto_round, auto_sort, calibration_overhead);
criterion_main!(benches);
