//! Criterion benchmarks for the lower-bound adversaries of Theorems 5 and 6:
//! time to run a full classification against the adaptive oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_adversary::{EqualSizeAdversary, SmallestClassAdversary};
use ecs_core::{EcsAlgorithm, RepresentativeScan};
use std::hint::black_box;

fn equal_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_equal_size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, f) in &[(256usize, 8usize), (512, 16)] {
        group.bench_with_input(
            BenchmarkId::new("rep_scan_vs_adversary", format!("n{n}_f{f}")),
            &(n, f),
            |b, &(n, f)| {
                b.iter(|| {
                    let adversary = EqualSizeAdversary::new(n, f);
                    let run = RepresentativeScan::new().sort(&adversary);
                    black_box((run.metrics.comparisons(), adversary.comparisons()))
                });
            },
        );
    }
    group.finish();
}

fn smallest_class(c: &mut Criterion) {
    let mut group = c.benchmark_group("adversary_smallest_class");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, ell) in &[(256usize, 8usize), (512, 8)] {
        group.bench_with_input(
            BenchmarkId::new("rep_scan_vs_adversary", format!("n{n}_l{ell}")),
            &(n, ell),
            |b, &(n, ell)| {
                b.iter(|| {
                    let adversary = SmallestClassAdversary::new(n, ell);
                    let run = RepresentativeScan::new().sort(&adversary);
                    black_box((run.metrics.comparisons(), adversary.comparisons()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, equal_size, smallest_class);
criterion_main!(benches);
