//! Scalar vs batched round evaluation under a synthetic-latency oracle.
//!
//! The paper's cost model charges rounds by oracle *queries*; for an oracle
//! whose cost is dominated by a per-request fixed cost (a service round
//! trip, a seek into a disk-resident partition), a round of `m` comparisons
//! evaluated pair-at-a-time is `m` blocking round trips. This bench puts a
//! number on what [`ExecutionBackend::Batched`] buys back:
//!
//! * **round evaluation** — one large ER round on a [`SyntheticLatencyOracle`]
//!   (a fixed per-request latency plus a small per-pair cost, busy-waited so
//!   the measurement is scheduler-independent), evaluated under the
//!   sequential backend and batched backends with several wave sizes;
//! * **coalescing adapter** — the same query volume issued as concurrent
//!   scalar `same` calls from [`ThroughputPool`] job workers, with and
//!   without a [`BatchingOracle`] wrapping the slow oracle.
//!
//! Answers are asserted bit-identical across configurations before any
//! timing starts. Set `ECS_BENCH_SMOKE=1` to shrink the workload (used by CI
//! to exercise the harness on every push).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_bench::smoke;
use ecs_model::throughput::Job;
use ecs_model::{
    BatchingOracle, ComparisonSession, EquivalenceOracle, ExecutionBackend, LabelOracle, ReadMode,
    ThroughputPool,
};
use std::time::{Duration, Instant};

/// Busy-waits for `duration` — `thread::sleep` has millisecond-scale
/// granularity on some hosts, far above the microsecond latencies modelled
/// here.
fn spin_for(duration: Duration) {
    let start = Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

/// An oracle modelling an I/O-backed service: every request (scalar or
/// batch) costs a fixed latency, plus a small per-pair cost inside a batch.
/// Batching a round therefore amortizes the dominant fixed cost over the
/// whole wave.
struct SyntheticLatencyOracle {
    inner: LabelOracle,
    /// Fixed cost per request (one `same` call or one `same_batch` wave).
    per_request: Duration,
    /// Marginal cost per pair inside a batch.
    per_pair: Duration,
}

impl SyntheticLatencyOracle {
    fn new(labels: Vec<u32>, per_request_us: u64, per_pair_ns: u64) -> Self {
        Self {
            inner: LabelOracle::new(labels),
            per_request: Duration::from_micros(per_request_us),
            per_pair: Duration::from_nanos(per_pair_ns),
        }
    }
}

impl EquivalenceOracle for SyntheticLatencyOracle {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        spin_for(self.per_request + self.per_pair);
        self.inner.same(a, b)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        spin_for(self.per_request + self.per_pair * pairs.len() as u32);
        self.inner.same_batch(pairs)
    }
}

fn matching_pairs(n: usize) -> Vec<(usize, usize)> {
    (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect()
}

fn round_evaluation(c: &mut Criterion) {
    let n = if smoke() { 2_000 } else { 20_000 };
    let labels: Vec<u32> = (0..n as u32).map(|i| i % 16).collect();
    // 20µs per request: a fast same-rack service call; 50ns marginal per
    // batched pair.
    let oracle = SyntheticLatencyOracle::new(labels, 20, 50);
    let pairs = matching_pairs(n);

    let backends = [
        ExecutionBackend::Sequential,
        ExecutionBackend::batched(64),
        ExecutionBackend::batched(256),
        ExecutionBackend::batched(0), // whole round as one wave
    ];

    // Determinism gate: every batched configuration must reproduce the
    // scalar answers bit-for-bit before its timing is worth reporting.
    let reference = {
        let mut session = ComparisonSession::with_backend(
            &oracle,
            ReadMode::Concurrent,
            ExecutionBackend::Sequential,
        );
        session.execute_round(&pairs)
    };
    for backend in backends {
        let mut session = ComparisonSession::with_backend(&oracle, ReadMode::Concurrent, backend);
        assert_eq!(
            session.execute_round(&pairs),
            reference,
            "{} diverged from scalar answers",
            backend.label()
        );
    }

    let mut group = c.benchmark_group(format!("oracle_batching_round_n{n}"));
    group.sample_size(if smoke() { 3 } else { 10 });
    for backend in backends {
        group.bench_with_input(
            BenchmarkId::new("execute_round", backend.label()),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut session =
                        ComparisonSession::with_backend(&oracle, ReadMode::Concurrent, backend);
                    std::hint::black_box(session.execute_round(pairs).len())
                });
            },
        );
    }
    group.finish();
}

/// The concurrent-scalar regime: pool jobs each issue one `same` call at a
/// time against a shared slow oracle, with and without wave coalescing.
fn coalescing_adapter(c: &mut Criterion) {
    let n = if smoke() { 256 } else { 1_024 };
    let queries = if smoke() { 200 } else { 2_000 };
    let workers = 4;
    let labels: Vec<u32> = (0..n as u32).map(|i| i % 8).collect();
    let plain = SyntheticLatencyOracle::new(labels.clone(), 20, 50);

    let query_pairs: Vec<(usize, usize)> = (0..queries)
        .map(|q| {
            let a = (q * 7) % n;
            let b = (a + 1 + (q * 13) % (n - 1)) % n;
            (a, b)
        })
        .filter(|&(a, b)| a != b)
        .collect();
    let reference: Vec<bool> = query_pairs
        .iter()
        .map(|&(a, b)| plain.inner.same(a, b))
        .collect();

    let run_through_pool = |oracle: &(dyn EquivalenceOracle + Sync)| -> Vec<bool> {
        let pool = ThroughputPool::from_jobs(workers);
        let jobs: Vec<Job<'_, bool>> = query_pairs
            .iter()
            .map(|&(a, b)| Box::new(move || oracle.same(a, b)) as Job<'_, bool>)
            .collect();
        pool.run(jobs)
    };

    let coalescing = BatchingOracle::with_linger(
        SyntheticLatencyOracle::new(labels, 20, 50),
        workers,
        Duration::from_micros(100),
    );
    assert_eq!(
        run_through_pool(&plain),
        reference,
        "plain pooled queries diverged"
    );
    assert_eq!(
        run_through_pool(&coalescing),
        reference,
        "coalesced pooled queries diverged"
    );

    let mut group = c.benchmark_group(format!("oracle_batching_coalesce_{queries}_queries"));
    group.sample_size(if smoke() { 3 } else { 10 });
    group.bench_function(BenchmarkId::new("pooled_scalar", "plain"), |b| {
        b.iter(|| std::hint::black_box(run_through_pool(&plain).len()));
    });
    group.bench_function(BenchmarkId::new("pooled_scalar", "coalescing(4)"), |b| {
        b.iter(|| std::hint::black_box(run_through_pool(&coalescing).len()));
    });
    group.finish();
    println!(
        "coalescing stats: {} queries in {} waves ({} coalesced)",
        coalescing.queries(),
        coalescing.waves_flushed(),
        coalescing.coalesced_queries()
    );
}

criterion_group!(benches, round_evaluation, coalescing_adapter);
criterion_main!(benches);
