//! Criterion benchmarks for the parallel algorithms of Theorems 1, 2, and 4,
//! including the ablation between the sharp and conservative choices of the
//! Hamiltonian-cycle count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_core::{CrCompoundMerge, EcsAlgorithm, ErConstantRound, ErMergeSort};
use ecs_model::{Instance, InstanceOracle};
use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
use std::hint::black_box;

fn cr_compound(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_cr");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, k) in &[(5_000usize, 4usize), (20_000, 8)] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let instance = Instance::balanced(n, k, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("cr_compound", format!("n{n}_k{k}")),
            &instance,
            |b, instance| {
                let oracle = InstanceOracle::new(instance);
                b.iter(|| black_box(CrCompoundMerge::new(k).sort(&oracle).metrics.rounds()));
            },
        );
    }
    group.finish();
}

fn er_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_er");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(n, k) in &[(5_000usize, 4usize), (20_000, 8)] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let instance = Instance::balanced(n, k, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("er_merge", format!("n{n}_k{k}")),
            &instance,
            |b, instance| {
                let oracle = InstanceOracle::new(instance);
                b.iter(|| black_box(ErMergeSort::new().sort(&oracle).metrics.rounds()));
            },
        );
    }
    group.finish();
}

fn constant_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("constant_round");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[5_000usize, 20_000] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let instance = Instance::balanced(n, 3, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("sharp_cycles", n),
            &instance,
            |b, instance| {
                let oracle = InstanceOracle::new(instance);
                b.iter(|| {
                    black_box(
                        ErConstantRound::with_lambda(0.3, 7)
                            .sort(&oracle)
                            .metrics
                            .rounds(),
                    )
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("conservative_cycles", n),
            &instance,
            |b, instance| {
                let oracle = InstanceOracle::new(instance);
                b.iter(|| {
                    black_box(
                        ErConstantRound::with_lambda(0.3, 7)
                            .conservative_cycles()
                            .sort(&oracle)
                            .metrics
                            .rounds(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, cr_compound, er_merge, constant_round);
criterion_main!(benches);
