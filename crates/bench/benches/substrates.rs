//! Criterion benchmarks for the substrates: union-find, SCC, Hamiltonian
//! unions, ER scheduling, and the PRNG.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_graph::{tarjan_scc, DiGraph, HamiltonianUnion, UnionFind};
use ecs_model::schedule::schedule_er;
use ecs_rng::{EcsRng, SeedableEcsRng, Xoshiro256StarStar};
use std::hint::black_box;

fn union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_union_find");
    for &n in &[10_000usize, 100_000] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let ops: Vec<(usize, usize)> = (0..n).map(|_| (rng.below(n), rng.below(n))).collect();
        group.bench_with_input(BenchmarkId::new("random_unions", n), &ops, |b, ops| {
            b.iter(|| {
                let mut uf = UnionFind::new(n);
                for &(a, bb) in ops {
                    uf.union(a, bb);
                }
                black_box(uf.num_sets())
            });
        });
    }
    group.finish();
}

fn scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_scc");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[10_000usize, 50_000] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let edges: Vec<(usize, usize)> = (0..3 * n).map(|_| (rng.below(n), rng.below(n))).collect();
        let graph = DiGraph::from_edges(n, &edges);
        group.bench_with_input(BenchmarkId::new("tarjan", n), &graph, |b, graph| {
            b.iter(|| black_box(tarjan_scc(graph).len()));
        });
    }
    group.finish();
}

fn hamiltonian(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_hamiltonian");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::new("build_and_schedule", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Xoshiro256StarStar::seed_from_u64(3);
                let h = HamiltonianUnion::random(n, 8, &mut rng);
                black_box(h.er_rounds().len())
            });
        });
    }
    group.finish();
}

fn er_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_schedule");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[10_000usize, 50_000] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let pairs: Vec<(usize, usize)> = (0..m)
            .map(|_| {
                let a = rng.below(m);
                let mut b = rng.below(m);
                if a == b {
                    b = (b + 1) % m;
                }
                (a, b)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("greedy_er", m), &pairs, |b, pairs| {
            b.iter(|| black_box(schedule_er(pairs).len()));
        });
    }
    group.finish();
}

fn rng_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_rng");
    group.bench_function("xoshiro_1M_draws", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(5);
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    union_find,
    scc,
    hamiltonian,
    er_scheduling,
    rng_throughput
);
criterion_main!(benches);
