//! Criterion benchmarks for the substrates: union-find, SCC, Hamiltonian
//! unions, ER scheduling, the PRNG, and the packed bitset substrate against
//! its pointer-based counterparts (hash-set pair graphs, scalar `same_batch`
//! loops, `Vec<Vec<usize>>` class exports).
//!
//! Set `ECS_BENCH_SMOKE=1` to shrink the workloads (used by CI on every
//! push).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_bench::smoke;
use ecs_graph::{
    scc_as_bitrows, tarjan_scc, DiGraph, EquitableColoring, HamiltonianUnion, PairBitset, UnionFind,
};
use ecs_model::schedule::schedule_er;
use ecs_model::{EquivalenceOracle, LabelOracle};
use ecs_rng::{EcsRng, SeedableEcsRng, Xoshiro256StarStar};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;

fn union_find(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_union_find");
    for &n in &[10_000usize, 100_000] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let ops: Vec<(usize, usize)> = (0..n).map(|_| (rng.below(n), rng.below(n))).collect();
        group.bench_with_input(BenchmarkId::new("random_unions", n), &ops, |b, ops| {
            b.iter(|| {
                let mut uf = UnionFind::new(n);
                for &(a, bb) in ops {
                    uf.union(a, bb);
                }
                black_box(uf.num_sets())
            });
        });
    }
    group.finish();
}

fn scc(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_scc");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[10_000usize, 50_000] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(2);
        let edges: Vec<(usize, usize)> = (0..3 * n).map(|_| (rng.below(n), rng.below(n))).collect();
        let graph = DiGraph::from_edges(n, &edges);
        group.bench_with_input(BenchmarkId::new("tarjan", n), &graph, |b, graph| {
            b.iter(|| black_box(tarjan_scc(graph).len()));
        });
    }
    group.finish();
}

fn hamiltonian(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_hamiltonian");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &n in &[10_000usize, 50_000] {
        group.bench_with_input(BenchmarkId::new("build_and_schedule", n), &n, |b, &n| {
            b.iter(|| {
                let mut rng = Xoshiro256StarStar::seed_from_u64(3);
                let h = HamiltonianUnion::random(n, 8, &mut rng);
                black_box(h.er_rounds().len())
            });
        });
    }
    group.finish();
}

fn er_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_schedule");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &m in &[10_000usize, 50_000] {
        let mut rng = Xoshiro256StarStar::seed_from_u64(4);
        let pairs: Vec<(usize, usize)> = (0..m)
            .map(|_| {
                let a = rng.below(m);
                let mut b = rng.below(m);
                if a == b {
                    b = (b + 1) % m;
                }
                (a, b)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("greedy_er", m), &pairs, |b, pairs| {
            b.iter(|| black_box(schedule_er(pairs).len()));
        });
    }
    group.finish();
}

fn rng_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_rng");
    group.bench_function("xoshiro_1M_draws", |b| {
        b.iter(|| {
            let mut rng = Xoshiro256StarStar::seed_from_u64(5);
            let mut acc = 0u64;
            for _ in 0..1_000_000 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            black_box(acc)
        });
    });
    group.finish();
}

/// An oracle deliberately restricted to scalar `same`, so `same_batch` runs
/// the trait's default per-pair loop — the pointer baseline that the packed
/// word-parallel path is measured against.
struct ScalarOnlyOracle(LabelOracle);

impl EquivalenceOracle for ScalarOnlyOracle {
    fn n(&self) -> usize {
        self.0.n()
    }
    fn same(&self, a: usize, b: usize) -> bool {
        self.0.same(a, b)
    }
}

/// Packed pair triangle vs hash-set adjacency: build the known-unequal graph
/// of an adversary-sized universe edge by edge, then probe every edge in
/// both orientations (the `adjacent`/`degree` hot path of the case
/// analysis).
fn pair_graph(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() { &[2_048] } else { &[2_048, 8_192] };
    let mut group = c.benchmark_group("substrate_pair_graph");
    group.sample_size(if smoke() { 10 } else { 20 });
    for &n in sizes {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let edges: Vec<(usize, usize)> = (0..8 * n)
            .map(|_| {
                let a = rng.below(n);
                let mut b = rng.below(n);
                if a == b {
                    b = (b + 1) % n;
                }
                (a, b)
            })
            .collect();

        group.bench_with_input(BenchmarkId::new("packed", n), &edges, |bench, edges| {
            bench.iter(|| {
                let mut g = PairBitset::new(n);
                for &(a, b) in edges {
                    g.set(a, b);
                }
                let mut hits = 0usize;
                for &(a, b) in edges {
                    hits += usize::from(g.test(a, b)) + usize::from(g.test(b, a));
                }
                black_box(hits)
            });
        });

        group.bench_with_input(BenchmarkId::new("hashset", n), &edges, |bench, edges| {
            bench.iter(|| {
                let mut g: HashMap<usize, HashSet<usize>> = HashMap::new();
                for &(a, b) in edges {
                    g.entry(a).or_default().insert(b);
                    g.entry(b).or_default().insert(a);
                }
                let mut hits = 0usize;
                for &(a, b) in edges {
                    hits += usize::from(g.get(&a).is_some_and(|s| s.contains(&b)));
                    hits += usize::from(g.get(&b).is_some_and(|s| s.contains(&a)));
                }
                black_box(hits)
            });
        });
    }
    group.finish();
}

/// Word-parallel `same_batch` vs the scalar per-pair loop, on the
/// representative-scan wave shape (one left endpoint against consecutive
/// partners) at adversary-grid through paper-scale universes.
fn word_parallel_same_batch(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() {
        &[10_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let mut group = c.benchmark_group("substrate_same_batch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(if smoke() { 1 } else { 2 }));
    for &n in sizes {
        let k = 100u32;
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let labels: Vec<u32> = (0..n).map(|_| rng.below(k as usize) as u32).collect();
        let wave: Vec<(usize, usize)> = (1..n).map(|b| (0, b)).collect();
        let packed = LabelOracle::new(labels.clone());
        let scalar = ScalarOnlyOracle(LabelOracle::new(labels));

        // Identity gate before timing: the two paths must answer the wave
        // identically, or the comparison is meaningless.
        assert_eq!(packed.same_batch(&wave), scalar.same_batch(&wave));

        group.bench_with_input(BenchmarkId::new("packed_wave", n), &wave, |bench, wave| {
            bench.iter(|| black_box(packed.same_batch(wave).len()));
        });
        group.bench_with_input(BenchmarkId::new("scalar_wave", n), &wave, |bench, wave| {
            bench.iter(|| black_box(scalar.same_batch(wave).len()));
        });
    }
    group.finish();
}

/// Packed class export ([`UnionFind::classes_as_bitrows`]) vs the
/// `Vec<Vec<usize>>` group export, on a forest merged down to the small
/// class count the row view is built for (`k` equivalence classes, the
/// regime the coloring/SCC/batch consumers operate in). The row view is a
/// `k x n` bit matrix, so it is only sensible — and only benchmarked — at
/// small `k`.
fn class_export(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() {
        &[10_000]
    } else {
        &[10_000, 100_000]
    };
    let k = 64usize;
    let mut group = c.benchmark_group("substrate_class_export");
    for &n in sizes {
        let mut uf = UnionFind::new(n);
        for i in k..n {
            // Chain unions within each residue class mod k: exactly k
            // classes, with non-trivial trees rather than stars.
            uf.union(i, i - k);
        }
        assert_eq!(uf.num_sets(), k);
        group.bench_with_input(BenchmarkId::new("bitrows", n), &(), |bench, _| {
            bench.iter(|| {
                let mut uf = uf.clone();
                black_box(uf.classes_as_bitrows().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("groups", n), &(), |bench, _| {
            bench.iter(|| {
                let mut uf = uf.clone();
                black_box(uf.groups().len())
            });
        });

        // The coloring and SCC substrates gained the same packed row view;
        // compare each against its `Vec`-based export in the same `k`-class
        // regime (k residue-class cycles → exactly k components).
        let coloring = EquitableColoring::balanced(n, k);
        assert_eq!(coloring.classes_as_bitrows().len(), k);
        group.bench_with_input(
            BenchmarkId::new("coloring_bitrows", n),
            &coloring,
            |bench, coloring| {
                bench.iter(|| black_box(coloring.classes_as_bitrows().len()));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("coloring_sizes", n),
            &coloring,
            |bench, coloring| {
                bench.iter(|| black_box(coloring.class_sizes().len()));
            },
        );
        let edges: Vec<(usize, usize)> = (0..n)
            .map(|v| (v, if v + k < n { v + k } else { v % k }))
            .collect();
        let graph = DiGraph::from_edges(n, &edges);
        assert_eq!(scc_as_bitrows(&graph).len(), k);
        group.bench_with_input(
            BenchmarkId::new("scc_bitrows", n),
            &graph,
            |bench, graph| {
                bench.iter(|| black_box(scc_as_bitrows(graph).len()));
            },
        );
        group.bench_with_input(BenchmarkId::new("scc_groups", n), &graph, |bench, graph| {
            bench.iter(|| black_box(tarjan_scc(graph).len()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    union_find,
    scc,
    hamiltonian,
    er_scheduling,
    rng_throughput,
    pair_graph,
    word_parallel_same_batch,
    class_export
);
criterion_main!(benches);
