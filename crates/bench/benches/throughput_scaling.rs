//! Serial-trials vs pooled-trials throughput on the full Figure 5 grid.
//!
//! PR 2's backend accelerates one session's large rounds; this bench measures
//! the opposite regime — the Figure 5 grid's hundreds of *small* independent
//! trials, where the win comes from running many sessions concurrently:
//!
//! * **serial** — the reference serial loop (`ThroughputPool` with one
//!   worker): every `(distribution, size, trial)` job in order on the caller;
//! * **barrier(4)** — PR 2's shape: a serial outer loop over distributions
//!   and sizes with a 4-thread parallel inner loop over each size's trials
//!   (workers idle at every per-size barrier);
//! * **pooled(2/4/8)** — the throughput pool: the whole grid submitted up
//!   front to one shared work-stealing pool with round-robin fairness across
//!   distributions.
//!
//! Every mode is asserted bit-identical to the serial reference before any
//! timing starts. Set `ECS_BENCH_SMOKE=1` to shrink the grid (used by CI to
//! exercise the harness on every push without paying the measurement cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecs_analysis::{figure5_grid, figure5_series, Figure5Config, Figure5Series};
use ecs_bench::{paper, smoke};
use ecs_model::{ExecutionBackend, ThroughputPool};
use std::hint::black_box;

/// The full Figure 5 grid: every distribution of every panel. `scale`
/// divides the paper's sizes so the bench finishes in sensible time; sizes
/// clamped to the same value by `scaled_down`'s n >= 100 floor are deduped
/// (under aggressive smoke scaling the zeta panels would otherwise repeat
/// one n = 100 point twenty times).
fn grid(scale: usize, trials: usize, seed: u64) -> Vec<Figure5Config> {
    paper::panel_names()
        .into_iter()
        .flat_map(|panel| paper::figure5_configs(panel, scale, trials, seed))
        .map(|mut config| {
            config.sizes.dedup();
            config
        })
        .collect()
}

/// Flattened per-trial measurements, for bit-identity assertions.
fn measurements(series: &[Figure5Series]) -> Vec<u64> {
    series
        .iter()
        .flat_map(|s| s.points.iter().flat_map(|p| p.comparisons.clone()))
        .collect()
}

fn throughput_grid(c: &mut Criterion) {
    let (scale, trials) = if smoke() { (200, 2) } else { (20, 3) };
    let configs = grid(scale, trials, 2016);
    let total_jobs: usize = configs.iter().map(|c| c.sizes.len() * c.trials).sum();

    let serial_pool = ThroughputPool::from_jobs(1);
    let reference = measurements(&figure5_grid(&configs, &serial_pool));

    // Determinism gates: every timed mode must reproduce the serial
    // measurements bit-for-bit.
    for workers in [2, 4, 8] {
        let pool = ThroughputPool::from_jobs(workers);
        assert_eq!(
            measurements(&figure5_grid(&configs, &pool)),
            reference,
            "{} diverged from the serial trial loop",
            pool.label()
        );
    }
    let barrier: Vec<Figure5Series> =
        ExecutionBackend::threaded(4).install(|| configs.iter().map(figure5_series).collect());
    assert_eq!(
        measurements(&barrier),
        reference,
        "barrier-style trial loop diverged from the serial loop"
    );

    let mut group = c.benchmark_group(format!("throughput_figure5_grid_{total_jobs}_jobs"));
    group.sample_size(if smoke() { 3 } else { 10 });

    group.bench_with_input(
        BenchmarkId::new("trials", "serial"),
        &configs,
        |b, configs| {
            b.iter(|| black_box(measurements(&figure5_grid(configs, &serial_pool)).len()));
        },
    );

    group.bench_with_input(
        BenchmarkId::new("trials", "barrier(4)"),
        &configs,
        |b, configs| {
            b.iter(|| {
                let series: Vec<Figure5Series> = ExecutionBackend::threaded(4)
                    .install(|| configs.iter().map(figure5_series).collect());
                black_box(measurements(&series).len())
            });
        },
    );

    for workers in [2, 4, 8] {
        let pool = ThroughputPool::from_jobs(workers);
        group.bench_with_input(
            BenchmarkId::new("trials", pool.label()),
            &configs,
            |b, configs| {
                b.iter(|| black_box(measurements(&figure5_grid(configs, &pool)).len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, throughput_grid);
criterion_main!(benches);
