//! `ecs_load` — load generator and determinism checker for the service.
//!
//! ```text
//! ecs_load [--sessions S] [--tenants T] [--per-session J] [--n N] [--seed S]
//!          [--out results] [--connect HOST:PORT] [--serial] [--duration-ms MS]
//!          [--jobs N] [--max-inflight M] [--linger-us U]
//! ```
//!
//! Two modes:
//!
//! * **Diff mode** (default): `S` concurrent client sessions each submit a
//!   deterministic job slate to the daemon (self-spawned on an ephemeral
//!   127.0.0.1 port unless `--connect` points at one), drain, and collect
//!   their streamed result lines. All lines, sorted by job id, are written
//!   to `<out>/service_load.csv`; with `--serial` the same specs are also
//!   evaluated serially in-process through the identical
//!   `ecs_service::protocol::run_job` path into `<out>/service_serial.csv`.
//!   CI diffs the two files byte-for-byte.
//! * **Load mode** (`--duration-ms`): one session keeps a submission window
//!   full until the deadline, then drains and reports throughput.
//!
//! Exit code 0 means every submitted job produced its terminal line AND the
//! daemon (when self-spawned) shut down with all threads joined.
//!
//! `ECS_BENCH_SMOKE=1` shrinks the slate to a seconds-long smoke run.

use ecs_bench::cli::{smoke, Args};
use ecs_service::protocol::{render_result, run_job};
use ecs_service::{
    AlgoSpec, BackendSpec, Client, Daemon, DaemonConfig, DistSpec, JobSpec, Request, Response,
};
use std::io::Write;
use std::time::{Duration, Instant};

/// The deterministic job slate: spec `(session, j)` depends only on its
/// coordinates and the base seed, so the daemon run and the serial reference
/// construct identical jobs without sharing state.
fn job_spec(session: usize, j: usize, base_seed: u64, tenants: usize, n: usize) -> JobSpec {
    let algo = AlgoSpec::ALL[(session + j) % AlgoSpec::ALL.len()];
    let dist = match (session + 2 * j) % 5 {
        0 => DistSpec::Uniform(5),
        1 => DistSpec::Geometric(0.3),
        2 => DistSpec::Poisson(4.0),
        3 => DistSpec::Zeta(2.5),
        _ => DistSpec::Balanced(7),
    };
    let backend = match j % 3 {
        0 => BackendSpec::Seq,
        1 => BackendSpec::Batched(32),
        _ => BackendSpec::Coalesced(4),
    };
    JobSpec {
        id: format!("s{session:03}-j{j:03}"),
        tenant: format!("t{}", session % tenants.max(1)),
        weight: 1 + (session % 3) as u32,
        dist,
        n,
        seed: base_seed ^ (session as u64 * 1_000 + j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        algo,
        backend,
    }
}

fn terminal_line(response: &Response) -> Option<(String, String)> {
    match response {
        Response::Result { id, .. } | Response::Cancelled { id } | Response::Failed { id, .. } => {
            Some((id.clone(), response.render()))
        }
        _ => None,
    }
}

fn write_lines(path: &std::path::Path, lines: &[(String, String)]) {
    let mut sorted = lines.to_vec();
    sorted.sort();
    let mut file = std::fs::File::create(path).expect("writable output file");
    for (_, line) in sorted {
        writeln!(file, "{line}").expect("write result line");
    }
}

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&[
        "sessions",
        "tenants",
        "per-session",
        "n",
        "seed",
        "out",
        "connect",
        "serial",
        "duration-ms",
        "jobs",
        "max-inflight",
        "linger-us",
        "threads",
        "batch",
        "backend",
    ]);
    let sessions = args.get_usize("sessions", if smoke() { 8 } else { 16 });
    let tenants = args.get_usize("tenants", 4).max(1);
    let per_session = args.get_usize("per-session", if smoke() { 2 } else { 4 });
    let n = args.get_usize("n", if smoke() { 24 } else { 48 });
    let base_seed = args.get_u64("seed", 2016);
    let out_dir = args.get_or("out", "results");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // Self-spawn a daemon unless pointed at a running one.
    let (daemon, addr) = match args.get("connect") {
        Some(addr) => (None, addr.to_string()),
        None => {
            let pool = args.throughput_pool();
            let config = DaemonConfig {
                max_inflight: args.get_usize("max-inflight", 2 * pool.workers()),
                linger: args.linger(),
                pool,
                ..DaemonConfig::default()
            };
            let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
            let addr = daemon
                .local_addr()
                .expect("a TCP daemon always has an address")
                .to_string();
            (Some(daemon), addr)
        }
    };
    println!(
        "ecs_load: daemon at {addr} ({} sessions x {per_session} jobs, {tenants} tenants, n={n})",
        sessions
    );

    let started = Instant::now();
    let collected: Vec<(String, String)> = if let Some(ms) = args.get("duration-ms") {
        let duration = Duration::from_millis(ms.parse().unwrap_or(1_000));
        load_mode(&addr, duration, base_seed, tenants, n)
    } else {
        diff_mode(&addr, sessions, per_session, base_seed, tenants, n)
    };
    let elapsed = started.elapsed();

    let load_path = std::path::Path::new(&out_dir).join("service_load.csv");
    write_lines(&load_path, &collected);
    println!(
        "ecs_load: {} terminal lines in {elapsed:?} ({:.1} jobs/s) -> {}",
        collected.len(),
        collected.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        load_path.display()
    );

    if args.has("serial") && !args.has("duration-ms") {
        // The serial reference: the same specs through the same run_job /
        // render_result pair, no daemon involved. Results are
        // linger-independent (the coalescing adapter is transparent), so
        // the local linger value cannot affect the diff.
        let serial: Vec<(String, String)> = (0..sessions)
            .flat_map(|s| (0..per_session).map(move |j| (s, j)))
            .map(|(s, j)| {
                let spec = job_spec(s, j, base_seed, tenants, n);
                let run = run_job(&spec, args.linger(), None);
                (spec.id.clone(), render_result(&spec, &run))
            })
            .collect();
        let serial_path = std::path::Path::new(&out_dir).join("service_serial.csv");
        write_lines(&serial_path, &serial);
        println!("ecs_load: serial reference -> {}", serial_path.display());
    }

    // Clean shutdown: drain is already done per session; now stop the
    // daemon over the protocol and join every thread.
    let mut closer = Client::connect(&addr).expect("connect for shutdown");
    closer.shutdown().expect("daemon acknowledges shutdown");
    if let Some(daemon) = daemon {
        daemon.join();
        println!("ecs_load: daemon stopped cleanly");
    }

    let expected = if args.has("duration-ms") {
        collected.len() // load mode: whatever completed before the deadline
    } else {
        sessions * per_session
    };
    if collected.len() != expected {
        eprintln!(
            "ecs_load: expected {expected} terminal lines, saw {}",
            collected.len()
        );
        std::process::exit(1);
    }
}

/// Diff mode: `sessions` concurrent clients, each submitting its slate and
/// draining. Returns every terminal line keyed by job id.
fn diff_mode(
    addr: &str,
    sessions: usize,
    per_session: usize,
    base_seed: u64,
    tenants: usize,
    n: usize,
) -> Vec<(String, String)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect session");
                    for j in 0..per_session {
                        let spec = job_spec(s, j, base_seed, tenants, n);
                        client.submit(&spec).expect("submit job");
                    }
                    let responses = client.drain().expect("drain session");
                    responses
                        .iter()
                        .filter_map(terminal_line)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("session thread"))
            .collect()
    })
}

/// Load mode: one session keeps a bounded submission window full until the
/// deadline, then drains.
fn load_mode(
    addr: &str,
    duration: Duration,
    base_seed: u64,
    tenants: usize,
    n: usize,
) -> Vec<(String, String)> {
    const WINDOW: usize = 16;
    let mut client = Client::connect(addr).expect("connect load session");
    let deadline = Instant::now() + duration;
    let mut collected = Vec::new();
    let mut submitted = 0usize;
    let mut outstanding = 0usize;
    while Instant::now() < deadline {
        while outstanding < WINDOW {
            let spec = job_spec(submitted / 97, submitted % 97, base_seed, tenants, n);
            let spec = JobSpec {
                id: format!("load-{submitted:06}"),
                ..spec
            };
            client.submit(&spec).expect("submit load job");
            submitted += 1;
            outstanding += 1;
        }
        // Pull responses until the window has room again.
        while outstanding >= WINDOW {
            match client.recv().expect("read response") {
                Some(response) => {
                    if let Some(line) = terminal_line(&response) {
                        collected.push(line);
                        outstanding -= 1;
                    }
                }
                None => return collected,
            }
        }
    }
    client.send(&Request::Drain).expect("send drain");
    loop {
        match client.recv().expect("read response") {
            Some(Response::Drained) | None => break,
            Some(response) => {
                if let Some(line) = terminal_line(&response) {
                    collected.push(line);
                }
            }
        }
    }
    println!("ecs_load: load mode submitted {submitted} jobs");
    collected
}
