//! `ecs_load` — load generator and determinism checker for the service.
//!
//! ```text
//! ecs_load [--sessions S] [--tenants T] [--per-session J] [--n N] [--seed S]
//!          [--out results] [--connect HOST:PORT] [--serial] [--duration-ms MS]
//!          [--chaos] [--reject-smoke] [--jobs N] [--max-inflight M]
//!          [--linger-us U]
//! ```
//!
//! Four modes:
//!
//! * **Diff mode** (default): `S` concurrent client sessions each submit a
//!   deterministic job slate to the daemon (self-spawned on an ephemeral
//!   127.0.0.1 port unless `--connect` points at one), drain, and collect
//!   their streamed result lines. All lines, sorted by job id, are written
//!   to `<out>/service_load.csv`; with `--serial` the same specs are also
//!   evaluated serially in-process through the identical
//!   `ecs_service::protocol::run_job` path into `<out>/service_serial.csv`.
//!   CI diffs the two files byte-for-byte.
//! * **Load mode** (`--duration-ms`): one session keeps a submission window
//!   full until the deadline, then drains and reports throughput.
//! * **Chaos mode** (`--chaos`): diff mode, except every session opens with
//!   `hello`, is killed mid-stream (the connection is dropped without
//!   ceremony after a deterministic number of results), and then resumed on
//!   a fresh connection with `resume <token> <last_seq>`. The collected
//!   lines must still be byte-identical to the `--serial` reference —
//!   that's the whole point.
//! * **Quota smoke** (`--reject-smoke`): submits one job as tenant
//!   `blocked` (quota `0` queued — self-configured, or set on the daemon
//!   under test with `--quota 'blocked=0:-:-'`), expects a deterministic
//!   `rejected`, verifies other tenants still complete and that `status`
//!   bills the rejection, then shuts the daemon down.
//!
//! Exit code 0 means every submitted job produced its terminal line AND the
//! daemon (when self-spawned) shut down with all threads joined.
//!
//! `ECS_BENCH_SMOKE=1` shrinks the slate to a seconds-long smoke run.

use ecs_bench::cli::{smoke, Args};
use ecs_service::protocol::{render_result, run_job};
use ecs_service::{
    AlgoSpec, BackendSpec, Client, Daemon, DaemonConfig, DistSpec, JobSpec, QuotaConfig, Request,
    Response,
};
use std::io::Write;
use std::time::{Duration, Instant};

/// The deterministic job slate: spec `(session, j)` depends only on its
/// coordinates and the base seed, so the daemon run and the serial reference
/// construct identical jobs without sharing state.
fn job_spec(session: usize, j: usize, base_seed: u64, tenants: usize, n: usize) -> JobSpec {
    let algo = AlgoSpec::ALL[(session + j) % AlgoSpec::ALL.len()];
    let dist = match (session + 2 * j) % 5 {
        0 => DistSpec::Uniform(5),
        1 => DistSpec::Geometric(0.3),
        2 => DistSpec::Poisson(4.0),
        3 => DistSpec::Zeta(2.5),
        _ => DistSpec::Balanced(7),
    };
    let backend = match j % 3 {
        0 => BackendSpec::Seq,
        1 => BackendSpec::Batched(32),
        _ => BackendSpec::Coalesced(4),
    };
    JobSpec {
        id: format!("s{session:03}-j{j:03}"),
        tenant: format!("t{}", session % tenants.max(1)),
        weight: 1 + (session % 3) as u32,
        dist,
        n,
        seed: base_seed ^ (session as u64 * 1_000 + j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        algo,
        backend,
    }
}

fn terminal_line(response: &Response) -> Option<(String, String)> {
    match response {
        Response::Result { id, .. } | Response::Cancelled { id } | Response::Failed { id, .. } => {
            Some((id.clone(), response.render()))
        }
        _ => None,
    }
}

fn write_lines(path: &std::path::Path, lines: &[(String, String)]) {
    let mut sorted = lines.to_vec();
    sorted.sort();
    let mut file = std::fs::File::create(path).expect("writable output file");
    for (_, line) in sorted {
        writeln!(file, "{line}").expect("write result line");
    }
}

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&[
        "sessions",
        "tenants",
        "per-session",
        "n",
        "seed",
        "out",
        "connect",
        "serial",
        "duration-ms",
        "chaos",
        "reject-smoke",
        "jobs",
        "max-inflight",
        "linger-us",
        "threads",
        "batch",
        "backend",
    ]);
    let sessions = args.get_usize("sessions", if smoke() { 8 } else { 16 });
    let tenants = args.get_usize("tenants", 4).max(1);
    let per_session = args.get_usize("per-session", if smoke() { 2 } else { 4 });
    let n = args.get_usize("n", if smoke() { 24 } else { 48 });
    let base_seed = args.get_u64("seed", 2016);
    let out_dir = args.get_or("out", "results");
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // Self-spawn a daemon unless pointed at a running one.
    let (daemon, addr) = match args.get("connect") {
        Some(addr) => (None, addr.to_string()),
        None => {
            let pool = args.throughput_pool();
            // A self-spawned reject-smoke daemon needs the quota under test.
            let quotas = if args.has("reject-smoke") {
                QuotaConfig::parse("blocked=0:-:-").expect("static quota parses")
            } else {
                QuotaConfig::default()
            };
            let config = DaemonConfig {
                max_inflight: args.get_usize("max-inflight", 2 * pool.workers()),
                linger: args.linger(),
                pool,
                quotas,
                ..DaemonConfig::default()
            };
            let daemon = Daemon::bind("127.0.0.1:0", config).expect("bind an ephemeral port");
            let addr = daemon
                .local_addr()
                .expect("a TCP daemon always has an address")
                .to_string();
            (Some(daemon), addr)
        }
    };
    println!(
        "ecs_load: daemon at {addr} ({} sessions x {per_session} jobs, {tenants} tenants, n={n})",
        sessions
    );

    if args.has("reject-smoke") {
        reject_smoke(&addr, base_seed, n);
        let mut closer = Client::connect(&addr).expect("connect for shutdown");
        closer.shutdown().expect("daemon acknowledges shutdown");
        if let Some(daemon) = daemon {
            daemon.join();
            println!("ecs_load: daemon stopped cleanly");
        }
        return;
    }

    let started = Instant::now();
    let collected: Vec<(String, String)> = if let Some(ms) = args.get("duration-ms") {
        let duration = Duration::from_millis(ms.parse().unwrap_or(1_000));
        load_mode(&addr, duration, base_seed, tenants, n)
    } else if args.has("chaos") {
        chaos_mode(&addr, sessions, per_session, base_seed, tenants, n)
    } else {
        diff_mode(&addr, sessions, per_session, base_seed, tenants, n)
    };
    let elapsed = started.elapsed();

    let load_path = std::path::Path::new(&out_dir).join("service_load.csv");
    write_lines(&load_path, &collected);
    println!(
        "ecs_load: {} terminal lines in {elapsed:?} ({:.1} jobs/s) -> {}",
        collected.len(),
        collected.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        load_path.display()
    );

    if args.has("serial") && !args.has("duration-ms") {
        // The serial reference: the same specs through the same run_job /
        // render_result pair, no daemon involved. Results are
        // linger-independent (the coalescing adapter is transparent), so
        // the local linger value cannot affect the diff.
        let serial: Vec<(String, String)> = (0..sessions)
            .flat_map(|s| (0..per_session).map(move |j| (s, j)))
            .map(|(s, j)| {
                let spec = job_spec(s, j, base_seed, tenants, n);
                let run = run_job(&spec, args.linger(), None);
                (spec.id.clone(), render_result(&spec, &run))
            })
            .collect();
        let serial_path = std::path::Path::new(&out_dir).join("service_serial.csv");
        write_lines(&serial_path, &serial);
        println!("ecs_load: serial reference -> {}", serial_path.display());
    }

    // Clean shutdown: drain is already done per session; now stop the
    // daemon over the protocol and join every thread.
    let mut closer = Client::connect(&addr).expect("connect for shutdown");
    closer.shutdown().expect("daemon acknowledges shutdown");
    if let Some(daemon) = daemon {
        daemon.join();
        println!("ecs_load: daemon stopped cleanly");
    }

    let expected = if args.has("duration-ms") {
        collected.len() // load mode: whatever completed before the deadline
    } else {
        sessions * per_session
    };
    if collected.len() != expected {
        eprintln!(
            "ecs_load: expected {expected} terminal lines, saw {}",
            collected.len()
        );
        std::process::exit(1);
    }
}

/// Diff mode: `sessions` concurrent clients, each submitting its slate and
/// draining. Returns every terminal line keyed by job id.
fn diff_mode(
    addr: &str,
    sessions: usize,
    per_session: usize,
    base_seed: u64,
    tenants: usize,
    n: usize,
) -> Vec<(String, String)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect session");
                    for j in 0..per_session {
                        let spec = job_spec(s, j, base_seed, tenants, n);
                        client.submit(&spec).expect("submit job");
                    }
                    let responses = client.drain().expect("drain session");
                    responses
                        .iter()
                        .filter_map(terminal_line)
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("session thread"))
            .collect()
    })
}

/// Chaos mode: diff mode with a kill-and-resume in the middle of every
/// session. Each session opens with `hello`, submits its slate, reads (and
/// acks) a deterministic prefix of its stream, then drops the connection
/// cold and finishes on a fresh one via `resume <token> <last_seq>`. The
/// merged terminal lines must be byte-identical to an undropped run, which
/// CI checks by diffing against the `--serial` reference.
fn chaos_mode(
    addr: &str,
    sessions: usize,
    per_session: usize,
    base_seed: u64,
    tenants: usize,
    n: usize,
) -> Vec<(String, String)> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|s| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect session");
                    let token = client.hello().expect("hello binds the session");
                    for j in 0..per_session {
                        let spec = job_spec(s, j, base_seed, tenants, n);
                        client.submit(&spec).expect("submit job");
                    }
                    // Read until `cut` terminal lines arrived, acking every
                    // delivered line — then vanish without a goodbye.
                    let cut = s % per_session;
                    let mut collected = Vec::new();
                    while collected.len() < cut {
                        let response = client
                            .recv()
                            .expect("read response")
                            .expect("daemon must not close mid-slate");
                        let seq = client.last_seq();
                        client.ack(seq).expect("ack delivered line");
                        collected.extend(terminal_line(&response));
                    }
                    let acked = client.last_seq();
                    drop(client); // the "kill": no drain, no bye
                    let mut resumed = Client::connect(addr).expect("reconnect session");
                    resumed
                        .resume(&token, acked)
                        .expect("resume from the last acked seq");
                    // The dead connection's reader may still be admitting the
                    // tail of the slate, so a `drain` barrier here could
                    // overtake those submits; counting terminal lines is the
                    // only safe barrier after an unclean drop.
                    while collected.len() < per_session {
                        let response = resumed
                            .recv()
                            .expect("read resumed response")
                            .expect("daemon must not close mid-replay");
                        let seq = resumed.last_seq();
                        resumed.ack(seq).expect("ack replayed line");
                        collected.extend(terminal_line(&response));
                    }
                    collected
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("session thread"))
            .collect()
    })
}

/// Quota smoke: against a daemon whose `blocked` tenant has a zero-depth
/// queue, an over-quota submit must bounce with a deterministic `rejected`,
/// other tenants must be unaffected, and `status` must bill the rejection.
fn reject_smoke(addr: &str, base_seed: u64, n: usize) {
    let mut client = Client::connect(addr).expect("connect quota session");
    let mut over = job_spec(0, 0, base_seed, 1, n);
    over.id = "blocked-0".into();
    over.tenant = "blocked".into();
    client.submit(&over).expect("submit over-quota job");
    match client.recv().expect("read response") {
        Some(Response::Rejected { id, reason }) if id == "blocked-0" => {
            println!("ecs_load: over-quota submit rejected ({reason})");
        }
        other => {
            eprintln!("ecs_load: expected `rejected` for the blocked tenant, saw {other:?}");
            std::process::exit(1);
        }
    }
    let mut allowed = job_spec(0, 1, base_seed, 1, n);
    allowed.id = "allowed-0".into();
    allowed.tenant = "open".into();
    client.submit(&allowed).expect("submit allowed job");
    let responses = client.drain().expect("drain quota session");
    if !responses
        .iter()
        .any(|r| matches!(r, Response::Result { id, .. } if id == "allowed-0"))
    {
        eprintln!("ecs_load: the allowed tenant's job never completed: {responses:?}");
        std::process::exit(1);
    }
    client.send(&Request::Status).expect("send status");
    loop {
        match client.recv().expect("read status").expect("status line") {
            Response::Status { tenants, .. } => {
                let Some(blocked) = tenants.iter().find(|t| t.name == "blocked") else {
                    eprintln!("ecs_load: status does not report the blocked tenant: {tenants:?}");
                    std::process::exit(1);
                };
                if blocked.rejected < 1 || blocked.max_queued != Some(0) {
                    eprintln!("ecs_load: rejection not billed in status: {blocked:?}");
                    std::process::exit(1);
                }
                break;
            }
            _ => continue,
        }
    }
    println!("ecs_load: quota rejection smoke passed");
}

/// Load mode: one session keeps a bounded submission window full until the
/// deadline, then drains.
fn load_mode(
    addr: &str,
    duration: Duration,
    base_seed: u64,
    tenants: usize,
    n: usize,
) -> Vec<(String, String)> {
    const WINDOW: usize = 16;
    let mut client = Client::connect(addr).expect("connect load session");
    let deadline = Instant::now() + duration;
    let mut collected = Vec::new();
    let mut submitted = 0usize;
    let mut outstanding = 0usize;
    while Instant::now() < deadline {
        while outstanding < WINDOW {
            let spec = job_spec(submitted / 97, submitted % 97, base_seed, tenants, n);
            let spec = JobSpec {
                id: format!("load-{submitted:06}"),
                ..spec
            };
            client.submit(&spec).expect("submit load job");
            submitted += 1;
            outstanding += 1;
        }
        // Pull responses until the window has room again.
        while outstanding >= WINDOW {
            match client.recv().expect("read response") {
                Some(response) => {
                    if let Some(line) = terminal_line(&response) {
                        collected.push(line);
                        outstanding -= 1;
                    }
                }
                None => return collected,
            }
        }
    }
    client.send(&Request::Drain).expect("send drain");
    loop {
        match client.recv().expect("read response") {
            Some(Response::Drained) | None => break,
            Some(response) => {
                if let Some(line) = terminal_line(&response) {
                    collected.push(line);
                }
            }
        }
    }
    println!("ecs_load: load mode submitted {submitted} jobs");
    collected
}
