//! Regenerates Figure 5: round-robin comparison counts under the four class
//! distributions, with best-fit lines where the paper proves linearity.
//!
//! ```text
//! cargo run -p ecs_bench --release --bin figure5 -- [--dist uniform|geometric|poisson|zeta|all]
//!     [--full] [--scale D] [--trials T] [--seed S] [--out results] [--threads N] [--jobs J]
//!     [--batch W]
//!
//! `--jobs J` runs every trial of the whole grid through one shared J-worker
//! throughput pool (round-robin fairness across distributions); without
//! `--jobs`, `--threads N` / `ECS_THREADS` select the trial pool instead
//! (round evaluation inside a trial follows `ECS_THREADS`, but these trials'
//! rounds are single comparisons). `--batch W` makes every trial session
//! submit its rounds as oracle `same_batch` waves of up to W pairs —
//! round-robin is sequential, so this changes nothing here, which is the
//! point: CSVs are byte-identical with and without `--batch` (CI diffs
//! them). Results are bit-identical to a serial run either way.
//! ```
//!
//! By default the paper's size grids are divided by 10 so the whole figure
//! regenerates in seconds; pass `--full` for the exact grids of the paper
//! (n up to 200 000, 10 trials — this takes considerably longer). Setting
//! `ECS_BENCH_SMOKE=1` shrinks the grids further to a CI-sized smoke run.

use ecs_bench::runners::{figure5_panel_series, figure5_table};
use ecs_bench::{paper, smoke, Args};
use ecs_distributions::ClassDistribution;

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&[
        "dist", "full", "scale", "trials", "seed", "out", "threads", "batch", "backend", "jobs",
    ]);
    let panel = args.get_or("dist", "all");
    // ECS_BENCH_SMOKE only shrinks the *defaults*; explicit flags always win.
    let scale = if args.has("full") {
        1
    } else {
        args.get_usize("scale", if smoke() { 100 } else { 10 })
    };
    let default_trials = match (args.has("full"), smoke()) {
        (true, _) => 10,
        (false, true) => 2,
        (false, false) => 5,
    };
    let trials = args.get_usize("trials", default_trials);
    let seed = args.get_u64("seed", 2016);
    let out_dir = args.get_or("out", "results");
    let pool = args.throughput_pool();
    let backend = args.execution_backend();
    println!(
        "throughput pool: {}; execution backend: {}",
        pool.label(),
        backend.label()
    );
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let panels: Vec<&str> = if panel == "all" {
        paper::panel_names()
    } else {
        vec![Box::leak(panel.clone().into_boxed_str())]
    };

    for panel in panels {
        println!("=== Figure 5 panel: {panel} (scale 1/{scale}, {trials} trials) ===\n");
        for (config, series) in figure5_panel_series(panel, scale, trials, seed, &pool, backend) {
            let label = config.distribution.name();
            let table = figure5_table(&series);
            println!("{}", table.to_text());
            if series.fit.is_some() {
                println!(
                    "max relative spread around the fit: {:.2}%\n",
                    100.0 * series.max_relative_spread()
                );
            } else {
                println!("(no fit: paper leaves this regime open — expect super-linear growth)\n");
            }
            let path = format!(
                "{out_dir}/figure5_{}.csv",
                label.replace(['(', ')', '=', ',', ' '], "_")
            );
            table.write_csv(&path).expect("cannot write CSV");
            println!("wrote {path}\n");
        }
    }
}
