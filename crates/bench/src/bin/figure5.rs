//! Regenerates Figure 5: round-robin comparison counts under the four class
//! distributions, with best-fit lines where the paper proves linearity.
//!
//! ```text
//! cargo run -p ecs-bench --release --bin figure5 -- [--dist uniform|geometric|poisson|zeta|all]
//!     [--full] [--scale D] [--trials T] [--seed S] [--out results] [--threads N]
//!
//! `--threads N` runs the independent trials of each size on an N-thread
//! work-stealing pool; results are bit-identical to a sequential run.
//! ```
//!
//! By default the paper's size grids are divided by 10 so the whole figure
//! regenerates in seconds; pass `--full` for the exact grids of the paper
//! (n up to 200 000, 10 trials — this takes considerably longer).

use ecs_analysis::figure5_series;
use ecs_bench::paper;
use ecs_bench::runners::figure5_table;
use ecs_bench::Args;
use ecs_distributions::ClassDistribution;

fn main() {
    let args = Args::from_env();
    let panel = args.get_or("dist", "all");
    let scale = if args.has("full") {
        1
    } else {
        args.get_usize("scale", 10)
    };
    let trials = args.get_usize("trials", if args.has("full") { 10 } else { 5 });
    let seed = args.get_u64("seed", 2016);
    let out_dir = args.get_or("out", "results");
    let backend = args.execution_backend();
    println!("execution backend: {}", backend.label());
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let panels: Vec<&str> = if panel == "all" {
        paper::panel_names()
    } else {
        vec![Box::leak(panel.clone().into_boxed_str())]
    };

    for panel in panels {
        println!("=== Figure 5 panel: {panel} (scale 1/{scale}, {trials} trials) ===\n");
        for config in paper::figure5_configs(panel, scale, trials, seed) {
            let label = config.distribution.name();
            let series = backend.install(|| figure5_series(&config));
            let table = figure5_table(&series);
            println!("{}", table.to_text());
            if let Some(fit) = &series.fit {
                println!(
                    "max relative spread around the fit: {:.2}%\n",
                    100.0 * series.max_relative_spread()
                );
                let _ = fit;
            } else {
                println!("(no fit: paper leaves this regime open — expect super-linear growth)\n");
            }
            let path = format!(
                "{out_dir}/figure5_{}.csv",
                label.replace(['(', ')', '=', ',', ' '], "_")
            );
            table.write_csv(&path).expect("cannot write CSV");
            println!("wrote {path}\n");
        }
    }
}
