//! Regenerates the lower-bound evidence for Theorems 5 and 6: the coloring
//! adversary forces any correct algorithm to perform Ω(n²/f) (equal class
//! sizes) and Ω(n²/ℓ) (smallest class) comparisons, well above the older
//! Ω(n²/f²) / Ω(n²/ℓ²) bounds.
//!
//! ```text
//! cargo run -p ecs_bench --release --bin lower_bounds -- [--out results] [--threads N] [--batch W]
//!
//! `--threads` and `--batch` are accepted for CLI uniformity but have no
//! effect here: the adversary oracles are adaptive (answers depend on query
//! order), so the algorithms driven against them issue single comparisons,
//! which always evaluate inline — and the adversaries' default `same_batch`
//! answers pairs one at a time in submission order anyway.
//! ```

use ecs_bench::paper::{theorem5_grid, theorem6_grid};
use ecs_bench::runners::{theorem5_table, theorem6_table};
use ecs_bench::Args;

fn main() {
    let args = Args::from_env();
    let out_dir = args.get_or("out", "results");
    let _ = args.execution_backend(); // accepted for uniformity; see module docs
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let t5 = theorem5_table(&theorem5_grid());
    println!("{}", t5.to_text());
    t5.write_csv(format!("{out_dir}/theorem5_lower_bound.csv"))
        .expect("cannot write CSV");

    let t6 = theorem6_table(&theorem6_grid());
    println!("{}", t6.to_text());
    t6.write_csv(format!("{out_dir}/theorem6_lower_bound.csv"))
        .expect("cannot write CSV");

    println!("wrote {out_dir}/theorem5_lower_bound.csv and {out_dir}/theorem6_lower_bound.csv");
}
