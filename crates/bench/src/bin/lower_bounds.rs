//! Regenerates the lower-bound evidence for Theorems 5 and 6: the coloring
//! adversary forces any correct algorithm to perform Ω(n²/f) (equal class
//! sizes) and Ω(n²/ℓ) (smallest class) comparisons, well above the older
//! Ω(n²/f²) / Ω(n²/ℓ²) bounds, for every algorithm in the roster.
//!
//! ```text
//! cargo run -p ecs_bench --release --bin lower_bounds -- [--out results]
//!     [--threads N] [--batch W] [--jobs J] [--search]
//! ```
//!
//! The adversaries run the round-commit protocol, so `--threads` and
//! `--batch` genuinely route adversarial rounds through the work-stealing
//! pool / `same_batch` waves, and `--jobs J` drains the whole
//! `(grid point, algorithm)` matrix through the shared throughput pool —
//! all with byte-identical CSV output (CI diffs a pooled+batched run against
//! the serial one). `ECS_BENCH_SMOKE=1` shrinks the grids; `--full` restores
//! them.
//!
//! `--search` additionally runs the Theorem 6 *adaptive search* table: the
//! wave-parallel [`ecs_adversary::SmallestClassSearch`] roster (plain and
//! audit variants) against the smallest-class adversary, with the
//! incremental planner's replay-count witness as extra columns.

use ecs_bench::paper::{
    search_grid, search_smoke_grid, theorem5_grid, theorem5_smoke_grid, theorem6_grid,
    theorem6_smoke_grid,
};
use ecs_bench::runners::{
    search_bounds_table, search_variants, theorem5_table, theorem6_table, AdversaryAlgorithm,
};
use ecs_bench::{smoke, Args};

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&[
        "out", "full", "threads", "batch", "backend", "jobs", "search",
    ]);
    let out_dir = args.get_or("out", "results");
    let backend = args.execution_backend();
    let pool = args.throughput_pool();
    // ECS_BENCH_SMOKE only shrinks the defaults; --full always wins.
    let (grid5, grid6, grid_search) = if smoke() && !args.has("full") {
        (
            theorem5_smoke_grid(),
            theorem6_smoke_grid(),
            search_smoke_grid(),
        )
    } else {
        (theorem5_grid(), theorem6_grid(), search_grid())
    };
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    println!(
        "execution backend: {}; throughput pool: {}",
        backend.label(),
        pool.label()
    );

    let algorithms = AdversaryAlgorithm::all();
    let t5 = theorem5_table(&grid5, &algorithms, &pool, backend);
    println!("{}", t5.to_text());
    t5.write_csv(format!("{out_dir}/theorem5_lower_bound.csv"))
        .expect("cannot write CSV");

    let t6 = theorem6_table(&grid6, &algorithms, &pool, backend);
    println!("{}", t6.to_text());
    t6.write_csv(format!("{out_dir}/theorem6_lower_bound.csv"))
        .expect("cannot write CSV");

    println!("wrote {out_dir}/theorem5_lower_bound.csv and {out_dir}/theorem6_lower_bound.csv");

    if args.has("search") {
        let ts = search_bounds_table(&grid_search, &search_variants(), &pool, backend);
        println!("{}", ts.to_text());
        ts.write_csv(format!("{out_dir}/search_lower_bound.csv"))
            .expect("cannot write CSV");
        println!("wrote {out_dir}/search_lower_bound.csv");
    }
}
