//! Runs every experiment of the paper at a reduced scale and writes all
//! tables to `results/` (CSV) plus a combined Markdown report.
//!
//! ```text
//! cargo run -p ecs_bench --release --bin reproduce_all -- [--out results] [--scale D]
//!     [--threads N] [--jobs J] [--batch W]
//! ```
//!
//! Pass `--full` to use the paper's exact grids (slow). `--jobs J` runs all
//! Figure 5 and Theorem 7 trials through one shared throughput pool;
//! `--batch W` evaluates every session's rounds as oracle `same_batch` waves
//! of up to W pairs (all reported numbers are bit-identical with and without
//! it); `ECS_BENCH_SMOKE=1` shrinks every grid to a CI-sized smoke run.

use ecs_bench::runners::{
    algorithm_comparison_table, dominance_sweep, dominance_table, figure5_panel_series,
    figure5_table, theorem1_table, theorem2_table, theorem4_table, theorem5_table, theorem6_table,
    AdversaryAlgorithm,
};
use ecs_bench::{paper, smoke, Args};
use ecs_distributions::class_distribution::AnyDistribution;
use ecs_distributions::ClassDistribution;

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&[
        "out", "full", "scale", "trials", "seed", "threads", "batch", "backend", "jobs",
    ]);
    let out_dir = args.get_or("out", "results");
    // ECS_BENCH_SMOKE only shrinks the *defaults*; explicit flags always win.
    let scale = if args.has("full") {
        1
    } else {
        args.get_usize("scale", if smoke() { 100 } else { 20 })
    };
    let default_trials = match (args.has("full"), smoke()) {
        (true, _) => 10,
        (false, true) => 2,
        (false, false) => 3,
    };
    let trials = args.get_usize("trials", default_trials);
    let seed = args.get_u64("seed", 2016);
    let backend = args.execution_backend();
    let pool = args.throughput_pool();
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");
    println!(
        "execution backend: {}; throughput pool: {}",
        backend.label(),
        pool.label()
    );

    let mut report = String::from("# Reproduction report\n\n");

    // Experiments E1–E4: Figure 5 panels, each panel's whole grid submitted
    // to the shared throughput pool as one workload.
    for panel in paper::panel_names() {
        println!("running Figure 5 panel '{panel}'...");
        for (config, series) in figure5_panel_series(panel, scale, trials, seed, &pool, backend) {
            let table = figure5_table(&series);
            report.push_str(&table.to_markdown());
            report.push('\n');
            let label = config.distribution.name();
            table
                .write_csv(format!(
                    "{out_dir}/figure5_{}.csv",
                    label.replace(['(', ')', '=', ',', ' '], "_")
                ))
                .expect("cannot write CSV");
        }
    }

    // Experiments E5–E7: round counts.
    println!("running Theorem 1/2/4 round-count experiments...");
    let small_grid: Vec<(usize, usize)> = paper::round_count_grid()
        .into_iter()
        .map(|(n, k)| (n / scale.max(1), k))
        .filter(|&(n, k)| n >= 10 * k)
        .collect();
    for (table, path) in [
        (
            theorem1_table(&small_grid, seed, backend),
            "theorem1_rounds.csv",
        ),
        (
            theorem2_table(&small_grid, seed, backend),
            "theorem2_rounds.csv",
        ),
        (
            theorem4_table(&paper::theorem4_lambdas(), &[1_000, 4_000], seed, backend),
            "theorem4_rounds.csv",
        ),
    ] {
        report.push_str(&table.to_markdown());
        report.push('\n');
        table
            .write_csv(format!("{out_dir}/{path}"))
            .expect("cannot write CSV");
    }

    // Experiment E8: lower bounds — every roster algorithm per grid point,
    // drained through the same throughput pool as the other experiments.
    println!("running Theorem 5/6 lower-bound experiments...");
    let (grid5, grid6) = if smoke() && !args.has("full") {
        (paper::theorem5_smoke_grid(), paper::theorem6_smoke_grid())
    } else {
        (paper::theorem5_grid(), paper::theorem6_grid())
    };
    let algorithms = AdversaryAlgorithm::all();
    let t5 = theorem5_table(&grid5, &algorithms, &pool, backend);
    let t6 = theorem6_table(&grid6, &algorithms, &pool, backend);
    report.push_str(&t5.to_markdown());
    report.push('\n');
    report.push_str(&t6.to_markdown());
    report.push('\n');
    t5.write_csv(format!("{out_dir}/theorem5_lower_bound.csv"))
        .unwrap();
    t6.write_csv(format!("{out_dir}/theorem6_lower_bound.csv"))
        .unwrap();

    // Experiment E9: Theorem 7 dominance, all distributions × trials through
    // the same shared pool.
    println!("running Theorem 7 dominance experiment...");
    let n = 50_000 / scale.max(1);
    let results = dominance_sweep(
        vec![
            AnyDistribution::uniform(10),
            AnyDistribution::geometric(0.1),
            AnyDistribution::poisson(5.0),
            AnyDistribution::zeta(2.5),
        ],
        n,
        trials,
        seed,
        &pool,
        backend,
    );
    let dom = dominance_table(&results, n);
    report.push_str(&dom.to_markdown());
    report.push('\n');
    dom.write_csv(format!("{out_dir}/theorem7_dominance.csv"))
        .unwrap();

    // Summary comparison of all algorithms on one instance.
    let summary = algorithm_comparison_table(2_000, 8, seed, backend);
    report.push_str(&summary.to_markdown());
    summary
        .write_csv(format!("{out_dir}/algorithm_comparison.csv"))
        .unwrap();

    let report_path = format!("{out_dir}/report.md");
    std::fs::write(&report_path, &report).expect("cannot write report");
    println!("all experiments complete; report at {report_path}");
}
