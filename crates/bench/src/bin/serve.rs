//! `serve` — run the equivalence-sorting daemon.
//!
//! ```text
//! serve [--addr HOST:PORT] [--jobs N] [--max-inflight M] [--linger-us U]
//!       [--trace-dir DIR] [--quota SPEC]
//! ```
//!
//! `--quota` takes comma-separated `tenant=queued:inflight:weight` entries
//! (`*` names the default quota, `-` leaves a component unlimited), e.g.
//! `--quota 'alpha=4:2:3,*=64:-:-'`.
//!
//! Binds a TCP listener (`--addr 127.0.0.1:0` picks an ephemeral port,
//! printed on startup so scripts can scrape it), serves the line protocol of
//! `ecs_service::protocol`, and runs until a client sends `shutdown`. The
//! process exits 0 only after every session, writer, and pool thread has
//! been joined — the clean-shutdown contract the CI smoke step checks.

use ecs_bench::cli::Args;
use ecs_service::{Daemon, DaemonConfig, QuotaConfig};

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&[
        "addr",
        "jobs",
        "max-inflight",
        "linger-us",
        "threads",
        "batch",
        "backend",
        "trace-dir",
        "quota",
    ]);
    let quotas = match args.get("quota").map(QuotaConfig::parse) {
        None => QuotaConfig::default(),
        Some(Ok(quotas)) => quotas,
        Some(Err(message)) => {
            eprintln!("serve: bad --quota: {message}");
            std::process::exit(2);
        }
    };
    let pool = args.throughput_pool();
    let config = DaemonConfig {
        max_inflight: args.get_usize("max-inflight", 2 * pool.workers()),
        linger: args.linger(),
        pool,
        // Jobs run under the self-tuning backend by default; with a trace
        // dir, each finished auto job persists its calibration decision
        // trace as one replayable `.calib` line.
        trace_dir: args.get("trace-dir").map(std::path::PathBuf::from),
        quotas,
        ..DaemonConfig::default()
    };
    let addr = args.get_or("addr", "127.0.0.1:7878");
    let daemon = match Daemon::bind(&addr, config) {
        Ok(daemon) => daemon,
        Err(error) => {
            eprintln!("serve: cannot bind {addr}: {error}");
            std::process::exit(1);
        }
    };
    let local = daemon
        .local_addr()
        .expect("a TCP daemon always has an address");
    println!("ecs service listening on {local}");
    println!(
        "pool={} max-inflight={} linger={:?}",
        daemon.scheduler().pool().label(),
        args.get_usize("max-inflight", 2 * daemon.scheduler().pool().workers()),
        args.linger(),
    );
    daemon.join();
    println!("ecs service stopped");
}
