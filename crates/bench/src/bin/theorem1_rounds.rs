//! Regenerates the Theorem 1 / Figure 1 evidence: the CR compound-merge
//! algorithm classifies `n` elements in `O(k + log log n)` rounds.
//!
//! ```text
//! cargo run -p ecs_bench --release --bin theorem1_rounds -- [--seed S] [--out results] [--threads N] [--batch W]
//! ```

use ecs_bench::paper::round_count_grid;
use ecs_bench::runners::theorem1_table;
use ecs_bench::Args;

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&["seed", "out", "threads", "batch", "backend"]);
    let seed = args.get_u64("seed", 1);
    let out_dir = args.get_or("out", "results");
    let backend = args.execution_backend();
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    println!("execution backend: {}", backend.label());
    let table = theorem1_table(&round_count_grid(), seed, backend);
    println!("{}", table.to_text());
    let path = format!("{out_dir}/theorem1_rounds.csv");
    table.write_csv(&path).expect("cannot write CSV");
    println!("wrote {path}");
}
