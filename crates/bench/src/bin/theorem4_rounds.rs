//! Regenerates the Theorem 4 evidence: when the smallest class has size at
//! least `λn`, the constant-round ER algorithm's round count does not grow
//! with `n`.
//!
//! ```text
//! cargo run -p ecs_bench --release --bin theorem4_rounds -- [--seed S] [--out results] [--full] [--threads N] [--batch W]
//! ```

use ecs_bench::paper::theorem4_lambdas;
use ecs_bench::runners::theorem4_table;
use ecs_bench::Args;

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&["seed", "out", "full", "threads", "batch", "backend"]);
    let seed = args.get_u64("seed", 4);
    let out_dir = args.get_or("out", "results");
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    let sizes: Vec<usize> = if args.has("full") {
        vec![2_000, 8_000, 32_000, 128_000]
    } else {
        vec![1_000, 4_000, 16_000]
    };
    let backend = args.execution_backend();
    println!("execution backend: {}", backend.label());
    let table = theorem4_table(&theorem4_lambdas(), &sizes, seed, backend);
    println!("{}", table.to_text());
    println!("(rounds stay flat as n grows within each λ block — the Theorem 4 claim)");
    let path = format!("{out_dir}/theorem4_rounds.csv");
    table.write_csv(&path).expect("cannot write CSV");
    println!("wrote {path}");
}
