//! Regenerates the Theorem 7/8/9 evidence: the round-robin algorithm's total
//! comparisons are dominated by twice the sum of `n` draws from the cut-off
//! rank distribution `D_N(n)`, and are linear for the distributions where the
//! paper proves it.
//!
//! ```text
//! cargo run -p ecs_bench --release --bin theorem7_dominance -- [--n N] [--trials T]
//!     [--out results] [--threads N] [--jobs J] [--batch W]
//!
//! `--jobs J` runs every trial of every distribution through one shared
//! J-worker throughput pool (round-robin fairness across distributions);
//! `--batch W` makes each trial session submit rounds as oracle
//! `same_batch` waves of up to W pairs. Results are bit-identical to a
//! serial, unbatched run either way.
//! ```
//!
//! Setting `ECS_BENCH_SMOKE=1` shrinks the sweep to a CI-sized smoke run.

use ecs_bench::runners::{dominance_sweep, dominance_table};
use ecs_bench::{smoke, Args};
use ecs_distributions::class_distribution::AnyDistribution;

fn main() {
    let args = Args::from_env();
    args.warn_unknown(&[
        "n", "trials", "seed", "out", "threads", "batch", "backend", "jobs",
    ]);
    let n = args.get_usize("n", if smoke() { 500 } else { 5_000 });
    let trials = args.get_usize("trials", if smoke() { 2 } else { 8 });
    let seed = args.get_u64("seed", 7);
    let out_dir = args.get_or("out", "results");
    let pool = args.throughput_pool();
    let backend = args.execution_backend();
    std::fs::create_dir_all(&out_dir).expect("cannot create output directory");

    println!(
        "throughput pool: {}; execution backend: {}",
        pool.label(),
        backend.label()
    );
    let distributions = vec![
        AnyDistribution::uniform(10),
        AnyDistribution::uniform(100),
        AnyDistribution::geometric(0.5),
        AnyDistribution::geometric(0.02),
        AnyDistribution::poisson(5.0),
        AnyDistribution::poisson(25.0),
        AnyDistribution::zeta(2.5),
        AnyDistribution::zeta(2.0),
    ];

    let results = dominance_sweep(distributions, n, trials, seed, &pool, backend);

    let table = dominance_table(&results, n);
    println!("{}", table.to_text());
    println!("Theorem 7 predicts measured ≤ bound (stochastic dominance); Theorems 8–9 predict");
    println!("both columns are linear in n for these parameters.");
    let path = format!("{out_dir}/theorem7_dominance.csv");
    table.write_csv(&path).expect("cannot write CSV");
    println!("wrote {path}");
}
