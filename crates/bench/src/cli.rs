//! A minimal `--flag value` / `--flag=value` / `--switch` command-line
//! parser.
//!
//! The parser has no flag declarations, so a bare `--switch` followed by a
//! positional token is indistinguishable from a valued flag and is parsed as
//! the latter; [`Args::has`] therefore reports a flag as present whether it
//! was captured as a switch *or* as a `--key value` pair, so switch lookups
//! never silently fail on that ambiguity. A token starting with `-` is never
//! consumed as the value of the preceding flag — `--full -5` keeps `--full`
//! a switch instead of silently giving it the value `-5` — so values that
//! themselves start with a dash (negative numbers, `--`-prefixed strings)
//! are passed with the `--flag=value` spelling.
//!
//! Binaries declare their flags only for diagnostics: [`Args::warn_unknown`]
//! compares what was parsed against the binary's known list and warns on
//! typos (`--trails 5`) instead of silently ignoring them.

use ecs_model::backend::available_parallelism;
use ecs_model::{ExecutionBackend, PinnedKnobs, ThroughputPool};
use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` / `--key=value` pairs and
/// bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process's arguments (skipping the program name).
    pub fn from_env() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            if let Some(name) = token.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    // `--flag=value`: unambiguous, and the only way to pass a
                    // value that itself starts with `--`.
                    args.values.insert(key.to_string(), value.to_string());
                    i += 1;
                } else if i + 1 < tokens.len() && !tokens[i + 1].starts_with('-') {
                    // A following token that starts with `-` (another flag, a
                    // negative number) is never captured as this flag's value;
                    // dash-values are spelled `--flag=value`.
                    args.values.insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(name.to_string());
                    i += 1;
                }
            } else {
                // Stray positional tokens are ignored.
                i += 1;
            }
        }
        args
    }

    /// A string-valued flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// A string-valued flag with a default.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    /// A numeric flag with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A numeric flag with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A float flag with a default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether `--name` was passed at all — as a bare switch *or* as a valued
    /// flag. Checking both is what makes `--verbose out.json` (a switch
    /// followed by a positional, which this declaration-free parser captures
    /// as `verbose = "out.json"`) still count as `--verbose`.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.values.contains_key(name)
    }

    /// The execution backend selected by `--backend auto|fixed` composed
    /// with `--batch W` / `--threads N`, falling back to the `ECS_THREADS`
    /// environment variable when all three flags are absent.
    ///
    /// * `--backend auto` selects [`ExecutionBackend::Auto`]: the
    ///   calibration layer probes the machine at startup and lowers every
    ///   round to concrete threaded / batched parameters, adapting the
    ///   comparison threshold (and, unpinned, the worker count and wave) to
    ///   the observed oracle latency. An explicit `--threads N` / `--batch
    ///   W` *pins* that knob — calibration keeps it verbatim and adapts only
    ///   the rest — with a warning saying which knobs remain adaptive. A
    ///   bare `--backend` and an unrecognized value both select auto (the
    ///   adaptive flag's analogue of bare `--jobs`), the latter with a
    ///   warning; `--backend fixed` (or `seq` / `sequential`) explicitly
    ///   selects the fixed chain below.
    /// * `--batch W` selects [`ExecutionBackend::Batched`]: rounds are
    ///   submitted to the oracle as `same_batch` waves of up to `W` pairs
    ///   (`--batch 0` = the whole round as one wave; a bare `--batch` or an
    ///   unparsable wave selects the default wave size). `--batch` takes
    ///   precedence over `--threads` — a backend evaluates a round either in
    ///   waves or on the pool, and the batched path is the explicit request.
    /// * `--threads N` selects the threaded backend; `1` and unparsable
    ///   values select sequential, and `--threads 0` is not a usable worker
    ///   count — it clamps to the machine's available parallelism with a
    ///   warning instead of silently building a degenerate pool.
    pub fn execution_backend(&self) -> ExecutionBackend {
        if self.has("backend") {
            match self.get("backend") {
                // The fixed chain, by explicit request.
                Some("fixed") | Some("seq") | Some("sequential") => {}
                Some("auto") | None => return self.auto_backend(),
                Some(other) => {
                    warn_once(
                        "--backend",
                        &format!(
                            "warning: --backend {other} is not a recognized backend \
                             (auto, fixed); selecting auto"
                        ),
                    );
                    return self.auto_backend();
                }
            }
        }
        if self.has("batch") {
            return ExecutionBackend::batched(self.batch_wave());
        }
        match self.get("threads") {
            Some(value) => ExecutionBackend::from_threads(worker_count("--threads", value, 1)),
            None => ExecutionBackend::from_env(),
        }
    }

    /// The wave size of a present `--batch` flag (bare and unparsable select
    /// the default wave size).
    fn batch_wave(&self) -> usize {
        match self.get("batch") {
            Some(value) => value
                .parse()
                .unwrap_or(ExecutionBackend::DEFAULT_BATCH_WAVE),
            None => ExecutionBackend::DEFAULT_BATCH_WAVE,
        }
    }

    /// The `--backend auto` lowering: explicit `--threads` / `--batch` pin
    /// those knobs for the calibration layer instead of selecting a fixed
    /// backend, with a warning spelling out what stays adaptive.
    fn auto_backend(&self) -> ExecutionBackend {
        let mut pins = PinnedKnobs::default();
        if self.has("batch") {
            pins.wave = Some(self.batch_wave());
            warn_once(
                "--backend/--batch",
                "warning: --backend auto with --batch pins the wave size (every \
                 round lowers to batched waves); only the comparison threshold \
                 stays adaptive",
            );
        }
        if let Some(value) = self.get("threads") {
            pins.threads = Some(worker_count("--threads", value, 1));
            warn_once(
                "--backend/--threads",
                "warning: --backend auto with --threads pins the worker count; \
                 the comparison threshold and the threaded-vs-batched choice \
                 stay adaptive",
            );
        }
        ExecutionBackend::auto_pinned(pins)
    }

    /// The throughput pool selected by `--jobs N` (`1` runs trials
    /// serially), falling back to the `--threads` / `ECS_THREADS` backend
    /// when the flag is absent — so `--threads N` alone still accelerates
    /// trial-level work as before, while `--jobs` decouples trial throughput
    /// from round-evaluation parallelism. A bare `--jobs` (no value), an
    /// unparsable count, *and* the degenerate `--jobs 0` all select the
    /// machine's available parallelism (the zero case with a warning) rather
    /// than being silently dropped or going serial; results are
    /// bit-identical for every worker count either way.
    ///
    /// With `--batch` and no `--jobs`, the trial loop stays serial (a
    /// batched backend is single-threaded by design) — combine `--jobs N
    /// --batch W` to run `N` concurrent trials whose sessions each submit
    /// waves of `W`.
    pub fn throughput_pool(&self) -> ThroughputPool {
        if !self.has("jobs") {
            // A Batched backend has one thread, so `--batch` alone keeps the
            // trial loop serial; `--threads N` keeps feeding the pool.
            return ThroughputPool::new(self.execution_backend());
        }
        let jobs = match self.get("jobs") {
            Some(value) => worker_count("--jobs", value, available_parallelism()),
            None => available_parallelism(),
        };
        ThroughputPool::from_jobs(jobs)
    }

    /// The linger window selected by `--linger-us N` (microseconds a
    /// [`ecs_model::BatchingOracle`] wave opener waits for peers before
    /// flushing short), defaulting to
    /// [`ecs_model::batching::DEFAULT_LINGER`]. `--linger-us 0` flushes every
    /// wave immediately — useful to make coalescing-dependent runs
    /// event-driven instead of timing-dependent.
    pub fn linger(&self) -> std::time::Duration {
        match self.get("linger-us") {
            Some(value) => value
                .trim()
                .parse()
                .map(std::time::Duration::from_micros)
                .unwrap_or(ecs_model::batching::DEFAULT_LINGER),
            None => ecs_model::batching::DEFAULT_LINGER,
        }
    }

    /// Warns (once, to stderr) about every parsed `--flag` that is not in
    /// the binary's `known` list, printing the known flags so typos like
    /// `--trails 5` surface instead of silently running the default grid.
    /// Unknown flags are diagnostics only — the run proceeds regardless.
    pub fn warn_unknown(&self, known: &[&str]) {
        let mut unknown: Vec<&str> = self
            .values
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
            .filter(|name| !known.contains(name))
            .collect();
        unknown.sort_unstable();
        unknown.dedup();
        if unknown.is_empty() {
            return;
        }
        for name in unknown {
            eprintln!("warning: unknown flag --{name} (ignored)");
        }
        let mut listed: Vec<&str> = known.to_vec();
        listed.sort_unstable();
        eprintln!(
            "note: known flags: {}",
            listed
                .iter()
                .map(|name| format!("--{name}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}

/// Parses one worker-count flag value. `0` is not a usable worker count —
/// before this existed, a zero could flow on toward the pool layer as a
/// degenerate request — so it clamps to the machine's available parallelism
/// with a warning (once per flag: binaries resolve the backend more than
/// once); unparsable values fall back to `unparsable` (each flag documents
/// its own fallback).
fn worker_count(flag: &str, value: &str, unparsable: usize) -> usize {
    match value.trim().parse::<usize>() {
        Ok(0) => {
            let available = available_parallelism();
            warn_once(
                flag,
                &format!(
                    "warning: {flag} 0 is not a usable worker count; \
                     clamping to available parallelism ({available})"
                ),
            );
            available
        }
        Ok(count) => count,
        Err(_) => unparsable,
    }
}

/// Prints `message` to stderr at most once per `key` for the process's
/// lifetime — binaries resolve the backend more than once, and a diagnostic
/// repeated per resolution reads like a new problem each time.
fn warn_once(key: &str, message: &str) {
    static WARNED: std::sync::Mutex<Vec<String>> = std::sync::Mutex::new(Vec::new());
    let mut warned = WARNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !warned.iter().any(|warned_key| warned_key == key) {
        warned.push(key.to_string());
        eprintln!("{message}");
    }
}

/// Whether `ECS_BENCH_SMOKE` is set: reproduction binaries shrink their grids
/// to a seconds-long smoke run (used by CI on every push).
pub fn smoke() -> bool {
    std::env::var("ECS_BENCH_SMOKE").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::from_tokens(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args(&["--dist", "uniform", "--full", "--trials", "5"]);
        assert_eq!(a.get("dist"), Some("uniform"));
        assert!(a.has("full"));
        assert_eq!(a.get_usize("trials", 10), 5);
        assert_eq!(a.get_usize("missing", 7), 7);
        assert!(!a.has("missing"));
    }

    #[test]
    fn numeric_defaults_on_parse_failure() {
        let a = args(&["--trials", "not-a-number"]);
        assert_eq!(a.get_usize("trials", 3), 3);
        assert_eq!(a.get_f64("lambda", 0.4), 0.4);
        assert_eq!(a.get_u64("seed", 1), 1);
    }

    #[test]
    fn trailing_flag_is_a_switch() {
        let a = args(&["--out", "dir", "--verbose"]);
        assert_eq!(a.get_or("out", "x"), "dir");
        assert!(a.has("verbose"));
    }

    #[test]
    fn positional_tokens_are_ignored() {
        let a = args(&["stray", "--k", "9"]);
        assert_eq!(a.get_usize("k", 0), 9);
    }

    #[test]
    fn switch_followed_by_positional_still_registers() {
        // Regression: `--verbose out.json` used to be captured only as a
        // value flag, so `has("verbose")` silently returned false.
        let a = args(&["--verbose", "out.json"]);
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose"), Some("out.json"));
    }

    #[test]
    fn equals_syntax_parses_values() {
        let a = args(&["--out=results", "--trials=5", "--label="]);
        assert_eq!(a.get("out"), Some("results"));
        assert_eq!(a.get_usize("trials", 0), 5);
        assert_eq!(a.get("label"), Some(""));
        assert!(a.has("out"), "valued flags count as present");
    }

    #[test]
    fn equals_syntax_passes_values_starting_with_dashes() {
        // Regression: `--flag --value` parsed `--value` as a separate switch,
        // so values starting with `--` could never be passed.
        let a = args(&["--prefix=--release", "--next"]);
        assert_eq!(a.get("prefix"), Some("--release"));
        assert!(a.has("next"));
    }

    #[test]
    fn switch_followed_by_negative_token_stays_a_switch() {
        // Regression: `--full -5` captured `-5` as the *value* of `--full`,
        // so the switch stopped being a switch and the stray token vanished
        // instead of being ignored as a positional.
        let a = args(&["--full", "-5", "--trials", "3"]);
        assert!(a.has("full"));
        assert_eq!(a.get("full"), None, "--full must stay a bare switch");
        assert_eq!(a.get_usize("trials", 0), 3);

        // Same shape with a short-dash non-numeric positional.
        let b = args(&["--verbose", "-x", "--out", "dir"]);
        assert!(b.has("verbose"));
        assert_eq!(b.get("verbose"), None);
        assert_eq!(b.get("out"), Some("dir"));

        // Negative values are still passable, with the `=` spelling.
        let c = args(&["--offset=-5"]);
        assert_eq!(c.get("offset"), Some("-5"));
        assert_eq!(c.get_f64("offset", 0.0), -5.0);
    }

    #[test]
    fn linger_flag_parses_microseconds() {
        use std::time::Duration;
        assert_eq!(
            args(&["--linger-us", "500"]).linger(),
            Duration::from_micros(500)
        );
        assert_eq!(args(&["--linger-us", "0"]).linger(), Duration::ZERO);
        // Absent, bare, and unparsable all select the model default.
        let default = ecs_model::batching::DEFAULT_LINGER;
        assert_eq!(args(&[]).linger(), default);
        assert_eq!(args(&["--linger-us"]).linger(), default);
        assert_eq!(args(&["--linger-us", "junk"]).linger(), default);
    }

    #[test]
    fn unknown_flags_warn_without_aborting() {
        // `warn_unknown` is diagnostics-only: it must not panic or alter the
        // parsed flags, whatever the overlap with the known list.
        let a = args(&["--trails", "5", "--full", "--out=dir"]);
        a.warn_unknown(&["trials", "full", "out"]);
        a.warn_unknown(&[]);
        assert_eq!(a.get_usize("trails", 0), 5);
        assert!(a.has("full"));
    }

    #[test]
    fn adjacent_switches_stay_switches() {
        let a = args(&["--full", "--verbose", "--out", "dir"]);
        assert!(a.has("full"));
        assert!(a.has("verbose"));
        assert_eq!(a.get("out"), Some("dir"));
        assert_eq!(a.get("full"), None, "switches carry no value");
    }

    #[test]
    fn threads_flag_selects_the_backend() {
        use ecs_model::ExecutionBackend;
        assert_eq!(
            args(&["--threads", "4"]).execution_backend(),
            ExecutionBackend::threaded(4)
        );
        assert_eq!(
            args(&["--threads", "1"]).execution_backend(),
            ExecutionBackend::Sequential
        );
        assert_eq!(
            args(&["--threads", "junk"]).execution_backend(),
            ExecutionBackend::Sequential
        );
    }

    #[test]
    fn jobs_flag_selects_the_throughput_pool() {
        assert_eq!(
            args(&["--jobs", "4"]).throughput_pool().label(),
            "pooled(4)"
        );
        assert_eq!(args(&["--jobs", "1"]).throughput_pool().label(), "serial");
        // Without --jobs the pool follows the --threads backend.
        assert_eq!(
            args(&["--threads", "8"]).throughput_pool().label(),
            "pooled(8)"
        );
    }

    #[test]
    fn batch_flag_selects_the_batched_backend() {
        use ecs_model::ExecutionBackend;
        assert_eq!(
            args(&["--batch", "64"]).execution_backend(),
            ExecutionBackend::batched(64)
        );
        assert_eq!(
            args(&["--batch", "0"]).execution_backend(),
            ExecutionBackend::batched(0),
            "--batch 0 means the whole round as one wave"
        );
        // A bare `--batch` or a typo'd wave still selects batching, at the
        // default wave size.
        let default = ExecutionBackend::batched(ExecutionBackend::DEFAULT_BATCH_WAVE);
        assert_eq!(args(&["--batch"]).execution_backend(), default);
        assert_eq!(args(&["--batch", "junk"]).execution_backend(), default);
        // `--batch` beats `--threads`: the batched path is the explicit ask.
        assert_eq!(
            args(&["--threads", "4", "--batch", "32"]).execution_backend(),
            ExecutionBackend::batched(32)
        );
        // `--batch` alone keeps the trial loop serial; with `--jobs` the
        // trials run pooled while each session batches.
        assert_eq!(args(&["--batch", "64"]).throughput_pool().label(), "serial");
        assert_eq!(
            args(&["--batch", "64", "--jobs", "4"])
                .throughput_pool()
                .label(),
            "pooled(4)"
        );
    }

    #[test]
    fn backend_flag_selects_auto() {
        use ecs_model::{ExecutionBackend, PinnedKnobs};
        let auto = args(&["--backend", "auto"]).execution_backend();
        assert_eq!(auto.label(), "auto");
        let handle = auto.calibration().expect("auto carries a handle");
        assert_eq!(handle.pins(), PinnedKnobs::default());
        // A bare `--backend` (the adaptive analogue of bare `--jobs`) and an
        // unrecognized value both still select auto instead of vanishing.
        assert_eq!(args(&["--backend"]).execution_backend().label(), "auto");
        assert_eq!(
            args(&["--backend", "turbo"]).execution_backend().label(),
            "auto"
        );
        // The fixed chain stays reachable by explicit request.
        assert_eq!(
            args(&["--backend", "fixed", "--threads", "4"]).execution_backend(),
            ExecutionBackend::threaded(4)
        );
        assert_eq!(
            args(&["--backend", "seq", "--threads", "1"]).execution_backend(),
            ExecutionBackend::Sequential
        );
    }

    #[test]
    fn explicit_knobs_pin_auto_calibration() {
        use ecs_model::PinnedKnobs;
        let pins = |parts: &[&str]| {
            args(parts)
                .execution_backend()
                .calibration()
                .expect("auto carries a handle")
                .pins()
        };
        assert_eq!(
            pins(&["--backend", "auto", "--threads", "4"]),
            PinnedKnobs {
                threads: Some(4),
                wave: None,
            }
        );
        assert_eq!(
            pins(&["--backend", "auto", "--batch", "32"]),
            PinnedKnobs {
                threads: None,
                wave: Some(32),
            }
        );
        assert_eq!(
            pins(&["--backend=auto", "--threads", "2", "--batch", "0"]),
            PinnedKnobs {
                threads: Some(2),
                wave: Some(0),
            }
        );
    }

    #[test]
    fn zero_worker_counts_clamp_to_available_parallelism() {
        use ecs_model::ExecutionBackend;
        // Regression: a zero `--threads` / `--jobs` used to flow on as a
        // degenerate zero-worker request; both must clamp to the machine's
        // available parallelism (with a warning) instead.
        let available = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert_eq!(
            args(&["--threads", "0"]).execution_backend(),
            ExecutionBackend::from_threads(available)
        );
        assert_eq!(
            args(&["--jobs", "0"]).throughput_pool().label(),
            ThroughputPool::from_jobs(available).label()
        );
        // The clamp never produces a zero-thread backend, whatever the host.
        assert!(args(&["--threads", "0"]).execution_backend().threads() >= 1);
        assert!(args(&["--jobs", "0"]).throughput_pool().workers() >= 1);
    }

    #[test]
    fn bare_or_malformed_jobs_is_not_silently_dropped() {
        // `--jobs` as the last token (or before another `--flag`) parses as a
        // switch, and a typo'd count parses as nothing usable; both must
        // still select a pool (available parallelism) instead of falling
        // back as if the flag were absent or silently going serial.
        let expected = ThroughputPool::from_jobs(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        )
        .label();
        assert_eq!(args(&["--jobs"]).throughput_pool().label(), expected);
        assert_eq!(
            args(&["--jobs", "junk"]).throughput_pool().label(),
            expected
        );
        assert_eq!(
            args(&["--threads", "8", "--jobs"])
                .throughput_pool()
                .label(),
            expected,
            "bare --jobs must override the --threads fallback"
        );
    }
}
