//! A minimal `--flag value` / `--flag=value` / `--switch` command-line
//! parser.
//!
//! The parser has no flag declarations, so a bare `--switch` followed by a
//! positional token is indistinguishable from a valued flag and is parsed as
//! the latter; [`Args::has`] therefore reports a flag as present whether it
//! was captured as a switch *or* as a `--key value` pair, so switch lookups
//! never silently fail on that ambiguity. Values that themselves start with
//! `--` can always be passed with the `--flag=value` spelling.

use ecs_model::{ExecutionBackend, ThroughputPool};
use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` / `--key=value` pairs and
/// bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process's arguments (skipping the program name).
    pub fn from_env() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            if let Some(name) = token.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    // `--flag=value`: unambiguous, and the only way to pass a
                    // value that itself starts with `--`.
                    args.values.insert(key.to_string(), value.to_string());
                    i += 1;
                } else if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.values.insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(name.to_string());
                    i += 1;
                }
            } else {
                // Stray positional tokens are ignored.
                i += 1;
            }
        }
        args
    }

    /// A string-valued flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// A string-valued flag with a default.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    /// A numeric flag with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A numeric flag with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A float flag with a default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether `--name` was passed at all — as a bare switch *or* as a valued
    /// flag. Checking both is what makes `--verbose out.json` (a switch
    /// followed by a positional, which this declaration-free parser captures
    /// as `verbose = "out.json"`) still count as `--verbose`.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name) || self.values.contains_key(name)
    }

    /// The execution backend selected by `--threads N`, falling back to the
    /// `ECS_THREADS` environment variable when the flag is absent (`0`/`1`
    /// and unparsable values select the sequential backend).
    pub fn execution_backend(&self) -> ExecutionBackend {
        match self.get("threads") {
            Some(value) => ExecutionBackend::from_threads(value.parse().unwrap_or(1)),
            None => ExecutionBackend::from_env(),
        }
    }

    /// The throughput pool selected by `--jobs N` (`0`/`1` run trials
    /// serially), falling back to the `--threads` / `ECS_THREADS` backend
    /// when the flag is absent — so `--threads N` alone still accelerates
    /// trial-level work as before, while `--jobs` decouples trial throughput
    /// from round-evaluation parallelism. A bare `--jobs` (no value) or an
    /// unparsable count selects the machine's available parallelism rather
    /// than being silently dropped; results are bit-identical for every
    /// worker count either way.
    pub fn throughput_pool(&self) -> ThroughputPool {
        if !self.has("jobs") {
            return ThroughputPool::new(self.execution_backend());
        }
        let available =
            || std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        let jobs = match self.get("jobs") {
            Some(value) => value.parse().unwrap_or_else(|_| available()),
            None => available(),
        };
        ThroughputPool::from_jobs(jobs)
    }
}

/// Whether `ECS_BENCH_SMOKE` is set: reproduction binaries shrink their grids
/// to a seconds-long smoke run (used by CI on every push).
pub fn smoke() -> bool {
    std::env::var("ECS_BENCH_SMOKE").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::from_tokens(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args(&["--dist", "uniform", "--full", "--trials", "5"]);
        assert_eq!(a.get("dist"), Some("uniform"));
        assert!(a.has("full"));
        assert_eq!(a.get_usize("trials", 10), 5);
        assert_eq!(a.get_usize("missing", 7), 7);
        assert!(!a.has("missing"));
    }

    #[test]
    fn numeric_defaults_on_parse_failure() {
        let a = args(&["--trials", "not-a-number"]);
        assert_eq!(a.get_usize("trials", 3), 3);
        assert_eq!(a.get_f64("lambda", 0.4), 0.4);
        assert_eq!(a.get_u64("seed", 1), 1);
    }

    #[test]
    fn trailing_flag_is_a_switch() {
        let a = args(&["--out", "dir", "--verbose"]);
        assert_eq!(a.get_or("out", "x"), "dir");
        assert!(a.has("verbose"));
    }

    #[test]
    fn positional_tokens_are_ignored() {
        let a = args(&["stray", "--k", "9"]);
        assert_eq!(a.get_usize("k", 0), 9);
    }

    #[test]
    fn switch_followed_by_positional_still_registers() {
        // Regression: `--verbose out.json` used to be captured only as a
        // value flag, so `has("verbose")` silently returned false.
        let a = args(&["--verbose", "out.json"]);
        assert!(a.has("verbose"));
        assert_eq!(a.get("verbose"), Some("out.json"));
    }

    #[test]
    fn equals_syntax_parses_values() {
        let a = args(&["--out=results", "--trials=5", "--label="]);
        assert_eq!(a.get("out"), Some("results"));
        assert_eq!(a.get_usize("trials", 0), 5);
        assert_eq!(a.get("label"), Some(""));
        assert!(a.has("out"), "valued flags count as present");
    }

    #[test]
    fn equals_syntax_passes_values_starting_with_dashes() {
        // Regression: `--flag --value` parsed `--value` as a separate switch,
        // so values starting with `--` could never be passed.
        let a = args(&["--prefix=--release", "--next"]);
        assert_eq!(a.get("prefix"), Some("--release"));
        assert!(a.has("next"));
    }

    #[test]
    fn adjacent_switches_stay_switches() {
        let a = args(&["--full", "--verbose", "--out", "dir"]);
        assert!(a.has("full"));
        assert!(a.has("verbose"));
        assert_eq!(a.get("out"), Some("dir"));
        assert_eq!(a.get("full"), None, "switches carry no value");
    }

    #[test]
    fn threads_flag_selects_the_backend() {
        use ecs_model::ExecutionBackend;
        assert_eq!(
            args(&["--threads", "4"]).execution_backend(),
            ExecutionBackend::threaded(4)
        );
        assert_eq!(
            args(&["--threads", "1"]).execution_backend(),
            ExecutionBackend::Sequential
        );
        assert_eq!(
            args(&["--threads", "junk"]).execution_backend(),
            ExecutionBackend::Sequential
        );
    }

    #[test]
    fn jobs_flag_selects_the_throughput_pool() {
        assert_eq!(
            args(&["--jobs", "4"]).throughput_pool().label(),
            "pooled(4)"
        );
        assert_eq!(args(&["--jobs", "1"]).throughput_pool().label(), "serial");
        // Without --jobs the pool follows the --threads backend.
        assert_eq!(
            args(&["--threads", "8"]).throughput_pool().label(),
            "pooled(8)"
        );
    }

    #[test]
    fn bare_or_malformed_jobs_is_not_silently_dropped() {
        // `--jobs` as the last token (or before another `--flag`) parses as a
        // switch, and a typo'd count parses as nothing usable; both must
        // still select a pool (available parallelism) instead of falling
        // back as if the flag were absent or silently going serial.
        let expected = ThroughputPool::from_jobs(
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        )
        .label();
        assert_eq!(args(&["--jobs"]).throughput_pool().label(), expected);
        assert_eq!(
            args(&["--jobs", "junk"]).throughput_pool().label(),
            expected
        );
        assert_eq!(
            args(&["--threads", "8", "--jobs"])
                .throughput_pool()
                .label(),
            expected,
            "bare --jobs must override the --threads fallback"
        );
    }
}
