//! A minimal `--flag value` / `--switch` command-line parser.

use ecs_model::ExecutionBackend;
use std::collections::HashMap;

/// Parsed command-line arguments: `--key value` pairs and bare `--switch`es.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses the process's arguments (skipping the program name).
    pub fn from_env() -> Self {
        Self::from_tokens(std::env::args().skip(1))
    }

    /// Parses an explicit argument list (used by tests).
    pub fn from_tokens<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut args = Args::default();
        let tokens: Vec<String> = iter.into_iter().collect();
        let mut i = 0;
        while i < tokens.len() {
            let token = &tokens[i];
            if let Some(name) = token.strip_prefix("--") {
                if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                    args.values.insert(name.to_string(), tokens[i + 1].clone());
                    i += 2;
                } else {
                    args.switches.push(name.to_string());
                    i += 1;
                }
            } else {
                // Stray positional tokens are ignored.
                i += 1;
            }
        }
        args
    }

    /// A string-valued flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(|s| s.as_str())
    }

    /// A string-valued flag with a default.
    pub fn get_or(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    /// A numeric flag with a default.
    pub fn get_usize(&self, name: &str, default: usize) -> usize {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A numeric flag with a default.
    pub fn get_u64(&self, name: &str, default: u64) -> u64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// A float flag with a default.
    pub fn get_f64(&self, name: &str, default: f64) -> f64 {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether a bare `--switch` was passed.
    pub fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The execution backend selected by `--threads N`, falling back to the
    /// `ECS_THREADS` environment variable when the flag is absent (`0`/`1`
    /// and unparsable values select the sequential backend).
    pub fn execution_backend(&self) -> ExecutionBackend {
        match self.get("threads") {
            Some(value) => ExecutionBackend::from_threads(value.parse().unwrap_or(1)),
            None => ExecutionBackend::from_env(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Args {
        Args::from_tokens(parts.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_values_and_switches() {
        let a = args(&["--dist", "uniform", "--full", "--trials", "5"]);
        assert_eq!(a.get("dist"), Some("uniform"));
        assert!(a.has("full"));
        assert_eq!(a.get_usize("trials", 10), 5);
        assert_eq!(a.get_usize("missing", 7), 7);
        assert!(!a.has("missing"));
    }

    #[test]
    fn numeric_defaults_on_parse_failure() {
        let a = args(&["--trials", "not-a-number"]);
        assert_eq!(a.get_usize("trials", 3), 3);
        assert_eq!(a.get_f64("lambda", 0.4), 0.4);
        assert_eq!(a.get_u64("seed", 1), 1);
    }

    #[test]
    fn trailing_flag_is_a_switch() {
        let a = args(&["--out", "dir", "--verbose"]);
        assert_eq!(a.get_or("out", "x"), "dir");
        assert!(a.has("verbose"));
    }

    #[test]
    fn positional_tokens_are_ignored() {
        let a = args(&["stray", "--k", "9"]);
        assert_eq!(a.get_usize("k", 0), 9);
    }

    #[test]
    fn threads_flag_selects_the_backend() {
        use ecs_model::ExecutionBackend;
        assert_eq!(
            args(&["--threads", "4"]).execution_backend(),
            ExecutionBackend::threaded(4)
        );
        assert_eq!(
            args(&["--threads", "1"]).execution_backend(),
            ExecutionBackend::Sequential
        );
        assert_eq!(
            args(&["--threads", "junk"]).execution_backend(),
            ExecutionBackend::Sequential
        );
    }
}
