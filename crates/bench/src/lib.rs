//! Shared infrastructure for the benchmark and figure-reproduction binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the experiment index). This library holds what they
//! share: the paper's exact parameter grids, a tiny command-line flag parser
//! (so the harness has no CLI dependency), and helpers for turning measurement
//! series into [`ecs_analysis::Table`]s and CSV files.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod paper;
pub mod runners;

pub use cli::{smoke, Args};
