//! The paper's exact experimental parameter grids (Section 5).

use ecs_analysis::Figure5Config;
use ecs_distributions::class_distribution::AnyDistribution;

/// The uniform-panel parameters: `k ∈ {10, 25, 100}`.
pub const UNIFORM_KS: [usize; 3] = [10, 25, 100];

/// The geometric-panel parameters: `p ∈ {1/2, 1/10, 1/50}`.
pub const GEOMETRIC_PS: [f64; 3] = [0.5, 0.1, 0.02];

/// The Poisson-panel parameters: `λ ∈ {1, 5, 25}`.
pub const POISSON_LAMBDAS: [f64; 3] = [1.0, 5.0, 25.0];

/// The zeta-panel parameters: `s ∈ {1.1, 1.5, 2, 2.5}`.
pub const ZETA_SS: [f64; 4] = [1.1, 1.5, 2.0, 2.5];

/// All distributions of one panel.
pub fn panel_distributions(panel: &str) -> Vec<AnyDistribution> {
    match panel {
        "uniform" => UNIFORM_KS
            .iter()
            .map(|&k| AnyDistribution::uniform(k))
            .collect(),
        "geometric" => GEOMETRIC_PS
            .iter()
            .map(|&p| AnyDistribution::geometric(p))
            .collect(),
        "poisson" => POISSON_LAMBDAS
            .iter()
            .map(|&l| AnyDistribution::poisson(l))
            .collect(),
        "zeta" => ZETA_SS.iter().map(|&s| AnyDistribution::zeta(s)).collect(),
        other => panic!("unknown panel '{other}' (expected uniform|geometric|poisson|zeta)"),
    }
}

/// The names of all four panels, in the paper's order.
pub fn panel_names() -> Vec<&'static str> {
    vec!["uniform", "geometric", "poisson", "zeta"]
}

/// Builds the Figure 5 configurations for one panel. `scale_divisor = 1`
/// reproduces the paper's exact grid; larger divisors shrink every size for
/// quick runs. The zeta panel automatically uses the smaller size grid, as in
/// the paper.
pub fn figure5_configs(
    panel: &str,
    scale_divisor: usize,
    trials: usize,
    seed: u64,
) -> Vec<Figure5Config> {
    panel_distributions(panel)
        .into_iter()
        .enumerate()
        .map(|(i, dist)| {
            let base = if panel == "zeta" {
                Figure5Config::paper_zeta(dist, seed + i as u64)
            } else {
                Figure5Config::paper_large(dist, seed + i as u64)
            };
            let mut config = if scale_divisor > 1 {
                base.scaled_down(scale_divisor)
            } else {
                base
            };
            config.trials = trials;
            config
        })
        .collect()
}

/// The `(n, k)` grid used by the Theorem 1 / Theorem 2 round-count tables.
pub fn round_count_grid() -> Vec<(usize, usize)> {
    vec![
        (1_000, 2),
        (1_000, 8),
        (10_000, 2),
        (10_000, 8),
        (10_000, 32),
        (100_000, 2),
        (100_000, 8),
        (100_000, 32),
    ]
}

/// The `λ` values exercised by the Theorem 4 experiment.
pub fn theorem4_lambdas() -> Vec<f64> {
    vec![0.4, 0.3, 0.25, 0.2]
}

/// The `(n, f)` grid of the Theorem 5 lower-bound experiment.
pub fn theorem5_grid() -> Vec<(usize, usize)> {
    vec![
        (512, 2),
        (512, 8),
        (512, 32),
        (1_024, 2),
        (1_024, 8),
        (1_024, 32),
        (2_048, 8),
        (2_048, 64),
    ]
}

/// The `(n, ℓ)` grid of the Theorem 6 lower-bound experiment.
pub fn theorem6_grid() -> Vec<(usize, usize)> {
    vec![
        (512, 4),
        (512, 16),
        (1_024, 4),
        (1_024, 16),
        (2_048, 8),
        (2_048, 32),
    ]
}

/// The `(n, ℓ)` grid of the Theorem 6 *adaptive search* experiment (the
/// `--search` table): the wave-parallel smallest-class search driven against
/// the Theorem 6 adversary.
pub fn search_grid() -> Vec<(usize, usize)> {
    vec![(384, 4), (384, 8), (768, 8), (768, 16), (1_536, 16)]
}

/// The `ECS_BENCH_SMOKE` counterpart of [`search_grid`].
pub fn search_smoke_grid() -> Vec<(usize, usize)> {
    vec![(96, 4), (192, 8)]
}

/// A seconds-long `(n, f)` grid for `ECS_BENCH_SMOKE` runs of the Theorem 5
/// experiment (CI runs the lower-bound binary twice for the backend
/// byte-identity diff).
pub fn theorem5_smoke_grid() -> Vec<(usize, usize)> {
    vec![(128, 4), (128, 8), (256, 8)]
}

/// The `ECS_BENCH_SMOKE` counterpart of [`theorem6_grid`].
pub fn theorem6_smoke_grid() -> Vec<(usize, usize)> {
    vec![(128, 4), (256, 8)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_distributions::ClassDistribution;

    #[test]
    fn panels_have_the_paper_parameter_counts() {
        assert_eq!(panel_distributions("uniform").len(), 3);
        assert_eq!(panel_distributions("geometric").len(), 3);
        assert_eq!(panel_distributions("poisson").len(), 3);
        assert_eq!(panel_distributions("zeta").len(), 4);
        assert_eq!(panel_names().len(), 4);
    }

    #[test]
    #[should_panic(expected = "unknown panel")]
    fn unknown_panel_rejected() {
        let _ = panel_distributions("binomial");
    }

    #[test]
    fn full_scale_configs_match_the_paper_grids() {
        let uniform = figure5_configs("uniform", 1, 10, 1);
        assert_eq!(uniform.len(), 3);
        assert_eq!(uniform[0].sizes.first().copied(), Some(10_000));
        assert_eq!(uniform[0].sizes.last().copied(), Some(200_000));
        assert_eq!(uniform[0].trials, 10);

        let zeta = figure5_configs("zeta", 1, 10, 1);
        assert_eq!(zeta.len(), 4);
        assert_eq!(zeta[0].sizes.first().copied(), Some(1_000));
        assert_eq!(zeta[0].sizes.last().copied(), Some(20_000));
    }

    #[test]
    fn scaled_configs_shrink() {
        let configs = figure5_configs("poisson", 20, 3, 1);
        assert!(configs.iter().all(|c| c.trials == 3));
        assert!(configs.iter().all(|c| *c.sizes.last().unwrap() <= 10_000));
    }

    #[test]
    fn config_labels_are_distinct() {
        let labels: Vec<String> = figure5_configs("geometric", 10, 2, 1)
            .iter()
            .map(|c| c.distribution.name())
            .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels, dedup);
    }

    #[test]
    fn grids_are_nonempty() {
        assert!(!round_count_grid().is_empty());
        assert!(!theorem4_lambdas().is_empty());
        assert!(!theorem5_grid().is_empty());
        assert!(!theorem6_grid().is_empty());
        assert!(theorem5_grid().iter().all(|&(n, f)| n % f == 0));
        assert!(theorem6_grid().iter().all(|&(n, l)| n > 2 * l));
        assert!(theorem5_smoke_grid().iter().all(|&(n, f)| n % f == 0));
        assert!(theorem6_smoke_grid().iter().all(|&(n, l)| n > 2 * l));
        assert!(!search_grid().is_empty());
        assert!(search_grid().iter().all(|&(n, l)| n > 2 * l));
        assert!(search_smoke_grid().iter().all(|&(n, l)| n > 2 * l));
    }
}
