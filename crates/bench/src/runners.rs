//! Measurement runners shared by the reproduction binaries.

use crate::paper;
use ecs_adversary::{
    EqualSizeAdversary, LowerBoundAdversary, SmallestClassAdversary, SmallestClassSearch,
};
use ecs_analysis::report::fmt_float;
use ecs_analysis::{
    dominance_grid_with_backend, figure5_grid_with_backend, DominanceConfig, DominanceResult,
    Figure5Config, Figure5Series, Table,
};
use ecs_core::{
    CrCompoundMerge, EcsAlgorithm, EcsRun, ErConstantRound, ErMergeSort, RepresentativeScan,
    RoundRobin,
};
use ecs_distributions::class_distribution::AnyDistribution;
use ecs_model::throughput::Job;
use ecs_model::{EquivalenceOracle, ExecutionBackend, Instance, InstanceOracle, ThroughputPool};
use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

/// Runs every Figure 5 configuration of one panel through the throughput
/// pool — all `(distribution, size, trial)` jobs of the panel are queued as
/// one workload, one fairness session per distribution — and returns
/// `(config, series)` pairs in the panel's order. Each trial's session
/// evaluates on `backend` (e.g. the `--batch` / `--threads` CLI selection);
/// results are bit-identical to the serial per-config loop on every backend.
pub fn figure5_panel_series(
    panel: &str,
    scale: usize,
    trials: usize,
    seed: u64,
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Vec<(Figure5Config, Figure5Series)> {
    let configs = paper::figure5_configs(panel, scale, trials, seed);
    let series = figure5_grid_with_backend(&configs, pool, backend);
    configs.into_iter().zip(series).collect()
}

/// Runs a Theorem 7 dominance sweep over several distributions through the
/// throughput pool (one fairness session per distribution), bit-identical to
/// running [`ecs_analysis::dominance_experiment`] per distribution. Trial
/// sessions evaluate on `backend`.
pub fn dominance_sweep(
    distributions: Vec<AnyDistribution>,
    n: usize,
    trials: usize,
    seed: u64,
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Vec<DominanceResult> {
    let configs: Vec<DominanceConfig> = distributions
        .into_iter()
        .map(|distribution| DominanceConfig {
            distribution,
            n,
            trials,
            seed,
        })
        .collect();
    dominance_grid_with_backend(&configs, pool, backend)
}

/// Renders one Figure 5 series as a table with per-size statistics and the
/// best-fit line (when the paper predicts one).
pub fn figure5_table(series: &Figure5Series) -> Table {
    let fit_label = match &series.fit {
        Some(fit) => format!(
            "fit: comparisons ≈ {}·n + {} (R² = {:.5})",
            fmt_float(fit.slope),
            fmt_float(fit.intercept),
            fit.r_squared
        ),
        None => "no linear fit (paper proves no linear bound for this parameter)".to_string(),
    };
    let mut table = Table::new(
        format!("Figure 5 — {} — {}", series.label, fit_label),
        &[
            "n",
            "mean comparisons",
            "std dev",
            "min",
            "max",
            "comparisons/n",
        ],
    );
    for point in &series.points {
        table.push_row(vec![
            point.n.to_string(),
            fmt_float(point.summary.mean()),
            fmt_float(point.summary.std_dev()),
            fmt_float(point.summary.min()),
            fmt_float(point.summary.max()),
            fmt_float(point.summary.mean() / point.n as f64),
        ]);
    }
    table
}

/// Runs the Theorem 1 (CR compound merge) round-count experiment over a grid
/// of `(n, k)` pairs.
pub fn theorem1_table(grid: &[(usize, usize)], seed: u64, backend: ExecutionBackend) -> Table {
    let mut table = Table::new(
        "Theorem 1 — CR rounds, O(k + log log n) expected",
        &[
            "n",
            "k",
            "rounds",
            "comparisons",
            "k + lglg n",
            "rounds / (k + lglg n)",
        ],
    );
    for (i, &(n, k)) in grid.iter().enumerate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed + i as u64);
        let instance = Instance::balanced(n, k, &mut rng);
        let oracle = InstanceOracle::new(&instance);
        let run = CrCompoundMerge::new(k).sort_with_backend(&oracle, backend);
        assert!(
            instance.verify(&run.partition),
            "Theorem 1 run produced a wrong partition"
        );
        let reference = k as f64 + (n as f64).log2().log2();
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            run.metrics.rounds().to_string(),
            run.metrics.comparisons().to_string(),
            fmt_float(reference),
            fmt_float(run.metrics.rounds() as f64 / reference),
        ]);
    }
    table
}

/// Runs the Theorem 2 (ER merge) round-count experiment.
pub fn theorem2_table(grid: &[(usize, usize)], seed: u64, backend: ExecutionBackend) -> Table {
    let mut table = Table::new(
        "Theorem 2 — ER rounds, O(k log n) expected",
        &[
            "n",
            "k",
            "rounds",
            "comparisons",
            "k · log2 n",
            "rounds / (k log n)",
        ],
    );
    for (i, &(n, k)) in grid.iter().enumerate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed + 100 + i as u64);
        let instance = Instance::balanced(n, k, &mut rng);
        let oracle = InstanceOracle::new(&instance);
        let run = ErMergeSort::new().sort_with_backend(&oracle, backend);
        assert!(
            instance.verify(&run.partition),
            "Theorem 2 run produced a wrong partition"
        );
        let reference = k as f64 * (n as f64).log2();
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            run.metrics.rounds().to_string(),
            run.metrics.comparisons().to_string(),
            fmt_float(reference),
            fmt_float(run.metrics.rounds() as f64 / reference),
        ]);
    }
    table
}

/// Runs the Theorem 4 (constant rounds for large classes) experiment: for each
/// `λ`, a sweep over `n` showing that rounds stay flat while `n` grows.
pub fn theorem4_table(
    lambdas: &[f64],
    sizes: &[usize],
    seed: u64,
    backend: ExecutionBackend,
) -> Table {
    let mut table = Table::new(
        "Theorem 4 — ER rounds for smallest class ≥ λn, O(1) expected",
        &[
            "lambda",
            "n",
            "k",
            "cycles d",
            "rounds",
            "comparisons",
            "comparisons/n",
        ],
    );
    for (i, &lambda) in lambdas.iter().enumerate() {
        // Use k = ⌊1/λ⌋ balanced classes so the smallest class has ≥ λn elements.
        let k = ((1.0 / lambda).floor() as usize).max(2);
        for (j, &n) in sizes.iter().enumerate() {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed + (i * 100 + j) as u64);
            let instance = Instance::balanced(n, k, &mut rng);
            let oracle = InstanceOracle::new(&instance);
            let algorithm = ErConstantRound::with_lambda(lambda, seed + j as u64);
            let run = algorithm.sort_with_backend(&oracle, backend);
            assert!(
                instance.verify(&run.partition),
                "Theorem 4 run produced a wrong partition"
            );
            table.push_row(vec![
                format!("{lambda}"),
                n.to_string(),
                k.to_string(),
                algorithm.cycles_for(lambda, n).to_string(),
                run.metrics.rounds().to_string(),
                run.metrics.comparisons().to_string(),
                fmt_float(run.metrics.comparisons() as f64 / n as f64),
            ]);
        }
    }
    table
}

/// The algorithm roster driven against the lower-bound adversaries: two
/// sequential baselines (single-comparison rounds) and one genuinely
/// round-based ER algorithm, so the tables exercise both the scalar path and
/// the round-commit protocol on whatever backend is selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryAlgorithm {
    /// [`RepresentativeScan`]: one comparison at a time against class
    /// representatives.
    RepresentativeScan,
    /// [`RoundRobin`]: the Theorem 7/8 sequential algorithm.
    RoundRobin,
    /// [`ErMergeSort`]: exclusive-read rounds, evaluated on the selected
    /// backend (pool / batch waves).
    ErMergeSort,
}

impl AdversaryAlgorithm {
    /// Every roster entry, in table order.
    pub fn all() -> [AdversaryAlgorithm; 3] {
        [
            AdversaryAlgorithm::RepresentativeScan,
            AdversaryAlgorithm::RoundRobin,
            AdversaryAlgorithm::ErMergeSort,
        ]
    }

    /// The algorithm's report name.
    pub fn name(self) -> String {
        match self {
            AdversaryAlgorithm::RepresentativeScan => RepresentativeScan::new().name(),
            AdversaryAlgorithm::RoundRobin => RoundRobin::new().name(),
            AdversaryAlgorithm::ErMergeSort => ErMergeSort::new().name(),
        }
    }

    /// Runs the algorithm against `oracle` on `backend`.
    pub fn run<O: EquivalenceOracle>(self, oracle: &O, backend: ExecutionBackend) -> EcsRun {
        match self {
            AdversaryAlgorithm::RepresentativeScan => {
                RepresentativeScan::new().sort_with_backend(oracle, backend)
            }
            AdversaryAlgorithm::RoundRobin => RoundRobin::new().sort_with_backend(oracle, backend),
            AdversaryAlgorithm::ErMergeSort => {
                ErMergeSort::new().sort_with_backend(oracle, backend)
            }
        }
    }
}

/// The shared body of the Theorem 5 / Theorem 6 lower-bound tables: every
/// `(grid point, algorithm)` cell runs as one independent job through the
/// throughput pool (a fresh adversary per cell, sessions evaluating on
/// `backend`), and the rows report the forced comparison count next to the
/// paper's bound. Results are collected in job order, so the table is
/// byte-identical for every `--jobs` / `--threads` / `--batch` selection.
pub fn lower_bound_table<A, F>(
    title: &str,
    param: &str,
    grid: &[(usize, usize)],
    algorithms: &[AdversaryAlgorithm],
    pool: &ThroughputPool,
    backend: ExecutionBackend,
    make: F,
) -> Table
where
    A: LowerBoundAdversary,
    F: Fn(usize, usize) -> A + Sync,
{
    let mut table = Table::new(
        title,
        &[
            "algorithm",
            "n",
            param,
            "forced comparisons",
            &format!("n²/(64{param}) (paper bound)"),
            &format!("n²/{param}"),
            &format!("n²/(64{param}²) (old bound)"),
            &format!("forced / (n²/{param})"),
        ],
    );
    let make = &make;
    let jobs: Vec<Job<'_, Vec<String>>> = grid
        .iter()
        .flat_map(|&(n, p)| {
            algorithms.iter().map(move |&algorithm| {
                Box::new(move || {
                    let adversary = make(n, p);
                    let run = algorithm.run(&adversary, backend);
                    assert_eq!(
                        run.partition,
                        adversary.partition(),
                        "{} (n = {n}, {param} = {p}) did not output the adversary's \
                         committed partition",
                        algorithm.name()
                    );
                    let forced = adversary.comparisons();
                    let n2_over_p = (n as u64 * n as u64) / p as u64;
                    vec![
                        algorithm.name(),
                        n.to_string(),
                        p.to_string(),
                        forced.to_string(),
                        adversary.paper_lower_bound().to_string(),
                        n2_over_p.to_string(),
                        adversary.previous_lower_bound().to_string(),
                        fmt_float(forced as f64 / n2_over_p as f64),
                    ]
                }) as Job<'_, Vec<String>>
            })
        })
        .collect();
    for row in pool.run(jobs) {
        table.push_row(row);
    }
    table
}

/// Runs the Theorem 5 lower-bound experiment: comparisons forced by the
/// equal-class-size adversary per algorithm, next to the paper's `n²/(64f)`
/// bound, the asymptotic `n²/f`, and the older `n²/(64f²)` bound it improves.
pub fn theorem5_table(
    grid: &[(usize, usize)],
    algorithms: &[AdversaryAlgorithm],
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Table {
    lower_bound_table(
        "Theorem 5 — equal class sizes: forced comparisons vs Ω(n²/f)",
        "f",
        grid,
        algorithms,
        pool,
        backend,
        EqualSizeAdversary::new,
    )
}

/// Runs the Theorem 6 lower-bound experiment (smallest class of size `ℓ`).
pub fn theorem6_table(
    grid: &[(usize, usize)],
    algorithms: &[AdversaryAlgorithm],
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Table {
    lower_bound_table(
        "Theorem 6 — smallest class: forced comparisons vs Ω(n²/ℓ)",
        "ℓ",
        grid,
        algorithms,
        pool,
        backend,
        SmallestClassAdversary::new,
    )
}

/// One entry of the Theorem 6 adaptive-search roster: the wave-parallel
/// [`SmallestClassSearch`] at a given block width, optionally with audit
/// repeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchVariant {
    /// The variant's report name.
    pub name: &'static str,
    /// Block width handed to [`SmallestClassSearch::new`].
    pub wave: usize,
    /// Whether audit repeats ([`SmallestClassSearch::with_audit`]) are on.
    pub audit: bool,
}

/// The search roster driven by [`search_bounds_table`]: two wave widths of
/// the plain block scan, plus the audit variant whose repeat-heavy rounds
/// exercise the adversaries' incremental plan cache.
pub fn search_variants() -> [SearchVariant; 3] {
    [
        SearchVariant {
            name: "block-16",
            wave: 16,
            audit: false,
        },
        SearchVariant {
            name: "block-64",
            wave: 64,
            audit: false,
        },
        SearchVariant {
            name: "block-64-audit",
            wave: 64,
            audit: true,
        },
    ]
}

/// The Theorem 6 *adaptive search* table: every `(grid point, variant)` cell
/// runs a [`SmallestClassSearch`] against a fresh [`SmallestClassAdversary`]
/// as one independent throughput-pool job, reporting the forced comparisons
/// next to the paper bound and the planner's replay-count witness. Rows are
/// collected in job order, so the table is byte-identical for every `--jobs`
/// selection.
pub fn search_bounds_table(
    grid: &[(usize, usize)],
    variants: &[SearchVariant],
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Table {
    let mut table = Table::new(
        "Theorem 6 — adaptive smallest-class search: forced comparisons vs Ω(n²/ℓ)",
        &[
            "search",
            "n",
            "ℓ",
            "forced comparisons",
            "n²/(64ℓ) (paper bound)",
            "phases",
            "found size",
            "replayed",
            "replayed / forced",
        ],
    );
    let jobs: Vec<Job<'_, Vec<String>>> = grid
        .iter()
        .flat_map(|&(n, ell)| {
            variants.iter().map(move |&variant| {
                Box::new(move || {
                    let adversary = SmallestClassAdversary::new(n, ell);
                    let mut search = SmallestClassSearch::new(variant.wave);
                    if variant.audit {
                        search = search.with_audit();
                    }
                    let report = search.run(&adversary, backend);
                    assert_eq!(
                        report.partition,
                        adversary.partition(),
                        "{} (n = {n}, ℓ = {ell}) did not derive the adversary's \
                         committed partition",
                        variant.name
                    );
                    assert!(
                        adversary.smallest_class_pinned(),
                        "{} (n = {n}, ℓ = {ell}) finished without pinning the class",
                        variant.name
                    );
                    let forced = adversary.comparisons();
                    assert!(
                        forced >= adversary.paper_lower_bound(),
                        "{} (n = {n}, ℓ = {ell}): {forced} comparisons below the bound {}",
                        variant.name,
                        adversary.paper_lower_bound()
                    );
                    let stats = adversary.plan_stats();
                    vec![
                        variant.name.to_string(),
                        n.to_string(),
                        ell.to_string(),
                        forced.to_string(),
                        adversary.paper_lower_bound().to_string(),
                        report.phases.to_string(),
                        report.class_size.to_string(),
                        stats.replayed.to_string(),
                        fmt_float(stats.replayed as f64 / forced as f64),
                    ]
                }) as Job<'_, Vec<String>>
            })
        })
        .collect();
    for row in pool.run(jobs) {
        table.push_row(row);
    }
    table
}

/// Renders a Theorem 7 dominance experiment result.
///
/// The bound of Theorem 7 covers the cross-class tests (the `2·min(Y_i,Y_j)`
/// lemma sums over distinct class pairs); within-class contractions add at
/// most `n` more, which is how Theorem 8 concludes `O(n)` total work. Both
/// checks are shown.
pub fn dominance_table(results: &[DominanceResult], n: usize) -> Table {
    let mut table = Table::new(
        format!("Theorem 7 — round-robin comparisons vs 2·Σ D_N(n) bound (n = {n})"),
        &[
            "distribution",
            "cross-class mean",
            "bound mean (2nE[D_N(n)])",
            "cross ≤ bound",
            "total mean",
            "total ≤ bound + n",
        ],
    );
    for result in results {
        table.push_row(vec![
            result.label.clone(),
            fmt_float(result.measured_cross_mean()),
            fmt_float(result.bound_mean),
            format!("{:.0}%", 100.0 * result.fraction_cross_below_bound()),
            fmt_float(result.measured_mean()),
            format!("{:.0}%", 100.0 * result.fraction_total_below_bound_plus_n()),
        ]);
    }
    table
}

/// Compares all algorithms (parallel and sequential) on one instance; used by
/// the `reproduce_all` summary and the quickstart-style reporting.
pub fn algorithm_comparison_table(
    n: usize,
    k: usize,
    seed: u64,
    backend: ExecutionBackend,
) -> Table {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let instance = Instance::balanced(n, k, &mut rng);
    let oracle = InstanceOracle::new(&instance);
    let mut table = Table::new(
        format!("Algorithm comparison on n = {n}, k = {k} (balanced classes)"),
        &["algorithm", "mode", "rounds", "comparisons", "correct"],
    );
    let lambda = (1.0 / k as f64).min(0.4);

    let mut push = |name: String, mode: &str, run: ecs_core::EcsRun| {
        table.push_row(vec![
            name,
            mode.to_string(),
            run.metrics.rounds().to_string(),
            run.metrics.comparisons().to_string(),
            instance.verify(&run.partition).to_string(),
        ]);
    };

    let alg = CrCompoundMerge::new(k);
    push(alg.name(), "CR", alg.sort_with_backend(&oracle, backend));
    let alg = ErMergeSort::new();
    push(alg.name(), "ER", alg.sort_with_backend(&oracle, backend));
    let alg = ErConstantRound::with_lambda(lambda, seed);
    push(alg.name(), "ER", alg.sort_with_backend(&oracle, backend));
    let alg = RoundRobin::new();
    push(
        alg.name(),
        "sequential",
        alg.sort_with_backend(&oracle, backend),
    );
    let alg = RepresentativeScan::new();
    push(
        alg.name(),
        "sequential",
        alg.sort_with_backend(&oracle, backend),
    );

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_analysis::{figure5_series, Figure5Config};
    use ecs_distributions::class_distribution::AnyDistribution;

    #[test]
    fn figure5_table_has_one_row_per_size() {
        let series = figure5_series(&Figure5Config {
            distribution: AnyDistribution::uniform(10),
            sizes: vec![200, 400],
            trials: 2,
            seed: 1,
        });
        let table = figure5_table(&series);
        assert_eq!(table.num_rows(), 2);
        assert!(table.title().contains("uniform"));
        assert!(table.title().contains("fit"));
    }

    #[test]
    fn theorem1_and_2_tables_run_small_grids() {
        let grid = [(500usize, 2usize), (1_000, 4)];
        let t1 = theorem1_table(&grid, 3, ExecutionBackend::Sequential);
        let t2 = theorem2_table(&grid, 3, ExecutionBackend::Sequential);
        assert_eq!(t1.num_rows(), 2);
        assert_eq!(t2.num_rows(), 2);
    }

    #[test]
    fn theorem4_table_runs() {
        let table = theorem4_table(&[0.4, 0.3], &[500, 1_000], 5, ExecutionBackend::Sequential);
        assert_eq!(table.num_rows(), 4);
    }

    #[test]
    fn lower_bound_tables_run_one_row_per_grid_point_and_algorithm() {
        let pool = ThroughputPool::from_jobs(1);
        let algorithms = AdversaryAlgorithm::all();
        let t5 = theorem5_table(
            &[(128, 4), (128, 8)],
            &algorithms,
            &pool,
            ExecutionBackend::Sequential,
        );
        assert_eq!(t5.num_rows(), 2 * algorithms.len());
        let md = t5.to_markdown();
        assert!(md.contains("representative-scan"));
        assert!(md.contains("round-robin"));
        assert!(md.contains("er-merge"));
        let t6 = theorem6_table(
            &[(128, 4)],
            &[AdversaryAlgorithm::RepresentativeScan],
            &pool,
            ExecutionBackend::Sequential,
        );
        assert_eq!(t6.num_rows(), 1);
    }

    #[test]
    fn lower_bound_tables_are_identical_across_pools_and_backends() {
        // The round-commit protocol makes the adversaries deterministic on
        // every backend, and the throughput pool collects results in job
        // order — so the rendered table must be byte-identical however the
        // work is executed.
        let grid = [(96usize, 4usize), (96, 8)];
        let algorithms = AdversaryAlgorithm::all();
        let reference = theorem5_table(
            &grid,
            &algorithms,
            &ThroughputPool::from_jobs(1),
            ExecutionBackend::Sequential,
        )
        .to_markdown();
        for (pool, backend) in [
            (ThroughputPool::from_jobs(4), ExecutionBackend::Sequential),
            (ThroughputPool::from_jobs(1), ExecutionBackend::batched(16)),
            (
                ThroughputPool::from_jobs(2),
                ExecutionBackend::Threaded {
                    threads: 2,
                    threshold: 1,
                },
            ),
        ] {
            assert_eq!(
                theorem5_table(&grid, &algorithms, &pool, backend).to_markdown(),
                reference,
                "lower-bound table diverged under pool {} / backend {}",
                pool.label(),
                backend.label()
            );
        }
    }

    #[test]
    fn search_table_runs_and_is_identical_across_pools() {
        let grid = [(96usize, 4usize), (120, 5)];
        let variants = [
            SearchVariant {
                name: "block-8",
                wave: 8,
                audit: false,
            },
            SearchVariant {
                name: "block-8-audit",
                wave: 8,
                audit: true,
            },
        ];
        let reference = search_bounds_table(
            &grid,
            &variants,
            &ThroughputPool::from_jobs(1),
            ExecutionBackend::Sequential,
        );
        assert_eq!(reference.num_rows(), grid.len() * variants.len());
        let md = reference.to_markdown();
        assert!(md.contains("block-8-audit"));
        let pooled = search_bounds_table(
            &grid,
            &variants,
            &ThroughputPool::from_jobs(3),
            ExecutionBackend::Sequential,
        );
        assert_eq!(
            pooled.to_markdown(),
            md,
            "search table diverged under the throughput pool"
        );
    }

    #[test]
    fn audit_variant_reuses_the_plan_cache_in_the_table() {
        // The audit rows must show strictly fewer replays than served
        // comparisons — the incremental-planning witness, straight from the
        // rendered table. (The grid point must give the block-64 scan at
        // least three phases: phase 1 plans an intra-block pair fresh, phase
        // 2's audit revalidates it with a pure replay, and only from phase 3
        // on is it served without any replay.)
        let table = search_bounds_table(
            &[(192, 8)],
            &search_variants(),
            &ThroughputPool::from_jobs(1),
            ExecutionBackend::Sequential,
        );
        let md = table.to_markdown();
        let audit_row: Vec<&str> = md
            .lines()
            .find(|l| l.contains("block-64-audit"))
            .expect("audit row present")
            .split('|')
            .map(str::trim)
            .collect();
        let forced: u64 = audit_row[4].parse().expect("forced column");
        let replayed: u64 = audit_row[8].parse().expect("replayed column");
        assert!(
            replayed < forced,
            "audit workload should replay fewer entries than it serves: {md}"
        );
    }

    #[test]
    fn adversary_algorithm_roster_is_complete_and_named() {
        let names: Vec<String> = AdversaryAlgorithm::all().iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 3);
        let mut dedup = names.clone();
        dedup.dedup();
        assert_eq!(names, dedup, "roster names must be distinct");
    }

    #[test]
    fn tables_are_identical_across_backends() {
        let grid = [(2_000usize, 3usize)];
        let seq = theorem1_table(&grid, 3, ExecutionBackend::Sequential);
        let thr = theorem1_table(
            &grid,
            3,
            ExecutionBackend::Threaded {
                threads: 4,
                threshold: 1,
            },
        );
        assert_eq!(
            seq.to_markdown(),
            thr.to_markdown(),
            "threaded evaluation must not change any reported number"
        );
    }

    #[test]
    fn panel_series_match_serial_per_config_runs() {
        let pool = ThroughputPool::from_jobs(4);
        let pooled =
            figure5_panel_series("uniform", 100, 2, 2016, &pool, ExecutionBackend::Sequential);
        assert!(!pooled.is_empty());
        for (config, series) in &pooled {
            let reference = figure5_series(config);
            for (a, b) in series.points.iter().zip(&reference.points) {
                assert_eq!(
                    a.comparisons, b.comparisons,
                    "pooled panel diverged from the serial loop"
                );
            }
        }
        // `--batch` must not change any measurement either.
        let batched = figure5_panel_series(
            "uniform",
            100,
            2,
            2016,
            &pool,
            ExecutionBackend::batched(64),
        );
        for ((_, a), (_, b)) in batched.iter().zip(&pooled) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(
                    pa.comparisons, pb.comparisons,
                    "batched panel diverged from the sequential-backend panel"
                );
            }
        }
    }

    #[test]
    fn dominance_sweep_matches_serial_per_config_runs() {
        use ecs_analysis::dominance_experiment;
        let pool = ThroughputPool::from_jobs(2);
        let distributions = vec![AnyDistribution::uniform(10), AnyDistribution::zeta(2.5)];
        let pooled = dominance_sweep(
            distributions.clone(),
            500,
            3,
            7,
            &pool,
            ExecutionBackend::Sequential,
        );
        for (distribution, result) in distributions.into_iter().zip(&pooled) {
            let reference = dominance_experiment(&DominanceConfig {
                distribution,
                n: 500,
                trials: 3,
                seed: 7,
            });
            assert_eq!(result.measured_total, reference.measured_total);
            assert_eq!(result.measured_cross, reference.measured_cross);
        }
    }

    #[test]
    fn comparison_table_lists_all_algorithms() {
        let table = algorithm_comparison_table(300, 3, 9, ExecutionBackend::Sequential);
        assert_eq!(table.num_rows(), 5);
        let md = table.to_markdown();
        assert!(md.contains("cr-compound"));
        assert!(md.contains("round-robin"));
        assert!(
            !md.contains("false"),
            "every algorithm must classify correctly:\n{md}"
        );
    }
}
