//! Measurement runners shared by the reproduction binaries.

use crate::paper;
use ecs_adversary::{EqualSizeAdversary, SmallestClassAdversary};
use ecs_analysis::report::fmt_float;
use ecs_analysis::{
    dominance_grid_with_backend, figure5_grid_with_backend, DominanceConfig, DominanceResult,
    Figure5Config, Figure5Series, Table,
};
use ecs_core::{
    CrCompoundMerge, EcsAlgorithm, ErConstantRound, ErMergeSort, RepresentativeScan, RoundRobin,
};
use ecs_distributions::class_distribution::AnyDistribution;
use ecs_model::{ExecutionBackend, Instance, InstanceOracle, ThroughputPool};
use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

/// Runs every Figure 5 configuration of one panel through the throughput
/// pool — all `(distribution, size, trial)` jobs of the panel are queued as
/// one workload, one fairness session per distribution — and returns
/// `(config, series)` pairs in the panel's order. Each trial's session
/// evaluates on `backend` (e.g. the `--batch` / `--threads` CLI selection);
/// results are bit-identical to the serial per-config loop on every backend.
pub fn figure5_panel_series(
    panel: &str,
    scale: usize,
    trials: usize,
    seed: u64,
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Vec<(Figure5Config, Figure5Series)> {
    let configs = paper::figure5_configs(panel, scale, trials, seed);
    let series = figure5_grid_with_backend(&configs, pool, backend);
    configs.into_iter().zip(series).collect()
}

/// Runs a Theorem 7 dominance sweep over several distributions through the
/// throughput pool (one fairness session per distribution), bit-identical to
/// running [`ecs_analysis::dominance_experiment`] per distribution. Trial
/// sessions evaluate on `backend`.
pub fn dominance_sweep(
    distributions: Vec<AnyDistribution>,
    n: usize,
    trials: usize,
    seed: u64,
    pool: &ThroughputPool,
    backend: ExecutionBackend,
) -> Vec<DominanceResult> {
    let configs: Vec<DominanceConfig> = distributions
        .into_iter()
        .map(|distribution| DominanceConfig {
            distribution,
            n,
            trials,
            seed,
        })
        .collect();
    dominance_grid_with_backend(&configs, pool, backend)
}

/// Renders one Figure 5 series as a table with per-size statistics and the
/// best-fit line (when the paper predicts one).
pub fn figure5_table(series: &Figure5Series) -> Table {
    let fit_label = match &series.fit {
        Some(fit) => format!(
            "fit: comparisons ≈ {}·n + {} (R² = {:.5})",
            fmt_float(fit.slope),
            fmt_float(fit.intercept),
            fit.r_squared
        ),
        None => "no linear fit (paper proves no linear bound for this parameter)".to_string(),
    };
    let mut table = Table::new(
        format!("Figure 5 — {} — {}", series.label, fit_label),
        &[
            "n",
            "mean comparisons",
            "std dev",
            "min",
            "max",
            "comparisons/n",
        ],
    );
    for point in &series.points {
        table.push_row(vec![
            point.n.to_string(),
            fmt_float(point.summary.mean()),
            fmt_float(point.summary.std_dev()),
            fmt_float(point.summary.min()),
            fmt_float(point.summary.max()),
            fmt_float(point.summary.mean() / point.n as f64),
        ]);
    }
    table
}

/// Runs the Theorem 1 (CR compound merge) round-count experiment over a grid
/// of `(n, k)` pairs.
pub fn theorem1_table(grid: &[(usize, usize)], seed: u64, backend: ExecutionBackend) -> Table {
    let mut table = Table::new(
        "Theorem 1 — CR rounds, O(k + log log n) expected",
        &[
            "n",
            "k",
            "rounds",
            "comparisons",
            "k + lglg n",
            "rounds / (k + lglg n)",
        ],
    );
    for (i, &(n, k)) in grid.iter().enumerate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed + i as u64);
        let instance = Instance::balanced(n, k, &mut rng);
        let oracle = InstanceOracle::new(&instance);
        let run = CrCompoundMerge::new(k).sort_with_backend(&oracle, backend);
        assert!(
            instance.verify(&run.partition),
            "Theorem 1 run produced a wrong partition"
        );
        let reference = k as f64 + (n as f64).log2().log2();
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            run.metrics.rounds().to_string(),
            run.metrics.comparisons().to_string(),
            fmt_float(reference),
            fmt_float(run.metrics.rounds() as f64 / reference),
        ]);
    }
    table
}

/// Runs the Theorem 2 (ER merge) round-count experiment.
pub fn theorem2_table(grid: &[(usize, usize)], seed: u64, backend: ExecutionBackend) -> Table {
    let mut table = Table::new(
        "Theorem 2 — ER rounds, O(k log n) expected",
        &[
            "n",
            "k",
            "rounds",
            "comparisons",
            "k · log2 n",
            "rounds / (k log n)",
        ],
    );
    for (i, &(n, k)) in grid.iter().enumerate() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed + 100 + i as u64);
        let instance = Instance::balanced(n, k, &mut rng);
        let oracle = InstanceOracle::new(&instance);
        let run = ErMergeSort::new().sort_with_backend(&oracle, backend);
        assert!(
            instance.verify(&run.partition),
            "Theorem 2 run produced a wrong partition"
        );
        let reference = k as f64 * (n as f64).log2();
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            run.metrics.rounds().to_string(),
            run.metrics.comparisons().to_string(),
            fmt_float(reference),
            fmt_float(run.metrics.rounds() as f64 / reference),
        ]);
    }
    table
}

/// Runs the Theorem 4 (constant rounds for large classes) experiment: for each
/// `λ`, a sweep over `n` showing that rounds stay flat while `n` grows.
pub fn theorem4_table(
    lambdas: &[f64],
    sizes: &[usize],
    seed: u64,
    backend: ExecutionBackend,
) -> Table {
    let mut table = Table::new(
        "Theorem 4 — ER rounds for smallest class ≥ λn, O(1) expected",
        &[
            "lambda",
            "n",
            "k",
            "cycles d",
            "rounds",
            "comparisons",
            "comparisons/n",
        ],
    );
    for (i, &lambda) in lambdas.iter().enumerate() {
        // Use k = ⌊1/λ⌋ balanced classes so the smallest class has ≥ λn elements.
        let k = ((1.0 / lambda).floor() as usize).max(2);
        for (j, &n) in sizes.iter().enumerate() {
            let mut rng = Xoshiro256StarStar::seed_from_u64(seed + (i * 100 + j) as u64);
            let instance = Instance::balanced(n, k, &mut rng);
            let oracle = InstanceOracle::new(&instance);
            let algorithm = ErConstantRound::with_lambda(lambda, seed + j as u64);
            let run = algorithm.sort_with_backend(&oracle, backend);
            assert!(
                instance.verify(&run.partition),
                "Theorem 4 run produced a wrong partition"
            );
            table.push_row(vec![
                format!("{lambda}"),
                n.to_string(),
                k.to_string(),
                algorithm.cycles_for(lambda, n).to_string(),
                run.metrics.rounds().to_string(),
                run.metrics.comparisons().to_string(),
                fmt_float(run.metrics.comparisons() as f64 / n as f64),
            ]);
        }
    }
    table
}

/// Runs the Theorem 5 lower-bound experiment: comparisons forced by the
/// equal-class-size adversary, next to the paper's `n²/(64f)` bound, the
/// asymptotic `n²/f`, and the older `n²/(64f²)` bound it improves.
pub fn theorem5_table(grid: &[(usize, usize)]) -> Table {
    let mut table = Table::new(
        "Theorem 5 — equal class sizes: forced comparisons vs Ω(n²/f)",
        &[
            "n",
            "f",
            "forced comparisons",
            "n²/(64f) (paper bound)",
            "n²/f",
            "n²/(64f²) (old bound)",
            "forced / (n²/f)",
        ],
    );
    for &(n, f) in grid {
        let adversary = EqualSizeAdversary::new(n, f);
        let run = RepresentativeScan::new().sort(&adversary);
        assert_eq!(run.partition, adversary.partition());
        let forced = adversary.comparisons();
        let n2_over_f = (n as u64 * n as u64) / f as u64;
        table.push_row(vec![
            n.to_string(),
            f.to_string(),
            forced.to_string(),
            adversary.paper_lower_bound().to_string(),
            n2_over_f.to_string(),
            adversary.previous_lower_bound().to_string(),
            fmt_float(forced as f64 / n2_over_f as f64),
        ]);
    }
    table
}

/// Runs the Theorem 6 lower-bound experiment (smallest class of size `ℓ`).
pub fn theorem6_table(grid: &[(usize, usize)]) -> Table {
    let mut table = Table::new(
        "Theorem 6 — smallest class: forced comparisons vs Ω(n²/ℓ)",
        &[
            "n",
            "ℓ",
            "forced comparisons",
            "n²/(64ℓ) (paper bound)",
            "n²/ℓ",
            "n²/(64ℓ²) (old bound)",
            "forced / (n²/ℓ)",
        ],
    );
    for &(n, ell) in grid {
        let adversary = SmallestClassAdversary::new(n, ell);
        let run = RepresentativeScan::new().sort(&adversary);
        assert_eq!(run.partition, adversary.partition());
        let forced = adversary.comparisons();
        let n2_over_l = (n as u64 * n as u64) / ell as u64;
        table.push_row(vec![
            n.to_string(),
            ell.to_string(),
            forced.to_string(),
            adversary.paper_lower_bound().to_string(),
            n2_over_l.to_string(),
            adversary.previous_lower_bound().to_string(),
            fmt_float(forced as f64 / n2_over_l as f64),
        ]);
    }
    table
}

/// Renders a Theorem 7 dominance experiment result.
///
/// The bound of Theorem 7 covers the cross-class tests (the `2·min(Y_i,Y_j)`
/// lemma sums over distinct class pairs); within-class contractions add at
/// most `n` more, which is how Theorem 8 concludes `O(n)` total work. Both
/// checks are shown.
pub fn dominance_table(results: &[DominanceResult], n: usize) -> Table {
    let mut table = Table::new(
        format!("Theorem 7 — round-robin comparisons vs 2·Σ D_N(n) bound (n = {n})"),
        &[
            "distribution",
            "cross-class mean",
            "bound mean (2nE[D_N(n)])",
            "cross ≤ bound",
            "total mean",
            "total ≤ bound + n",
        ],
    );
    for result in results {
        table.push_row(vec![
            result.label.clone(),
            fmt_float(result.measured_cross_mean()),
            fmt_float(result.bound_mean),
            format!("{:.0}%", 100.0 * result.fraction_cross_below_bound()),
            fmt_float(result.measured_mean()),
            format!("{:.0}%", 100.0 * result.fraction_total_below_bound_plus_n()),
        ]);
    }
    table
}

/// Compares all algorithms (parallel and sequential) on one instance; used by
/// the `reproduce_all` summary and the quickstart-style reporting.
pub fn algorithm_comparison_table(
    n: usize,
    k: usize,
    seed: u64,
    backend: ExecutionBackend,
) -> Table {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let instance = Instance::balanced(n, k, &mut rng);
    let oracle = InstanceOracle::new(&instance);
    let mut table = Table::new(
        format!("Algorithm comparison on n = {n}, k = {k} (balanced classes)"),
        &["algorithm", "mode", "rounds", "comparisons", "correct"],
    );
    let lambda = (1.0 / k as f64).min(0.4);

    let mut push = |name: String, mode: &str, run: ecs_core::EcsRun| {
        table.push_row(vec![
            name,
            mode.to_string(),
            run.metrics.rounds().to_string(),
            run.metrics.comparisons().to_string(),
            instance.verify(&run.partition).to_string(),
        ]);
    };

    let alg = CrCompoundMerge::new(k);
    push(alg.name(), "CR", alg.sort_with_backend(&oracle, backend));
    let alg = ErMergeSort::new();
    push(alg.name(), "ER", alg.sort_with_backend(&oracle, backend));
    let alg = ErConstantRound::with_lambda(lambda, seed);
    push(alg.name(), "ER", alg.sort_with_backend(&oracle, backend));
    let alg = RoundRobin::new();
    push(
        alg.name(),
        "sequential",
        alg.sort_with_backend(&oracle, backend),
    );
    let alg = RepresentativeScan::new();
    push(
        alg.name(),
        "sequential",
        alg.sort_with_backend(&oracle, backend),
    );

    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_analysis::{figure5_series, Figure5Config};
    use ecs_distributions::class_distribution::AnyDistribution;

    #[test]
    fn figure5_table_has_one_row_per_size() {
        let series = figure5_series(&Figure5Config {
            distribution: AnyDistribution::uniform(10),
            sizes: vec![200, 400],
            trials: 2,
            seed: 1,
        });
        let table = figure5_table(&series);
        assert_eq!(table.num_rows(), 2);
        assert!(table.title().contains("uniform"));
        assert!(table.title().contains("fit"));
    }

    #[test]
    fn theorem1_and_2_tables_run_small_grids() {
        let grid = [(500usize, 2usize), (1_000, 4)];
        let t1 = theorem1_table(&grid, 3, ExecutionBackend::Sequential);
        let t2 = theorem2_table(&grid, 3, ExecutionBackend::Sequential);
        assert_eq!(t1.num_rows(), 2);
        assert_eq!(t2.num_rows(), 2);
    }

    #[test]
    fn theorem4_table_runs() {
        let table = theorem4_table(&[0.4, 0.3], &[500, 1_000], 5, ExecutionBackend::Sequential);
        assert_eq!(table.num_rows(), 4);
    }

    #[test]
    fn lower_bound_tables_run() {
        let t5 = theorem5_table(&[(128, 4), (128, 8)]);
        assert_eq!(t5.num_rows(), 2);
        let t6 = theorem6_table(&[(128, 4)]);
        assert_eq!(t6.num_rows(), 1);
    }

    #[test]
    fn tables_are_identical_across_backends() {
        let grid = [(2_000usize, 3usize)];
        let seq = theorem1_table(&grid, 3, ExecutionBackend::Sequential);
        let thr = theorem1_table(
            &grid,
            3,
            ExecutionBackend::Threaded {
                threads: 4,
                threshold: 1,
            },
        );
        assert_eq!(
            seq.to_markdown(),
            thr.to_markdown(),
            "threaded evaluation must not change any reported number"
        );
    }

    #[test]
    fn panel_series_match_serial_per_config_runs() {
        let pool = ThroughputPool::from_jobs(4);
        let pooled =
            figure5_panel_series("uniform", 100, 2, 2016, &pool, ExecutionBackend::Sequential);
        assert!(!pooled.is_empty());
        for (config, series) in &pooled {
            let reference = figure5_series(config);
            for (a, b) in series.points.iter().zip(&reference.points) {
                assert_eq!(
                    a.comparisons, b.comparisons,
                    "pooled panel diverged from the serial loop"
                );
            }
        }
        // `--batch` must not change any measurement either.
        let batched = figure5_panel_series(
            "uniform",
            100,
            2,
            2016,
            &pool,
            ExecutionBackend::batched(64),
        );
        for ((_, a), (_, b)) in batched.iter().zip(&pooled) {
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(
                    pa.comparisons, pb.comparisons,
                    "batched panel diverged from the sequential-backend panel"
                );
            }
        }
    }

    #[test]
    fn dominance_sweep_matches_serial_per_config_runs() {
        use ecs_analysis::dominance_experiment;
        let pool = ThroughputPool::from_jobs(2);
        let distributions = vec![AnyDistribution::uniform(10), AnyDistribution::zeta(2.5)];
        let pooled = dominance_sweep(
            distributions.clone(),
            500,
            3,
            7,
            &pool,
            ExecutionBackend::Sequential,
        );
        for (distribution, result) in distributions.into_iter().zip(&pooled) {
            let reference = dominance_experiment(&DominanceConfig {
                distribution,
                n: 500,
                trials: 3,
                seed: 7,
            });
            assert_eq!(result.measured_total, reference.measured_total);
            assert_eq!(result.measured_cross, reference.measured_cross);
        }
    }

    #[test]
    fn comparison_table_lists_all_algorithms() {
        let table = algorithm_comparison_table(300, 3, 9, ExecutionBackend::Sequential);
        assert_eq!(table.num_rows(), 5);
        let md = table.to_markdown();
        assert!(md.contains("cr-compound"));
        assert!(md.contains("round-robin"));
        assert!(
            !md.contains("false"),
            "every algorithm must classify correctly:\n{md}"
        );
    }
}
