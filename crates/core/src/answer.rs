//! Partial answers: the unit of work of the merge-based parallel algorithms.
//!
//! The paper's Theorem 1/2 algorithms maintain a list of *answers*, each of
//! which is a fully-solved equivalence class sorting of a subset of the
//! elements: the subset is partitioned into classes that are known to be
//! pairwise different. Two answers are merged by comparing one representative
//! of every class of the first with one representative of every class of the
//! second — at most `k²` comparisons — and unioning the classes that match.

/// A solved sub-instance: a subset of elements partitioned into classes that
/// are mutually known to be different.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Answer {
    classes: Vec<Vec<usize>>,
}

impl Answer {
    /// An answer covering a single element.
    pub fn singleton(element: usize) -> Self {
        Self {
            classes: vec![vec![element]],
        }
    }

    /// Builds an answer from explicit classes.
    ///
    /// # Panics
    ///
    /// Panics if any class is empty or an element appears twice.
    pub fn from_classes(classes: Vec<Vec<usize>>) -> Self {
        let mut seen = std::collections::HashSet::new();
        for class in &classes {
            assert!(!class.is_empty(), "answers may not contain empty classes");
            for &e in class {
                assert!(seen.insert(e), "element {e} appears in two classes");
            }
        }
        Self { classes }
    }

    /// The classes of this answer.
    pub fn classes(&self) -> &[Vec<usize>] {
        &self.classes
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of elements covered.
    pub fn num_elements(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// The representative (first element) of class `i`.
    pub fn representative(&self, i: usize) -> usize {
        self.classes[i][0]
    }

    /// All representatives, in class order.
    pub fn representatives(&self) -> Vec<usize> {
        self.classes.iter().map(|c| c[0]).collect()
    }

    /// The comparison pairs needed to merge `self` with `other`: one
    /// representative of every class of `self` against one representative of
    /// every class of `other` (`num_classes × other.num_classes` pairs, the
    /// `≤ k²` tests of the paper's merge step).
    pub fn merge_comparisons(&self, other: &Answer) -> Vec<(usize, usize)> {
        let mut pairs = Vec::with_capacity(self.num_classes() * other.num_classes());
        for a in 0..self.num_classes() {
            for b in 0..other.num_classes() {
                pairs.push((self.representative(a), other.representative(b)));
            }
        }
        pairs
    }

    /// Combines `self` and `other` given the answers to
    /// [`Answer::merge_comparisons`] (in the same order).
    ///
    /// Classes that matched are unioned; everything else is carried over. The
    /// result is a valid answer for the union of the two element sets because
    /// each class of `other` can match at most one class of `self` (classes
    /// within an answer are pairwise different).
    ///
    /// # Panics
    ///
    /// Panics if `results` has the wrong length or claims that one class of
    /// `other` matches two different classes of `self` (an inconsistent
    /// oracle).
    pub fn merge_with(&self, other: &Answer, results: &[bool]) -> Answer {
        assert_eq!(
            results.len(),
            self.num_classes() * other.num_classes(),
            "merge results length mismatch"
        );
        let mut merged: Vec<Vec<usize>> = self.classes.clone();
        // For each class of `other`, find which class of `self` it matched.
        for b in 0..other.num_classes() {
            let mut target: Option<usize> = None;
            for a in 0..self.num_classes() {
                if results[a * other.num_classes() + b] {
                    assert!(
                        target.is_none(),
                        "oracle inconsistency: class matched two distinct classes"
                    );
                    target = Some(a);
                }
            }
            match target {
                Some(a) => merged[a].extend_from_slice(&other.classes[b]),
                None => merged.push(other.classes[b].clone()),
            }
        }
        Answer { classes: merged }
    }

    /// Merges many answers at once given the full pairwise comparison results
    /// between class representatives, provided as a closure
    /// `same(answer_i, class_a, answer_j, class_b) -> bool` for `i < j`.
    ///
    /// Used by the second phase of Theorem 1, where a group of `c` answers is
    /// merged in a single round using `C(c, 2)·k²` comparisons.
    pub fn merge_group<F>(group: &[Answer], same: F) -> Answer
    where
        F: Fn(usize, usize, usize, usize) -> bool,
    {
        if group.is_empty() {
            return Answer {
                classes: Vec::new(),
            };
        }
        // Union-find over (answer index, class index) pairs, flattened.
        let offsets: Vec<usize> = group
            .iter()
            .scan(0usize, |acc, a| {
                let start = *acc;
                *acc += a.num_classes();
                Some(start)
            })
            .collect();
        let total: usize = group.iter().map(|a| a.num_classes()).sum();
        let mut uf = ecs_graph::UnionFind::new(total);
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                for a in 0..group[i].num_classes() {
                    for b in 0..group[j].num_classes() {
                        if same(i, a, j, b) {
                            uf.union(offsets[i] + a, offsets[j] + b);
                        }
                    }
                }
            }
        }
        let mut classes_by_root: std::collections::HashMap<usize, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, answer) in group.iter().enumerate() {
            for (c, class) in answer.classes.iter().enumerate() {
                let root = uf.find(offsets[i] + c);
                classes_by_root
                    .entry(root)
                    .or_default()
                    .extend_from_slice(class);
            }
        }
        let mut classes: Vec<Vec<usize>> = classes_by_root.into_values().collect();
        classes.sort_by_key(|c| c[0]);
        Answer { classes }
    }

    /// Converts a list of answers that jointly cover `0..n` into per-element
    /// labels (class indices are arbitrary but distinct across answers).
    pub fn to_labels(answers: &[Answer], n: usize) -> Vec<usize> {
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        for answer in answers {
            for class in &answer.classes {
                for &e in class {
                    labels[e] = next;
                }
                next += 1;
            }
        }
        assert!(
            labels.iter().all(|&l| l != usize::MAX),
            "answers do not cover every element"
        );
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singleton_answer() {
        let a = Answer::singleton(7);
        assert_eq!(a.num_classes(), 1);
        assert_eq!(a.num_elements(), 1);
        assert_eq!(a.representative(0), 7);
    }

    #[test]
    #[should_panic(expected = "two classes")]
    fn duplicate_elements_rejected() {
        let _ = Answer::from_classes(vec![vec![0, 1], vec![1]]);
    }

    #[test]
    #[should_panic(expected = "empty classes")]
    fn empty_class_rejected() {
        let _ = Answer::from_classes(vec![vec![0], vec![]]);
    }

    #[test]
    fn merge_comparisons_is_cross_product_of_representatives() {
        let a = Answer::from_classes(vec![vec![0, 1], vec![2]]);
        let b = Answer::from_classes(vec![vec![3], vec![4, 5]]);
        let pairs = a.merge_comparisons(&b);
        assert_eq!(pairs, vec![(0, 3), (0, 4), (2, 3), (2, 4)]);
    }

    #[test]
    fn merge_with_unions_matching_classes() {
        // Ground truth: {0,1,4,5} and {2,3}.
        let a = Answer::from_classes(vec![vec![0, 1], vec![2]]);
        let b = Answer::from_classes(vec![vec![3], vec![4, 5]]);
        // results for pairs (0,3),(0,4),(2,3),(2,4)
        let results = vec![false, true, true, false];
        let merged = a.merge_with(&b, &results);
        assert_eq!(merged.num_classes(), 2);
        assert_eq!(merged.num_elements(), 6);
        let classes = merged.classes();
        assert!(classes.contains(&vec![0, 1, 4, 5]));
        assert!(classes.contains(&vec![2, 3]));
    }

    #[test]
    fn merge_with_all_different_concatenates() {
        let a = Answer::from_classes(vec![vec![0]]);
        let b = Answer::from_classes(vec![vec![1]]);
        let merged = a.merge_with(&b, &[false]);
        assert_eq!(merged.num_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn merge_with_wrong_result_count_panics() {
        let a = Answer::singleton(0);
        let b = Answer::singleton(1);
        let _ = a.merge_with(&b, &[true, false]);
    }

    #[test]
    #[should_panic(expected = "inconsistency")]
    fn merge_with_inconsistent_oracle_panics() {
        let a = Answer::from_classes(vec![vec![0], vec![1]]);
        let b = Answer::from_classes(vec![vec![2]]);
        // Claims 2 equals both 0 and 1, which are known different.
        let _ = a.merge_with(&b, &[true, true]);
    }

    #[test]
    fn merge_group_with_truth_closure() {
        // Truth labels for elements 0..6.
        let truth = [0usize, 0, 1, 1, 2, 0];
        let answers = vec![
            Answer::from_classes(vec![vec![0, 1], vec![2]]),
            Answer::from_classes(vec![vec![3], vec![4]]),
            Answer::from_classes(vec![vec![5]]),
        ];
        let merged = Answer::merge_group(&answers, |i, a, j, b| {
            let ra = answers[i].representative(a);
            let rb = answers[j].representative(b);
            truth[ra] == truth[rb]
        });
        assert_eq!(merged.num_elements(), 6);
        assert_eq!(merged.num_classes(), 3);
        let classes = merged.classes();
        assert!(classes.contains(&vec![0, 1, 5]));
        assert!(classes.contains(&vec![2, 3]));
        assert!(classes.contains(&vec![4]));
    }

    #[test]
    fn merge_group_of_nothing_is_empty() {
        let merged = Answer::merge_group(&[], |_, _, _, _| false);
        assert_eq!(merged.num_classes(), 0);
        assert_eq!(merged.num_elements(), 0);
    }

    #[test]
    fn to_labels_covers_everything() {
        let answers = vec![
            Answer::from_classes(vec![vec![0, 2], vec![4]]),
            Answer::from_classes(vec![vec![1, 3]]),
        ];
        let labels = Answer::to_labels(&answers, 5);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[1], labels[3]);
        assert_ne!(labels[0], labels[4]);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    #[should_panic(expected = "cover every element")]
    fn to_labels_detects_missing_elements() {
        let answers = vec![Answer::singleton(0)];
        let _ = Answer::to_labels(&answers, 2);
    }

    proptest! {
        #[test]
        fn pairwise_merge_matches_truth(
            labels in proptest::collection::vec(0u8..4, 2..40),
            split in 1usize..39,
        ) {
            // Split elements into two halves, build the true per-half answers,
            // merge them with truth-derived results, and check the result is
            // the true partition of the union.
            let n = labels.len();
            let split = split % (n - 1) + 1;
            let build = |range: std::ops::Range<usize>| {
                let mut by_label: std::collections::BTreeMap<u8, Vec<usize>> = Default::default();
                for e in range {
                    by_label.entry(labels[e]).or_default().push(e);
                }
                Answer::from_classes(by_label.into_values().collect())
            };
            let a = build(0..split);
            let b = build(split..n);
            let pairs = a.merge_comparisons(&b);
            let results: Vec<bool> = pairs.iter().map(|&(x, y)| labels[x] == labels[y]).collect();
            let merged = a.merge_with(&b, &results);
            prop_assert_eq!(merged.num_elements(), n);
            // Verify: elements share a merged class iff they share a label.
            let got = ecs_model::Partition::from_groups(&{
                let mut gs = merged.classes().to_vec();
                gs.sort_by_key(|c| c[0]);
                gs
            });
            let want = ecs_model::Partition::from_labels(&labels);
            prop_assert_eq!(got, want);
        }
    }
}
