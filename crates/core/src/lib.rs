//! Parallel equivalence class sorting algorithms.
//!
//! This crate implements the contribution of *Parallel Equivalence Class
//! Sorting: Algorithms, Lower Bounds, and Distribution-Based Analysis*
//! (Devanny, Goodrich, Jetviroj; SPAA 2016):
//!
//! * [`CrCompoundMerge`] — the concurrent-read algorithm of **Theorem 1**,
//!   solving ECS in `O(k + log log n)` comparison rounds with `n` processors
//!   via the two-phased compounding-comparison technique.
//! * [`ErMergeSort`] — the exclusive-read algorithm of **Theorem 2**, solving
//!   ECS in `O(k log n)` rounds by repeated pairwise merging with bipartite
//!   round-robin schedules.
//! * [`ErConstantRound`] — the exclusive-read algorithm of **Theorem 4**,
//!   solving ECS in `O(1)` rounds when the smallest class has size at least
//!   `λn`, by testing the edges of a union of random Hamiltonian cycles and
//!   then pivoting on the large components it induces.
//! * Sequential baselines: [`RoundRobin`] (the algorithm of Jayapaul et al.
//!   that Sections 4–5 analyse under class-size distributions),
//!   [`RepresentativeScan`] (compare against one representative per known
//!   class), and [`NaiveAllPairs`] (the brute-force test oracle).
//!
//! Every algorithm runs against an [`ecs_model::EquivalenceOracle`] through an
//! [`ecs_model::ComparisonSession`], which enforces the exclusive-read /
//! concurrent-read disciplines and counts comparisons and rounds in Valiant's
//! parallel comparison model. Round evaluation is pluggable: pass an
//! [`ecs_model::ExecutionBackend`] to [`EcsAlgorithm::sort_with_backend`] to
//! evaluate large rounds on a work-stealing pool of OS threads; partitions
//! and metrics are bit-identical across backends.
//!
//! # Quick start
//!
//! ```
//! use ecs_core::{CrCompoundMerge, EcsAlgorithm};
//! use ecs_model::{Instance, InstanceOracle};
//! use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(2016);
//! let instance = Instance::balanced(1_000, 8, &mut rng);
//! let oracle = InstanceOracle::new(&instance);
//!
//! let run = CrCompoundMerge::new(8).sort(&oracle);
//! assert!(instance.verify(&run.partition));
//! println!(
//!     "classified {} elements into {} classes in {} rounds ({} comparisons)",
//!     instance.n(),
//!     run.partition.num_classes(),
//!     run.metrics.rounds(),
//!     run.metrics.comparisons()
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod parallel;
pub mod run;
pub mod sequential;

pub use answer::Answer;
pub use parallel::constant_round::ErConstantRound;
pub use parallel::cr_compound::CrCompoundMerge;
pub use parallel::er_merge::ErMergeSort;
pub use run::{EcsAlgorithm, EcsRun};
pub use sequential::naive::NaiveAllPairs;
pub use sequential::representative_scan::RepresentativeScan;
pub use sequential::round_robin::RoundRobin;
