//! Theorem 4: exclusive-read ECS in `O(1)` rounds when every class is large.
//!
//! When the smallest equivalence class has size at least `λn` for a constant
//! `λ ∈ (0, 0.4]`, the paper classifies everything in a constant number of ER
//! rounds:
//!
//! 1. build `H_d`, the union of `d` random Hamiltonian cycles, with `d` chosen
//!    from Theorem 3's probability bound so that, with high probability, every
//!    class contains a connected component of `H_d`-equal edges of size at
//!    least `λn/8`;
//! 2. test all edges of `H_d` — the cycles decompose into matchings, so this
//!    takes `O(d)` ER rounds;
//! 3. take the large components this induces (one per class, w.h.p.), and
//!    compare each against the rest of the input, `|C|` elements per round —
//!    `O(1/λ)` rounds per class, `O(1/λ²)` rounds in total.
//!
//! If some class failed to produce a large component (low probability), or if
//! `λ` is unknown, the algorithm restarts with a halved `λ` estimate exactly as
//! the remark after Theorem 4 prescribes; all comparisons spent across
//! attempts are charged.

use crate::run::{EcsAlgorithm, EcsRun};
use ecs_graph::{Fragments, HamiltonianUnion, UnionFind};
use ecs_model::{ComparisonSession, EquivalenceOracle, ExecutionBackend, Partition, ReadMode};
use ecs_rng::{SeedableEcsRng, SplitMix64, Xoshiro256StarStar};

/// The constant-round exclusive-read algorithm (Theorem 4).
#[derive(Debug, Clone, Copy)]
pub struct ErConstantRound {
    lambda: Option<f64>,
    seed: u64,
    sharp_cycles: bool,
}

impl ErConstantRound {
    /// Creates the algorithm with a known lower bound `λ ∈ (0, 0.4]` on the
    /// smallest class fraction.
    ///
    /// # Panics
    ///
    /// Panics if `λ` is outside `(0, 0.4]`.
    pub fn with_lambda(lambda: f64, seed: u64) -> Self {
        assert!(
            lambda > 0.0 && lambda <= 0.4,
            "lambda must lie in (0, 0.4], got {lambda}"
        );
        Self {
            lambda: Some(lambda),
            seed,
            sharp_cycles: true,
        }
    }

    /// Creates the algorithm for the unknown-`λ` setting: it starts from the
    /// largest admissible value (0.4) and halves its estimate whenever an
    /// attempt fails.
    pub fn adaptive(seed: u64) -> Self {
        Self {
            lambda: None,
            seed,
            sharp_cycles: true,
        }
    }

    /// Uses the conservative `t ≤ −λ²/8` bound to pick the number of
    /// Hamiltonian cycles instead of the sharper exact exponent (more cycles,
    /// higher success probability; used by the ablation benchmarks).
    pub fn conservative_cycles(mut self) -> Self {
        self.sharp_cycles = false;
        self
    }

    /// The configured `λ`, if known.
    pub fn lambda(&self) -> Option<f64> {
        self.lambda
    }

    /// The number of Hamiltonian cycles the algorithm will use for a given
    /// `λ` estimate on an `n`-element instance.
    pub fn cycles_for(&self, lambda: f64, n: usize) -> usize {
        let d = if self.sharp_cycles {
            HamiltonianUnion::required_cycles_exact(lambda)
        } else {
            HamiltonianUnion::required_cycles(lambda)
        };
        d.min(n.max(2) - 1).max(1)
    }

    /// One attempt at a fixed `λ` estimate. Returns the labels if every
    /// element was classified, `None` if some class produced no component of
    /// size ≥ `λn/8` (so the attempt must be retried with more cycles).
    fn attempt<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        session: &mut ComparisonSession<'_, O>,
        lambda: f64,
        attempt_index: u64,
    ) -> Option<Vec<usize>> {
        let n = oracle.n();
        let d = self.cycles_for(lambda, n);
        let mut rng =
            Xoshiro256StarStar::seed_from_u64(SplitMix64::new(self.seed).derive(attempt_index));
        let h = HamiltonianUnion::random(n, d, &mut rng);

        // Step 2: test every edge of H_d in ER rounds.
        let rounds = h.er_rounds();
        let mut uf = UnionFind::new(n);
        for round in &rounds {
            let answers = session.execute_round(round);
            for (&(u, v), &same) in round.iter().zip(&answers) {
                if same {
                    uf.union(u, v);
                }
            }
        }

        // Step 3: pivot on the large components, read through the packed
        // fragment view ([`Fragments`]): sizes are cached popcounts and the
        // pivot order / member order are bit-identical to the legacy
        // `uf.groups()` path (both derive from `UnionFind::labels`).
        let fragments = Fragments::from_union_find(&mut uf);
        let threshold = (((lambda * n as f64) / 8.0).floor() as usize).max(1);

        let mut labels = vec![usize::MAX; n];
        let mut next_label = 0usize;
        for idx in fragments.by_size_desc() {
            let size = fragments.size(idx);
            if size < threshold {
                break;
            }
            let first = fragments.smallest(idx).expect("fragments are non-empty");
            if labels[first] != usize::MAX {
                // This fragment's class was already classified by an earlier
                // (larger) pivot of the same class.
                continue;
            }
            let label = next_label;
            next_label += 1;
            fragments.row(idx).for_each_one(|e| labels[e] = label);
            let others: Vec<usize> = (0..n).filter(|&x| labels[x] == usize::MAX).collect();
            for chunk in others.chunks(size) {
                // Zip the fragment's ascending members against the chunk —
                // the lazy prefix of `fragment[i]` the legacy indexing read.
                let round: Vec<(usize, usize)> = fragments
                    .row(idx)
                    .iter_ones()
                    .zip(chunk.iter().copied())
                    .collect();
                let answers = session.execute_round(&round);
                for (&(_, o), &same) in round.iter().zip(&answers) {
                    if same {
                        labels[o] = label;
                    }
                }
            }
        }

        if labels.iter().all(|&l| l != usize::MAX) {
            Some(labels)
        } else {
            None
        }
    }
}

impl EcsAlgorithm for ErConstantRound {
    fn name(&self) -> String {
        match self.lambda {
            Some(l) => format!("er-constant-round(lambda={l})"),
            None => "er-constant-round(adaptive)".to_string(),
        }
    }

    fn read_mode(&self) -> ReadMode {
        ReadMode::Exclusive
    }

    fn sort_with_backend<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        backend: ExecutionBackend,
    ) -> EcsRun {
        let n = oracle.n();
        let mut session = ComparisonSession::with_backend(oracle, ReadMode::Exclusive, backend);
        if n == 0 {
            return EcsRun::new(Partition::from_labels::<u32>(&[]), session.into_metrics());
        }
        if n == 1 {
            return EcsRun::new(Partition::singletons(1), session.into_metrics());
        }

        let mut lambda = self.lambda.unwrap_or(0.4);
        let mut attempt_index = 0u64;
        loop {
            if let Some(labels) = self.attempt(oracle, &mut session, lambda, attempt_index) {
                return EcsRun::new(Partition::from_labels(&labels), session.into_metrics());
            }
            attempt_index += 1;
            // The remark after Theorem 4: halve the estimate and retry. Once
            // the component-size threshold reaches one element, every fragment
            // is a pivot and the attempt cannot fail, so this terminates.
            lambda = (lambda / 2.0).max(0.5 / n as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_model::{Instance, InstanceOracle};
    use ecs_rng::{EcsRng, SeedableEcsRng, Xoshiro256StarStar};
    use proptest::prelude::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn classifies_large_class_instances() {
        let mut r = rng(1);
        for &(n, k) in &[(50usize, 2usize), (200, 3), (500, 2), (999, 3)] {
            let inst = Instance::balanced(n, k, &mut r);
            let lambda = (inst.smallest_class_size() as f64 / n as f64).min(0.4);
            let oracle = InstanceOracle::new(&inst);
            let run = ErConstantRound::with_lambda(lambda, 7).sort(&oracle);
            assert!(inst.verify(&run.partition), "failed for n={n}, k={k}");
        }
    }

    #[test]
    fn adaptive_mode_works_without_lambda() {
        let mut r = rng(2);
        let inst = Instance::balanced(400, 4, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = ErConstantRound::adaptive(11).sort(&oracle);
        assert!(inst.verify(&run.partition));
    }

    #[test]
    fn tiny_instances() {
        let inst1 = Instance::from_labels(&[0u8]);
        let run = ErConstantRound::adaptive(3).sort(&InstanceOracle::new(&inst1));
        assert_eq!(run.partition.num_classes(), 1);

        let inst2 = Instance::from_labels(&[0u8, 1]);
        let run = ErConstantRound::adaptive(3).sort(&InstanceOracle::new(&inst2));
        assert!(inst2.verify(&run.partition));

        let inst0 = Instance::from_labels::<u8>(&[]);
        let run = ErConstantRound::adaptive(3).sort(&InstanceOracle::new(&inst0));
        assert!(run.partition.is_empty());
    }

    #[test]
    #[should_panic(expected = "lambda must lie")]
    fn rejects_lambda_above_point_four() {
        let _ = ErConstantRound::with_lambda(0.5, 1);
    }

    #[test]
    fn rounds_do_not_grow_with_n() {
        // The heart of Theorem 4: for fixed lambda the round count is O(1),
        // independent of n.
        let lambda = 0.25;
        let mut r = rng(3);
        let rounds_at = |n: usize, r: &mut Xoshiro256StarStar| {
            let inst = Instance::balanced(n, 3, r); // smallest class ~ n/3 > lambda n
            let oracle = InstanceOracle::new(&inst);
            let run = ErConstantRound::with_lambda(lambda, 5).sort(&oracle);
            assert!(inst.verify(&run.partition));
            run.metrics.rounds()
        };
        let small = rounds_at(600, &mut r);
        let large = rounds_at(20_000, &mut r);
        // Identical schedules up to the ±1 odd/even cycle-decomposition round
        // and chunk rounding; allow a small additive slack.
        assert!(
            large <= small + 6,
            "rounds grew from {small} (n=600) to {large} (n=20000)"
        );
    }

    #[test]
    fn comparisons_are_linear_in_n_for_fixed_lambda() {
        let lambda = 0.3;
        let mut r = rng(4);
        let comps_at = |n: usize, r: &mut Xoshiro256StarStar| {
            let inst = Instance::balanced(n, 3, r);
            let oracle = InstanceOracle::new(&inst);
            let run = ErConstantRound::with_lambda(lambda, 5).sort(&oracle);
            run.metrics.comparisons() as f64
        };
        let at_2k = comps_at(2_000, &mut r);
        let at_8k = comps_at(8_000, &mut r);
        let ratio = at_8k / at_2k;
        assert!(
            (3.0..5.0).contains(&ratio),
            "comparisons should scale ~linearly: ratio {ratio}"
        );
    }

    #[test]
    fn conservative_cycles_use_more_cycles() {
        let sharp = ErConstantRound::with_lambda(0.3, 1);
        let conservative = ErConstantRound::with_lambda(0.3, 1).conservative_cycles();
        assert!(conservative.cycles_for(0.3, 100_000) > sharp.cycles_for(0.3, 100_000));
    }

    #[test]
    fn cycles_capped_for_tiny_instances() {
        let alg = ErConstantRound::with_lambda(0.05, 1);
        assert!(alg.cycles_for(0.05, 10) <= 9);
    }

    #[test]
    fn unbalanced_but_large_classes() {
        let mut r = rng(5);
        // Classes of 40% / 35% / 25%: smallest fraction 0.25.
        let inst = Instance::from_class_sizes(&[400, 350, 250], &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = ErConstantRound::with_lambda(0.25, 9).sort(&oracle);
        assert!(inst.verify(&run.partition));
    }

    #[test]
    fn succeeds_even_when_lambda_estimate_is_too_optimistic() {
        // True smallest class is ~10% but we claim 0.4: attempts fail and the
        // estimate halves until the run succeeds.
        let mut r = rng(6);
        let inst = Instance::from_class_sizes(&[450, 450, 100], &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = ErConstantRound::with_lambda(0.4, 13).sort(&oracle);
        assert!(inst.verify(&run.partition));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut r = rng(7);
        let inst = Instance::balanced(500, 2, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let a = ErConstantRound::with_lambda(0.4, 42).sort(&oracle);
        let b = ErConstantRound::with_lambda(0.4, 42).sort(&oracle);
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.metrics.comparisons(), b.metrics.comparisons());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn matches_ground_truth_on_random_large_class_instances(
            seed in 0u64..500,
            k in 2usize..4,
            n in 60usize..400,
        ) {
            let mut r = rng(seed);
            let inst = Instance::balanced(n, k, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = ErConstantRound::adaptive(seed).sort(&oracle);
            prop_assert!(inst.verify(&run.partition));
        }

        #[test]
        fn adaptive_handles_small_classes_too(
            seed in 0u64..200,
            sizes in proptest::collection::vec(1usize..30, 2..8),
        ) {
            // Even when the "large class" premise fails, the halving fallback
            // must still classify correctly (just not in O(1) rounds).
            let mut r = rng(seed);
            let inst = Instance::from_class_sizes(&sizes, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = ErConstantRound::adaptive(seed).sort(&oracle);
            prop_assert!(inst.verify(&run.partition));
        }
    }

    #[test]
    fn shuffled_class_layout_does_not_matter() {
        let mut r = rng(8);
        let mut labels: Vec<usize> = (0..900).map(|i| i % 3).collect();
        r.shuffle(&mut labels);
        let inst = Instance::from_labels(&labels);
        let oracle = InstanceOracle::new(&inst);
        let run = ErConstantRound::with_lambda(0.33, 21).sort(&oracle);
        assert!(inst.verify(&run.partition));
    }
}
