//! Theorem 1: concurrent-read ECS in `O(k + log log n)` rounds.
//!
//! The algorithm maintains a list of *answers* (solved sub-instances, see
//! [`crate::Answer`]) and merges them with the paper's two-phased
//! compounding-comparison technique:
//!
//! 1. start with `n` singleton answers;
//! 2. **first phase** — while the number of processors per answer is less
//!    than `4k²`, merge answers in pairs, each merge costing at most `k²`
//!    representative comparisons (Lemma 1: `O(k)` rounds in total);
//! 3. **second phase** — with `ck²` processors per answer, merge groups of
//!    `c` answers at once using `C(c, 2)·k²` comparisons per group, which
//!    squares the reduction factor every iteration (Lemma 2: `O(log log n)`
//!    rounds).
//!
//! The session charges rounds honestly: every iteration submits all of its
//! comparisons as one concurrent-read batch, and a batch of `m` comparisons on
//! `n` processors is charged `⌈m/n⌉` rounds.

use crate::answer::Answer;
use crate::run::{EcsAlgorithm, EcsRun};
use ecs_model::{ComparisonSession, EquivalenceOracle, ExecutionBackend, Partition, ReadMode};

/// The concurrent-read compounding-merge algorithm (Theorem 1).
///
/// `k` is the number of equivalence classes the schedule is tuned for. The
/// algorithm is *correct* for any `k ≥ 1` (the value only controls when the
/// second phase starts), but the `O(k + log log n)` round bound assumes `k`
/// is the true class count.
#[derive(Debug, Clone, Copy)]
pub struct CrCompoundMerge {
    k: usize,
}

impl CrCompoundMerge {
    /// Creates the algorithm tuned for `k` equivalence classes.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "the class count k must be at least 1");
        Self { k }
    }

    /// The class count the schedule is tuned for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Merges consecutive pairs of answers (first phase step). All pair
    /// comparisons are submitted as a single concurrent-read batch.
    fn merge_pairs<O: EquivalenceOracle>(
        answers: Vec<Answer>,
        session: &mut ComparisonSession<'_, O>,
    ) -> Vec<Answer> {
        if answers.len() < 2 {
            return answers;
        }
        let mut batch: Vec<(usize, usize)> = Vec::new();
        let mut spans: Vec<(usize, usize)> = Vec::new(); // (offset, len) per pair
        for chunk in answers.chunks(2) {
            if chunk.len() == 2 {
                let pairs = chunk[0].merge_comparisons(&chunk[1]);
                spans.push((batch.len(), pairs.len()));
                batch.extend(pairs);
            }
        }
        let results = session.execute_round(&batch);
        let mut merged = Vec::with_capacity(answers.len().div_ceil(2));
        let mut pair_index = 0;
        for chunk in answers.chunks(2) {
            if chunk.len() == 2 {
                let (offset, len) = spans[pair_index];
                pair_index += 1;
                merged.push(chunk[0].merge_with(&chunk[1], &results[offset..offset + len]));
            } else {
                merged.push(chunk[0].clone());
            }
        }
        merged
    }

    /// Merges groups of `group_size` answers at once (second phase step).
    fn merge_groups<O: EquivalenceOracle>(
        answers: Vec<Answer>,
        group_size: usize,
        session: &mut ComparisonSession<'_, O>,
    ) -> Vec<Answer> {
        debug_assert!(group_size >= 2);
        let mut batch: Vec<(usize, usize)> = Vec::new();
        // For every group, record for each (i, j, a, b) cross comparison where
        // its answer lands in the batch.
        struct GroupPlan {
            first_answer: usize,
            len: usize,
            offsets: std::collections::HashMap<(usize, usize, usize, usize), usize>,
        }
        let mut plans: Vec<GroupPlan> = Vec::new();
        for (group_index, group) in answers.chunks(group_size).enumerate() {
            let first_answer = group_index * group_size;
            let mut offsets = std::collections::HashMap::new();
            if group.len() >= 2 {
                for i in 0..group.len() {
                    for j in (i + 1)..group.len() {
                        for a in 0..group[i].num_classes() {
                            for b in 0..group[j].num_classes() {
                                offsets.insert((i, j, a, b), batch.len());
                                batch
                                    .push((group[i].representative(a), group[j].representative(b)));
                            }
                        }
                    }
                }
            }
            plans.push(GroupPlan {
                first_answer,
                len: group.len(),
                offsets,
            });
        }
        let results = session.execute_round(&batch);
        let mut merged = Vec::with_capacity(answers.len().div_ceil(group_size));
        for plan in plans {
            let group = &answers[plan.first_answer..plan.first_answer + plan.len];
            if group.len() == 1 {
                merged.push(group[0].clone());
                continue;
            }
            let combined = Answer::merge_group(group, |i, a, j, b| {
                let key = if i < j { (i, j, a, b) } else { (j, i, b, a) };
                results[plan.offsets[&key]]
            });
            merged.push(combined);
        }
        merged
    }
}

impl EcsAlgorithm for CrCompoundMerge {
    fn name(&self) -> String {
        format!("cr-compound(k={})", self.k)
    }

    fn read_mode(&self) -> ReadMode {
        ReadMode::Concurrent
    }

    fn sort_with_backend<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        backend: ExecutionBackend,
    ) -> EcsRun {
        let n = oracle.n();
        let mut session = ComparisonSession::with_backend(oracle, ReadMode::Concurrent, backend);
        if n == 0 {
            return EcsRun::new(Partition::from_labels::<u32>(&[]), session.into_metrics());
        }

        // Step 1: one singleton answer per element.
        let mut answers: Vec<Answer> = (0..n).map(Answer::singleton).collect();
        let k_sq = self.k.saturating_mul(self.k).max(1);

        // First phase: pairwise merging while processors per answer < 4k².
        while answers.len() > 1 && n / answers.len() < 4 * k_sq {
            answers = Self::merge_pairs(answers, &mut session);
        }

        // Second phase: compound merging with group size c = ⌊p_per_answer / k²⌋.
        while answers.len() > 1 {
            let per_answer = n / answers.len();
            let c = (per_answer / k_sq).max(2).min(answers.len());
            answers = Self::merge_groups(answers, c, &mut session);
        }

        let labels = Answer::to_labels(&answers, n);
        EcsRun::new(Partition::from_labels(&labels), session.into_metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_model::{Instance, InstanceOracle};
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
    use proptest::prelude::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn classifies_correctly_across_sizes() {
        let mut r = rng(1);
        for &(n, k) in &[
            (1usize, 1usize),
            (2, 1),
            (2, 2),
            (7, 3),
            (64, 4),
            (100, 1),
            (100, 10),
            (257, 6),
            (1000, 3),
        ] {
            let inst = Instance::balanced(n, k, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = CrCompoundMerge::new(k).sort(&oracle);
            assert!(inst.verify(&run.partition), "failed for n={n}, k={k}");
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_labels::<u32>(&[]);
        let oracle = InstanceOracle::new(&inst);
        let run = CrCompoundMerge::new(1).sort(&oracle);
        assert!(run.partition.is_empty());
        assert_eq!(run.metrics.rounds(), 0);
    }

    #[test]
    fn correct_even_with_wrong_k_hint() {
        // k only tunes the schedule; correctness must not depend on it.
        let mut r = rng(2);
        let inst = Instance::balanced(200, 8, &mut r);
        let oracle = InstanceOracle::new(&inst);
        for hint in [1usize, 2, 8, 20] {
            let run = CrCompoundMerge::new(hint).sort(&oracle);
            assert!(inst.verify(&run.partition), "failed with k hint {hint}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = CrCompoundMerge::new(0);
    }

    #[test]
    fn round_count_is_o_of_k_plus_loglog_n() {
        // Empirical check of Theorem 1: rounds should be bounded by
        // c1·k + c2·log2(log2(n)) + c3 with small constants.
        let mut r = rng(3);
        for &(n, k) in &[(1_000usize, 2usize), (10_000, 5), (10_000, 10), (50_000, 3)] {
            let inst = Instance::balanced(n, k, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = CrCompoundMerge::new(k).sort(&oracle);
            assert!(inst.verify(&run.partition));
            let loglog = (n as f64).log2().log2();
            let bound = (6.0 * k as f64 + 4.0 * loglog + 8.0).ceil() as u64;
            assert!(
                run.metrics.rounds() <= bound,
                "n={n}, k={k}: {} rounds exceeds bound {bound}",
                run.metrics.rounds()
            );
        }
    }

    #[test]
    fn rounds_grow_slowly_with_n_for_fixed_k() {
        let mut r = rng(4);
        let k = 4;
        let small = {
            let inst = Instance::balanced(1_000, k, &mut r);
            CrCompoundMerge::new(k)
                .sort(&InstanceOracle::new(&inst))
                .metrics
                .rounds()
        };
        let large = {
            let inst = Instance::balanced(64_000, k, &mut r);
            CrCompoundMerge::new(k)
                .sort(&InstanceOracle::new(&inst))
                .metrics
                .rounds()
        };
        // Doubling n six times should cost only a handful of extra rounds.
        assert!(
            large <= small + 8,
            "rounds jumped from {small} to {large} when n grew 64x"
        );
    }

    #[test]
    fn total_work_is_reasonable() {
        // Work is O(n k) up to constants for the merge tree.
        let mut r = rng(5);
        let (n, k) = (4_096usize, 4usize);
        let inst = Instance::balanced(n, k, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = CrCompoundMerge::new(k).sort(&oracle);
        assert!(inst.verify(&run.partition));
        assert!(
            run.metrics.comparisons() <= (8 * n * k) as u64,
            "work {} too large for n={n}, k={k}",
            run.metrics.comparisons()
        );
    }

    #[test]
    fn handles_unbalanced_classes() {
        let mut r = rng(6);
        let inst = Instance::from_class_sizes(&[500, 30, 30, 5, 1, 1], &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = CrCompoundMerge::new(6).sort(&oracle);
        assert!(inst.verify(&run.partition));
    }

    #[test]
    fn threaded_backend_is_bit_identical_to_sequential() {
        let mut r = rng(7);
        let inst = Instance::balanced(3_000, 5, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let alg = CrCompoundMerge::new(5);
        let seq = alg.sort_with_backend(&oracle, ExecutionBackend::Sequential);
        // threshold 1 forces even tiny rounds through the pool.
        let thr = alg.sort_with_backend(
            &oracle,
            ExecutionBackend::Threaded {
                threads: 4,
                threshold: 1,
            },
        );
        assert!(inst.verify(&seq.partition));
        assert_eq!(seq.partition, thr.partition);
        assert_eq!(seq.metrics, thr.metrics);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matches_ground_truth_on_random_instances(
            labels in proptest::collection::vec(0u8..5, 1..150),
            k_hint in 1usize..8,
        ) {
            let inst = Instance::from_labels(&labels);
            let oracle = InstanceOracle::new(&inst);
            let run = CrCompoundMerge::new(k_hint).sort(&oracle);
            prop_assert!(inst.verify(&run.partition));
        }
    }
}
