//! Theorem 2: exclusive-read ECS in `O(k log n)` rounds.
//!
//! The algorithm merges answers pairwise along a balanced binary tree
//! (`⌈log₂ n⌉` levels). Merging two answers requires comparing one
//! representative of each of the ≤ `k` classes on one side with one
//! representative of each of the ≤ `k` classes on the other — a complete
//! bipartite comparison pattern — which the exclusive-read discipline forces
//! to be spread over at most `k` rounds (a representative can only shake one
//! hand per round). The bipartite round-robin schedule of
//! [`ecs_model::schedule::bipartite_rounds`] achieves exactly `max(k_a, k_b)`
//! rounds, and merges of *different* answer pairs at the same tree level touch
//! disjoint elements, so they share rounds. Total: `O(k log n)` rounds.

use crate::answer::Answer;
use crate::run::{EcsAlgorithm, EcsRun};
use ecs_model::schedule::bipartite_rounds;
use ecs_model::{ComparisonSession, EquivalenceOracle, ExecutionBackend, Partition, ReadMode};

/// The exclusive-read pairwise-merge algorithm (Theorem 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct ErMergeSort;

impl ErMergeSort {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }

    /// Merges consecutive pairs of answers at one tree level. The bipartite
    /// schedules of all pairs are interleaved: global round `r` executes round
    /// `r` of every pair's schedule (element-disjoint, hence a legal ER
    /// round).
    fn merge_level<O: EquivalenceOracle>(
        answers: Vec<Answer>,
        session: &mut ComparisonSession<'_, O>,
    ) -> Vec<Answer> {
        if answers.len() < 2 {
            return answers;
        }
        // Build the per-pair bipartite schedules.
        struct PairPlan {
            rounds: Vec<Vec<(usize, usize)>>,
            // (round, index within round) -> position of (rep_a, rep_b) result
            // recorded as the flattened a * kb + b index for merge_with.
        }
        let mut plans: Vec<Option<PairPlan>> = Vec::new();
        for chunk in answers.chunks(2) {
            if chunk.len() == 2 {
                let left = chunk[0].representatives();
                let right = chunk[1].representatives();
                plans.push(Some(PairPlan {
                    rounds: bipartite_rounds(&left, &right),
                }));
            } else {
                plans.push(None);
            }
        }
        let max_rounds = plans
            .iter()
            .flatten()
            .map(|p| p.rounds.len())
            .max()
            .unwrap_or(0);

        // Execute the interleaved schedule and collect per-pair results keyed
        // by (representative_a, representative_b).
        let mut outcomes: std::collections::HashMap<(usize, usize), bool> =
            std::collections::HashMap::new();
        for r in 0..max_rounds {
            let mut round: Vec<(usize, usize)> = Vec::new();
            for plan in plans.iter().flatten() {
                if let Some(pairs) = plan.rounds.get(r) {
                    round.extend_from_slice(pairs);
                }
            }
            let answers_for_round = session.execute_round(&round);
            for (&pair, &same) in round.iter().zip(&answers_for_round) {
                outcomes.insert(pair, same);
            }
        }

        // Apply the merges.
        let mut merged = Vec::with_capacity(answers.len().div_ceil(2));
        for (chunk, plan) in answers.chunks(2).zip(&plans) {
            if plan.is_none() || chunk.len() == 1 {
                merged.push(chunk[0].clone());
                continue;
            }
            let a = &chunk[0];
            let b = &chunk[1];
            let results: Vec<bool> = a
                .merge_comparisons(b)
                .into_iter()
                .map(|pair| outcomes[&pair])
                .collect();
            merged.push(a.merge_with(b, &results));
        }
        merged
    }
}

impl EcsAlgorithm for ErMergeSort {
    fn name(&self) -> String {
        "er-merge".to_string()
    }

    fn read_mode(&self) -> ReadMode {
        ReadMode::Exclusive
    }

    fn sort_with_backend<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        backend: ExecutionBackend,
    ) -> EcsRun {
        let n = oracle.n();
        let mut session = ComparisonSession::with_backend(oracle, ReadMode::Exclusive, backend);
        if n == 0 {
            return EcsRun::new(Partition::from_labels::<u32>(&[]), session.into_metrics());
        }
        let mut answers: Vec<Answer> = (0..n).map(Answer::singleton).collect();
        while answers.len() > 1 {
            answers = Self::merge_level(answers, &mut session);
        }
        let labels = Answer::to_labels(&answers, n);
        EcsRun::new(Partition::from_labels(&labels), session.into_metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_model::{Instance, InstanceOracle};
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
    use proptest::prelude::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn classifies_correctly_across_sizes() {
        let mut r = rng(1);
        for &(n, k) in &[
            (1usize, 1usize),
            (2, 2),
            (3, 2),
            (16, 4),
            (100, 10),
            (101, 7),
            (512, 2),
            (600, 24),
        ] {
            let inst = Instance::balanced(n, k, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = ErMergeSort::new().sort(&oracle);
            assert!(inst.verify(&run.partition), "failed for n={n}, k={k}");
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_labels::<u32>(&[]);
        let oracle = InstanceOracle::new(&inst);
        let run = ErMergeSort::new().sort(&oracle);
        assert!(run.partition.is_empty());
    }

    #[test]
    fn round_count_is_o_of_k_log_n() {
        let mut r = rng(2);
        for &(n, k) in &[(256usize, 2usize), (1024, 4), (4096, 8), (10_000, 3)] {
            let inst = Instance::balanced(n, k, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = ErMergeSort::new().sort(&oracle);
            assert!(inst.verify(&run.partition));
            let levels = (n as f64).log2().ceil();
            let bound = (2.0 * k as f64 * levels + levels + 4.0) as u64;
            assert!(
                run.metrics.rounds() <= bound,
                "n={n}, k={k}: {} rounds exceeds O(k log n) bound {bound}",
                run.metrics.rounds()
            );
        }
    }

    #[test]
    fn er_rounds_scale_linearly_in_k_for_fixed_n() {
        let mut r = rng(3);
        let n = 2048;
        let rounds_for = |k: usize, r: &mut Xoshiro256StarStar| {
            let inst = Instance::balanced(n, k, r);
            ErMergeSort::new()
                .sort(&InstanceOracle::new(&inst))
                .metrics
                .rounds()
        };
        let r2 = rounds_for(2, &mut r);
        let r8 = rounds_for(8, &mut r);
        let r16 = rounds_for(16, &mut r);
        assert!(r8 > r2, "more classes must cost more ER rounds");
        assert!(r16 > r8);
        // And the growth should be roughly linear in k (within a factor ~3).
        assert!(r16 <= 3 * r8, "k=16 rounds {r16} vs k=8 rounds {r8}");
    }

    #[test]
    fn uses_more_rounds_than_cr_but_same_answer() {
        use crate::parallel::cr_compound::CrCompoundMerge;
        let mut r = rng(4);
        let inst = Instance::balanced(4096, 6, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let er = ErMergeSort::new().sort(&oracle);
        let cr = CrCompoundMerge::new(6).sort(&oracle);
        assert_eq!(er.partition, cr.partition);
        assert!(
            er.metrics.rounds() >= cr.metrics.rounds(),
            "ER ({}) should need at least as many rounds as CR ({})",
            er.metrics.rounds(),
            cr.metrics.rounds()
        );
    }

    #[test]
    fn handles_unbalanced_classes() {
        let mut r = rng(5);
        let inst = Instance::from_class_sizes(&[300, 20, 20, 5, 1], &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = ErMergeSort::new().sort(&oracle);
        assert!(inst.verify(&run.partition));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matches_ground_truth_on_random_instances(
            labels in proptest::collection::vec(0u8..5, 1..120)
        ) {
            let inst = Instance::from_labels(&labels);
            let oracle = InstanceOracle::new(&inst);
            let run = ErMergeSort::new().sort(&oracle);
            prop_assert!(inst.verify(&run.partition));
        }
    }
}
