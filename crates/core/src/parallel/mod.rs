//! The parallel algorithms of Theorems 1, 2, and 4.

pub mod constant_round;
pub mod cr_compound;
pub mod er_merge;
