//! The algorithm interface and its result type.

use ecs_model::{EquivalenceOracle, ExecutionBackend, Metrics, Partition, ReadMode};

/// The outcome of running an equivalence class sorting algorithm: the
/// discovered partition and the cost charged in Valiant's model.
#[derive(Debug, Clone)]
pub struct EcsRun {
    /// The classification produced by the algorithm.
    pub partition: Partition,
    /// Comparisons and rounds charged by the comparison session.
    pub metrics: Metrics,
}

impl EcsRun {
    /// Convenience constructor.
    pub fn new(partition: Partition, metrics: Metrics) -> Self {
        Self { partition, metrics }
    }
}

/// An equivalence class sorting algorithm.
///
/// Algorithms are configured at construction (e.g. the known class count `k`
/// for [`crate::CrCompoundMerge`], or `λ` for [`crate::ErConstantRound`]) and
/// then run against any oracle. They must be correct for every consistent
/// oracle: the returned partition must equal the oracle's hidden partition.
pub trait EcsAlgorithm {
    /// A short human-readable name used in reports (e.g. `"cr-compound"`).
    fn name(&self) -> String;

    /// The read discipline the algorithm is designed for. Sequential
    /// algorithms report [`ReadMode::Exclusive`] since one comparison at a
    /// time trivially satisfies it.
    fn read_mode(&self) -> ReadMode;

    /// Classifies every element of the oracle's instance, evaluating rounds
    /// on the given [`ExecutionBackend`].
    ///
    /// The backend only selects which OS threads perform the oracle calls;
    /// the returned partition and [`Metrics`] must be bit-identical across
    /// backends (the model's charging is backend-independent and answers are
    /// collected in submission order).
    fn sort_with_backend<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        backend: ExecutionBackend,
    ) -> EcsRun;

    /// Classifies every element of the oracle's instance using the backend
    /// selected by the environment ([`ExecutionBackend::from_env`], i.e. the
    /// `ECS_THREADS` variable; sequential when unset).
    fn sort<O: EquivalenceOracle>(&self, oracle: &O) -> EcsRun {
        self.sort_with_backend(oracle, ExecutionBackend::from_env())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ecs_run_holds_its_parts() {
        let run = EcsRun::new(Partition::singletons(3), Metrics::new());
        assert_eq!(run.partition.num_classes(), 3);
        assert_eq!(run.metrics.comparisons(), 0);
    }
}
