//! Sequential baselines: the algorithms the paper compares against and
//! analyses under class-size distributions.

pub mod naive;
pub mod representative_scan;
pub mod round_robin;
