//! The brute-force baseline: compare every pair.

use crate::run::{EcsAlgorithm, EcsRun};
use ecs_graph::UnionFind;
use ecs_model::{ComparisonSession, EquivalenceOracle, ExecutionBackend, Partition, ReadMode};

/// Compares all `C(n, 2)` pairs of elements and unions the equal ones.
///
/// This performs `Θ(n²)` comparisons regardless of the class structure, so it
/// is only useful as a correctness oracle for the other algorithms on small
/// instances and as the "no cleverness at all" reference point in benchmark
/// tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveAllPairs;

impl NaiveAllPairs {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl EcsAlgorithm for NaiveAllPairs {
    fn name(&self) -> String {
        "naive-all-pairs".to_string()
    }

    fn read_mode(&self) -> ReadMode {
        ReadMode::Exclusive
    }

    fn sort_with_backend<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        backend: ExecutionBackend,
    ) -> EcsRun {
        let n = oracle.n();
        let mut session = ComparisonSession::with_backend(oracle, ReadMode::Exclusive, backend);
        let mut uf = UnionFind::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                if session.compare(a, b) {
                    uf.union(a, b);
                }
            }
        }
        EcsRun::new(Partition::from_labels(&uf.labels()), session.into_metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_model::{Instance, InstanceOracle};
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn classifies_small_instances_exactly() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        for &(n, k) in &[(1usize, 1usize), (2, 1), (2, 2), (10, 3), (25, 5)] {
            let inst = Instance::balanced(n, k, &mut rng);
            let oracle = InstanceOracle::new(&inst);
            let run = NaiveAllPairs::new().sort(&oracle);
            assert!(inst.verify(&run.partition), "failed for n={n}, k={k}");
            assert_eq!(run.metrics.comparisons(), (n * (n - 1) / 2) as u64);
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_labels::<u32>(&[]);
        let oracle = InstanceOracle::new(&inst);
        let run = NaiveAllPairs::new().sort(&oracle);
        assert_eq!(run.partition.num_classes(), 0);
        assert_eq!(run.metrics.comparisons(), 0);
    }

    #[test]
    fn name_and_mode() {
        let alg = NaiveAllPairs::new();
        assert_eq!(alg.name(), "naive-all-pairs");
        assert_eq!(alg.read_mode(), ReadMode::Exclusive);
    }
}
