//! The representative-scan baseline: compare each element against one
//! representative per discovered class.

use crate::run::{EcsAlgorithm, EcsRun};
use ecs_model::{ComparisonSession, EquivalenceOracle, ExecutionBackend, Partition, ReadMode};

/// Scans the elements once; each element is compared against one
/// representative of every class discovered so far until a match is found (or
/// a new class is opened).
///
/// This is the natural sequential algorithm: it performs at most `n·k`
/// comparisons, and when every class has size at least `ℓ` that is
/// `O(n²/ℓ)` — matching the sequential upper bound of Jayapaul et al. that the
/// paper's lower bounds (Theorems 5 and 6) prove tight.
#[derive(Debug, Clone, Copy, Default)]
pub struct RepresentativeScan;

impl RepresentativeScan {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl EcsAlgorithm for RepresentativeScan {
    fn name(&self) -> String {
        "representative-scan".to_string()
    }

    fn read_mode(&self) -> ReadMode {
        ReadMode::Exclusive
    }

    fn sort_with_backend<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        backend: ExecutionBackend,
    ) -> EcsRun {
        let n = oracle.n();
        let mut session = ComparisonSession::with_backend(oracle, ReadMode::Exclusive, backend);
        // One representative and one member list per discovered class.
        let mut representatives: Vec<usize> = Vec::new();
        let mut labels: Vec<usize> = vec![usize::MAX; n];
        for (e, label) in labels.iter_mut().enumerate() {
            let mut assigned = false;
            for (class, &rep) in representatives.iter().enumerate() {
                if session.compare(e, rep) {
                    *label = class;
                    assigned = true;
                    break;
                }
            }
            if !assigned {
                *label = representatives.len();
                representatives.push(e);
            }
        }
        EcsRun::new(Partition::from_labels(&labels), session.into_metrics())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_model::{Instance, InstanceOracle};
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
    use proptest::prelude::*;

    #[test]
    fn classifies_correctly() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        for &(n, k) in &[(1usize, 1usize), (30, 1), (30, 30), (100, 7), (500, 20)] {
            let inst = Instance::balanced(n, k, &mut rng);
            let oracle = InstanceOracle::new(&inst);
            let run = RepresentativeScan::new().sort(&oracle);
            assert!(inst.verify(&run.partition), "failed for n={n}, k={k}");
        }
    }

    #[test]
    fn comparison_count_is_at_most_n_times_k() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let inst = Instance::balanced(400, 8, &mut rng);
        let oracle = InstanceOracle::new(&inst);
        let run = RepresentativeScan::new().sort(&oracle);
        assert!(run.metrics.comparisons() <= 400 * 8);
        // And at least n - k (every element not opening a class needs >= 1).
        assert!(run.metrics.comparisons() >= (400 - 8) as u64);
    }

    #[test]
    fn single_class_needs_n_minus_one_comparisons() {
        let inst = Instance::from_labels(&[0u8; 50]);
        let oracle = InstanceOracle::new(&inst);
        let run = RepresentativeScan::new().sort(&oracle);
        assert_eq!(run.metrics.comparisons(), 49);
    }

    #[test]
    fn all_singletons_needs_quadratic_comparisons() {
        let labels: Vec<usize> = (0..40).collect();
        let inst = Instance::from_labels(&labels);
        let oracle = InstanceOracle::new(&inst);
        let run = RepresentativeScan::new().sort(&oracle);
        assert_eq!(run.metrics.comparisons(), (40 * 39 / 2) as u64);
        assert_eq!(run.partition.num_classes(), 40);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_ground_truth_on_random_instances(
            labels in proptest::collection::vec(0u8..6, 1..120)
        ) {
            let inst = Instance::from_labels(&labels);
            let oracle = InstanceOracle::new(&inst);
            let run = RepresentativeScan::new().sort(&oracle);
            prop_assert!(inst.verify(&run.partition));
            let k = inst.num_classes() as u64;
            prop_assert!(run.metrics.comparisons() <= labels.len() as u64 * k);
        }
    }
}
