//! The round-robin algorithm of Jayapaul et al., analysed in Sections 4–5.
//!
//! Every element keeps a cyclic cursor over the other elements; the algorithm
//! sweeps over the elements in rounds, and in each sweep every still-active
//! element initiates one equivalence test with the *next element whose
//! relationship to it is still unknown*. Knowledge is shared at the group
//! level: discovered equivalences contract groups (union-find), discovered
//! differences are recorded between groups, and a relationship is "known" as
//! soon as it can be inferred from the group structure.
//!
//! The lemma of Jayapaul et al. used by Theorem 7 states that this schedule
//! performs at most `2·min(Y_i, Y_j)` tests between any two classes of sizes
//! `Y_i` and `Y_j`; the property-based tests below check that bound (and the
//! resulting Theorem 7 stochastic dominance is exercised again in the
//! integration tests and the `theorem7_dominance` benchmark binary).

use crate::run::{EcsAlgorithm, EcsRun};
use ecs_graph::UnionFind;
use ecs_model::{ComparisonSession, EquivalenceOracle, ExecutionBackend, Partition, ReadMode};
use std::collections::{HashMap, HashSet};

/// The round-robin sequential equivalence class sorter.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin;

impl RoundRobin {
    /// Creates the algorithm.
    pub fn new() -> Self {
        Self
    }
}

/// Group-level knowledge: which group roots are known to be different.
struct Knowledge {
    uf: UnionFind,
    /// For each group root, the set of other group roots known to differ.
    diff: HashMap<usize, HashSet<usize>>,
    /// Number of unordered known-different group pairs.
    known_pairs: usize,
}

impl Knowledge {
    fn new(n: usize) -> Self {
        Self {
            uf: UnionFind::new(n),
            diff: HashMap::new(),
            known_pairs: 0,
        }
    }

    fn root(&mut self, x: usize) -> usize {
        self.uf.find(x)
    }

    fn groups(&self) -> usize {
        self.uf.num_sets()
    }

    /// All pairwise relationships among current groups are known.
    fn complete(&self) -> bool {
        let g = self.groups();
        self.known_pairs == g * (g - 1) / 2
    }

    fn knows(&mut self, a: usize, b: usize) -> bool {
        let ra = self.root(a);
        let rb = self.root(b);
        ra == rb
            || self
                .diff
                .get(&ra)
                .map(|set| set.contains(&rb))
                .unwrap_or(false)
    }

    /// The group of `x` knows its relationship to every other current group.
    fn fully_informed(&mut self, x: usize) -> bool {
        let r = self.root(x);
        let known = self.diff.get(&r).map(|s| s.len()).unwrap_or(0);
        known == self.groups() - 1
    }

    /// Records a "different" answer between the groups of `a` and `b`.
    fn record_different(&mut self, a: usize, b: usize) {
        let ra = self.root(a);
        let rb = self.root(b);
        debug_assert_ne!(ra, rb, "consistent oracles never separate equal elements");
        if self.diff.entry(ra).or_default().insert(rb) {
            self.diff.entry(rb).or_default().insert(ra);
            self.known_pairs += 1;
        }
    }

    /// Records an "equal" answer: contracts the two groups and merges their
    /// difference knowledge.
    fn record_equal(&mut self, a: usize, b: usize) {
        let ra = self.root(a);
        let rb = self.root(b);
        if ra == rb {
            return;
        }
        debug_assert!(
            !self.diff.get(&ra).map(|s| s.contains(&rb)).unwrap_or(false),
            "oracle inconsistency: groups known different answered equal"
        );
        self.uf.union(ra, rb);
        let new_root = self.uf.find(ra);
        let old_root = if new_root == ra { rb } else { ra };
        let old_set = self.diff.remove(&old_root).unwrap_or_default();
        for z in old_set {
            // Repoint z's knowledge from the vanished root to the surviving one.
            if let Some(set) = self.diff.get_mut(&z) {
                set.remove(&old_root);
                if !set.insert(new_root) {
                    // z already knew the surviving root: two known pairs collapse.
                    self.known_pairs -= 1;
                }
            }
            let new_set = self.diff.entry(new_root).or_default();
            new_set.insert(z);
        }
    }
}

impl EcsAlgorithm for RoundRobin {
    fn name(&self) -> String {
        "round-robin".to_string()
    }

    fn read_mode(&self) -> ReadMode {
        ReadMode::Exclusive
    }

    fn sort_with_backend<O: EquivalenceOracle>(
        &self,
        oracle: &O,
        backend: ExecutionBackend,
    ) -> EcsRun {
        let n = oracle.n();
        let mut session = ComparisonSession::with_backend(oracle, ReadMode::Exclusive, backend);
        if n == 0 {
            return EcsRun::new(Partition::from_labels::<u32>(&[]), session.into_metrics());
        }
        let mut knowledge = Knowledge::new(n);
        // cursor[x] is the next *offset* (1-based, cyclic) x will examine.
        let mut cursor: Vec<usize> = vec![1; n];
        let mut active: Vec<bool> = vec![true; n];

        while !knowledge.complete() {
            let mut progressed = false;
            for x in 0..n {
                if knowledge.complete() {
                    break;
                }
                if !active[x] {
                    continue;
                }
                if knowledge.fully_informed(x) {
                    // The group of x already knows every other group; it can
                    // learn nothing more, so x stops initiating tests.
                    active[x] = false;
                    continue;
                }
                // Advance the cursor to the next element with an unknown
                // relationship and test it.
                loop {
                    if cursor[x] >= n {
                        active[x] = false;
                        break;
                    }
                    let y = (x + cursor[x]) % n;
                    cursor[x] += 1;
                    if knowledge.knows(x, y) {
                        continue;
                    }
                    progressed = true;
                    if session.compare(x, y) {
                        knowledge.record_equal(x, y);
                    } else {
                        knowledge.record_different(x, y);
                    }
                    break;
                }
            }
            assert!(
                progressed || knowledge.complete(),
                "round-robin stalled before completing (inconsistent oracle?)"
            );
        }

        EcsRun::new(
            Partition::from_labels(&knowledge.uf.labels()),
            session.into_metrics(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_model::{Instance, InstanceOracle};
    use ecs_rng::{EcsRng, SeedableEcsRng, Xoshiro256StarStar};
    use proptest::prelude::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn classifies_small_and_degenerate_instances() {
        let mut r = rng(1);
        for &(n, k) in &[
            (1usize, 1usize),
            (2, 1),
            (2, 2),
            (3, 2),
            (50, 1),
            (50, 50),
            (60, 7),
        ] {
            let inst = Instance::balanced(n, k, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = RoundRobin::new().sort(&oracle);
            assert!(inst.verify(&run.partition), "failed for n={n}, k={k}");
        }
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::from_labels::<u32>(&[]);
        let oracle = InstanceOracle::new(&inst);
        let run = RoundRobin::new().sort(&oracle);
        assert!(run.partition.is_empty());
        assert_eq!(run.metrics.comparisons(), 0);
    }

    #[test]
    fn two_classes_interleaved() {
        let labels: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let inst = Instance::from_labels(&labels);
        let oracle = InstanceOracle::new(&inst);
        let run = RoundRobin::new().sort(&oracle);
        assert!(inst.verify(&run.partition));
    }

    #[test]
    fn uses_far_fewer_comparisons_than_all_pairs_on_few_classes() {
        let mut r = rng(2);
        let n = 600;
        let inst = Instance::balanced(n, 5, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = RoundRobin::new().sort(&oracle);
        assert!(inst.verify(&run.partition));
        let all_pairs = (n * (n - 1) / 2) as u64;
        assert!(
            run.metrics.comparisons() * 10 < all_pairs,
            "round-robin used {} comparisons, close to the {} of all-pairs",
            run.metrics.comparisons(),
            all_pairs
        );
    }

    /// Counts comparisons between each pair of true classes by re-running the
    /// algorithm against a counting oracle.
    fn per_class_pair_counts(labels: &[usize]) -> (HashMap<(usize, usize), usize>, Vec<usize>) {
        use std::sync::Mutex;

        struct CountingOracle<'a> {
            labels: &'a [usize],
            counts: Mutex<HashMap<(usize, usize), usize>>,
        }
        impl EquivalenceOracle for CountingOracle<'_> {
            fn n(&self) -> usize {
                self.labels.len()
            }
            fn same(&self, a: usize, b: usize) -> bool {
                let (la, lb) = (self.labels[a], self.labels[b]);
                let key = (la.min(lb), la.max(lb));
                *self.counts.lock().unwrap().entry(key).or_insert(0) += 1;
                la == lb
            }
        }

        let oracle = CountingOracle {
            labels,
            counts: Mutex::new(HashMap::new()),
        };
        let run = RoundRobin::new().sort(&oracle);
        let inst = Instance::from_labels(labels);
        assert!(inst.verify(&run.partition));
        let mut sizes = vec![0usize; labels.iter().max().map(|m| m + 1).unwrap_or(0)];
        for &l in labels {
            sizes[l] += 1;
        }
        (oracle.counts.into_inner().unwrap(), sizes)
    }

    #[test]
    fn per_class_pair_tests_respect_jayapaul_lemma() {
        // Lemma (Jayapaul et al., used by Theorem 7): at most 2·min(Y_i, Y_j)
        // tests between any two distinct classes.
        let mut r = rng(3);
        for trial in 0..20 {
            let n = 150 + trial * 10;
            let k = 2 + (trial % 7);
            let inst = Instance::balanced(n, k, &mut r);
            let labels: Vec<usize> = inst
                .ground_truth()
                .labels()
                .iter()
                .map(|&l| l as usize)
                .collect();
            let (counts, sizes) = per_class_pair_counts(&labels);
            for (&(i, j), &c) in &counts {
                if i == j {
                    continue;
                }
                let bound = 2 * sizes[i].min(sizes[j]);
                assert!(
                    c <= bound,
                    "trial {trial}: {c} tests between classes {i} and {j}, bound {bound}"
                );
            }
        }
    }

    #[test]
    fn within_class_tests_are_at_most_class_size() {
        // Equal answers always contract groups, so a class of size s needs at
        // most s − 1 "equal" answers... but "unknown" probes inside a class
        // are exactly the equal answers, so within-class tests ≤ s − 1 + 0.
        let mut r = rng(4);
        let inst = Instance::balanced(200, 4, &mut r);
        let labels: Vec<usize> = inst
            .ground_truth()
            .labels()
            .iter()
            .map(|&l| l as usize)
            .collect();
        let (counts, sizes) = per_class_pair_counts(&labels);
        for (&(i, j), &c) in &counts {
            if i == j {
                assert!(
                    c <= sizes[i],
                    "class {i}: {c} internal tests for size {}",
                    sizes[i]
                );
            }
        }
    }

    #[test]
    fn skewed_class_sizes_are_cheap() {
        // One giant class plus a few tiny ones: the paper's distribution
        // analysis predicts close-to-linear total comparisons.
        let mut r = rng(5);
        let mut sizes = vec![900usize];
        sizes.extend(std::iter::repeat_n(10usize, 10));
        let inst = Instance::from_class_sizes(&sizes, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let run = RoundRobin::new().sort(&oracle);
        assert!(inst.verify(&run.partition));
        let n = inst.n() as u64;
        assert!(
            run.metrics.comparisons() < 40 * n,
            "expected near-linear comparisons, got {} for n = {n}",
            run.metrics.comparisons()
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn matches_ground_truth_on_random_instances(
            labels in proptest::collection::vec(0u8..6, 1..100)
        ) {
            let inst = Instance::from_labels(&labels);
            let oracle = InstanceOracle::new(&inst);
            let run = RoundRobin::new().sort(&oracle);
            prop_assert!(inst.verify(&run.partition));
        }

        #[test]
        fn comparison_count_never_exceeds_all_pairs(
            seed in 0u64..200,
            n in 2usize..120,
            k in 1usize..10,
        ) {
            let k = k.min(n);
            let mut r = rng(seed);
            let inst = Instance::balanced(n, k, &mut r);
            let oracle = InstanceOracle::new(&inst);
            let run = RoundRobin::new().sort(&oracle);
            prop_assert!(inst.verify(&run.partition));
            prop_assert!(run.metrics.comparisons() <= (n * (n - 1) / 2) as u64);
        }
    }

    #[test]
    fn deterministic_given_identical_instances() {
        let mut r1 = rng(9);
        let mut r2 = rng(9);
        let a = Instance::balanced(300, 6, &mut r1);
        let b = Instance::balanced(300, 6, &mut r2);
        let ra = RoundRobin::new().sort(&InstanceOracle::new(&a));
        let rb = RoundRobin::new().sort(&InstanceOracle::new(&b));
        assert_eq!(ra.metrics.comparisons(), rb.metrics.comparisons());
        assert_eq!(ra.partition, rb.partition);
    }

    #[test]
    fn handles_many_singleton_classes() {
        // Stress the knowledge bookkeeping: every element its own class.
        let labels: Vec<usize> = (0..80).collect();
        let inst = Instance::from_labels(&labels);
        let oracle = InstanceOracle::new(&inst);
        let run = RoundRobin::new().sort(&oracle);
        assert!(inst.verify(&run.partition));
        assert_eq!(run.metrics.comparisons(), (80 * 79 / 2) as u64);
    }

    #[test]
    fn random_seeded_shuffle_does_not_break_lemma() {
        let mut r = rng(11);
        let mut labels: Vec<usize> = Vec::new();
        for class in 0..6 {
            let size = 5 + r.below(40);
            labels.extend(std::iter::repeat_n(class, size));
        }
        r.shuffle(&mut labels);
        let (counts, sizes) = per_class_pair_counts(&labels);
        for (&(i, j), &c) in &counts {
            if i != j {
                assert!(c <= 2 * sizes[i].min(sizes[j]));
            }
        }
    }
}
