//! The four class-size distribution families studied in the paper.

use crate::poisson::{poisson_pmf, sample_poisson};
use crate::zeta::{riemann_zeta, sample_zeta, zeta_pmf};
use ecs_rng::EcsRng;

/// A distribution over equivalence classes, indexed by non-negative integers.
///
/// Implementors expose their probability mass function, a sampler, and the
/// metadata the distribution-based analysis of Section 4 needs (mean of the
/// *rank* distribution, when finite).
pub trait ClassDistribution {
    /// A human-readable name, e.g. `"uniform(k=10)"`; used in reports.
    fn name(&self) -> String;

    /// `Pr[class = i]` for the raw (un-ranked) class index `i`.
    fn pmf(&self, i: usize) -> f64;

    /// Samples a raw class index.
    fn sample_class<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize
    where
        Self: Sized;

    /// The mean of the distribution over raw class indices, if finite.
    fn mean(&self) -> Option<f64>;

    /// Whether the pmf is already non-increasing in the class index, i.e.
    /// whether raw indices coincide with ranks (true for every family here
    /// except Poisson, whose mode sits near `λ`).
    fn is_rank_ordered(&self) -> bool;

    /// The kind tag, for dispatching in experiment configuration.
    fn kind(&self) -> DistributionKind;
}

/// Discriminates the four families used in the paper's experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DistributionKind {
    /// Discrete uniform over `k` classes.
    Uniform,
    /// Geometric with success probability `p` (class `i` has mass `p^i (1-p)`
    /// under the paper's convention of counting heads with probability `p`).
    Geometric,
    /// Poisson with mean `λ`.
    Poisson,
    /// Zeta (Zipf) with exponent `s > 1`.
    Zeta,
}

impl std::fmt::Display for DistributionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DistributionKind::Uniform => "uniform",
            DistributionKind::Geometric => "geometric",
            DistributionKind::Poisson => "poisson",
            DistributionKind::Zeta => "zeta",
        };
        write!(f, "{name}")
    }
}

/// Discrete uniform distribution over `k` equally likely classes.
#[derive(Debug, Clone, Copy)]
pub struct UniformClasses {
    k: usize,
}

impl UniformClasses {
    /// Creates a uniform distribution over `k ≥ 1` classes.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "uniform distribution needs at least one class");
        Self { k }
    }

    /// The number of classes.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ClassDistribution for UniformClasses {
    fn name(&self) -> String {
        format!("uniform(k={})", self.k)
    }

    fn pmf(&self, i: usize) -> f64 {
        if i < self.k {
            1.0 / self.k as f64
        } else {
            0.0
        }
    }

    fn sample_class<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.below(self.k)
    }

    fn mean(&self) -> Option<f64> {
        Some((self.k as f64 - 1.0) / 2.0)
    }

    fn is_rank_ordered(&self) -> bool {
        true
    }

    fn kind(&self) -> DistributionKind {
        DistributionKind::Uniform
    }
}

/// Geometric distribution: class `i` has probability `p^i (1 − p)`.
///
/// This follows the paper's convention — an element "flips a biased coin where
/// heads occurs with probability `p` until it comes up tails" and its class is
/// the number of heads — so *smaller* `p` means *fewer*, *larger* classes.
#[derive(Debug, Clone, Copy)]
pub struct GeometricClasses {
    p: f64,
}

impl GeometricClasses {
    /// Creates a geometric distribution with heads probability `p ∈ (0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p < 1.0,
            "geometric parameter must lie in (0,1), got {p}"
        );
        Self { p }
    }

    /// The heads probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl ClassDistribution for GeometricClasses {
    fn name(&self) -> String {
        format!("geometric(p={})", self.p)
    }

    fn pmf(&self, i: usize) -> f64 {
        self.p.powi(i as i32) * (1.0 - self.p)
    }

    fn sample_class<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize {
        // Inverse transform: the number of heads before the first tail is
        // floor(ln U / ln p) for U uniform in (0,1).
        let u = rng.f64_open();
        let x = u.ln() / self.p.ln();
        // Guard against pathological rounding for p close to 1.
        x.floor().clamp(0.0, 1e18) as usize
    }

    fn mean(&self) -> Option<f64> {
        Some(self.p / (1.0 - self.p))
    }

    fn is_rank_ordered(&self) -> bool {
        true
    }

    fn kind(&self) -> DistributionKind {
        DistributionKind::Geometric
    }
}

/// Poisson distribution: class `i` has probability `λ^i e^{-λ} / i!`.
#[derive(Debug, Clone, Copy)]
pub struct PoissonClasses {
    lambda: f64,
}

impl PoissonClasses {
    /// Creates a Poisson distribution with mean `λ > 0`.
    pub fn new(lambda: f64) -> Self {
        assert!(
            lambda > 0.0,
            "poisson parameter must be positive, got {lambda}"
        );
        Self { lambda }
    }

    /// The mean `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl ClassDistribution for PoissonClasses {
    fn name(&self) -> String {
        format!("poisson(lambda={})", self.lambda)
    }

    fn pmf(&self, i: usize) -> f64 {
        poisson_pmf(self.lambda, i)
    }

    fn sample_class<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_poisson(self.lambda, rng)
    }

    fn mean(&self) -> Option<f64> {
        Some(self.lambda)
    }

    fn is_rank_ordered(&self) -> bool {
        // The Poisson pmf increases up to ~λ before decreasing, so raw class
        // indices are not ranks unless λ < 1.
        self.lambda < 1.0
    }

    fn kind(&self) -> DistributionKind {
        DistributionKind::Poisson
    }
}

/// Zeta (Zipf) distribution: class `i` has probability `(i+1)^{-s} / ζ(s)`.
#[derive(Debug, Clone, Copy)]
pub struct ZetaClasses {
    s: f64,
    zeta_s: f64,
}

impl ZetaClasses {
    /// Creates a zeta distribution with exponent `s > 1`.
    pub fn new(s: f64) -> Self {
        assert!(s > 1.0, "zeta parameter must exceed 1, got {s}");
        Self {
            s,
            zeta_s: riemann_zeta(s),
        }
    }

    /// The exponent `s`.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// The normalizing constant `ζ(s)`.
    pub fn zeta_s(&self) -> f64 {
        self.zeta_s
    }
}

impl ClassDistribution for ZetaClasses {
    fn name(&self) -> String {
        format!("zeta(s={})", self.s)
    }

    fn pmf(&self, i: usize) -> f64 {
        zeta_pmf(self.s, self.zeta_s, i)
    }

    fn sample_class<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize {
        sample_zeta(self.s, rng)
    }

    fn mean(&self) -> Option<f64> {
        // The mean of the 1-based Zipf variate is ζ(s−1)/ζ(s) for s > 2; our
        // classes are 0-based, hence the −1. For s ≤ 2 the mean diverges.
        if self.s > 2.0 {
            Some(riemann_zeta(self.s - 1.0) / self.zeta_s - 1.0)
        } else {
            None
        }
    }

    fn is_rank_ordered(&self) -> bool {
        true
    }

    fn kind(&self) -> DistributionKind {
        DistributionKind::Zeta
    }
}

/// A type-erased distribution covering all four families, so experiment
/// configuration can hold heterogeneous lists.
#[derive(Debug, Clone, Copy)]
pub enum AnyDistribution {
    /// Uniform over `k` classes.
    Uniform(UniformClasses),
    /// Geometric with parameter `p`.
    Geometric(GeometricClasses),
    /// Poisson with parameter `λ`.
    Poisson(PoissonClasses),
    /// Zeta with exponent `s`.
    Zeta(ZetaClasses),
}

impl AnyDistribution {
    /// Builds the paper's uniform configuration.
    pub fn uniform(k: usize) -> Self {
        Self::Uniform(UniformClasses::new(k))
    }

    /// Builds the paper's geometric configuration.
    pub fn geometric(p: f64) -> Self {
        Self::Geometric(GeometricClasses::new(p))
    }

    /// Builds the paper's Poisson configuration.
    pub fn poisson(lambda: f64) -> Self {
        Self::Poisson(PoissonClasses::new(lambda))
    }

    /// Builds the paper's zeta configuration.
    pub fn zeta(s: f64) -> Self {
        Self::Zeta(ZetaClasses::new(s))
    }
}

impl ClassDistribution for AnyDistribution {
    fn name(&self) -> String {
        match self {
            Self::Uniform(d) => d.name(),
            Self::Geometric(d) => d.name(),
            Self::Poisson(d) => d.name(),
            Self::Zeta(d) => d.name(),
        }
    }

    fn pmf(&self, i: usize) -> f64 {
        match self {
            Self::Uniform(d) => d.pmf(i),
            Self::Geometric(d) => d.pmf(i),
            Self::Poisson(d) => d.pmf(i),
            Self::Zeta(d) => d.pmf(i),
        }
    }

    fn sample_class<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            Self::Uniform(d) => d.sample_class(rng),
            Self::Geometric(d) => d.sample_class(rng),
            Self::Poisson(d) => d.sample_class(rng),
            Self::Zeta(d) => d.sample_class(rng),
        }
    }

    fn mean(&self) -> Option<f64> {
        match self {
            Self::Uniform(d) => d.mean(),
            Self::Geometric(d) => d.mean(),
            Self::Poisson(d) => d.mean(),
            Self::Zeta(d) => d.mean(),
        }
    }

    fn is_rank_ordered(&self) -> bool {
        match self {
            Self::Uniform(d) => d.is_rank_ordered(),
            Self::Geometric(d) => d.is_rank_ordered(),
            Self::Poisson(d) => d.is_rank_ordered(),
            Self::Zeta(d) => d.is_rank_ordered(),
        }
    }

    fn kind(&self) -> DistributionKind {
        match self {
            Self::Uniform(d) => d.kind(),
            Self::Geometric(d) => d.kind(),
            Self::Poisson(d) => d.kind(),
            Self::Zeta(d) => d.kind(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    fn empirical_mean<D: ClassDistribution>(d: &D, n: usize, seed: u64) -> f64 {
        let mut r = rng(seed);
        (0..n).map(|_| d.sample_class(&mut r) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn uniform_pmf_and_mean() {
        let d = UniformClasses::new(4);
        assert_eq!(d.pmf(0), 0.25);
        assert_eq!(d.pmf(3), 0.25);
        assert_eq!(d.pmf(4), 0.0);
        assert_eq!(d.mean(), Some(1.5));
        let m = empirical_mean(&d, 100_000, 1);
        assert!((m - 1.5).abs() < 0.02);
    }

    #[test]
    fn uniform_samples_cover_support() {
        let d = UniformClasses::new(10);
        let mut r = rng(2);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            seen[d.sample_class(&mut r)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn uniform_rejects_zero_classes() {
        let _ = UniformClasses::new(0);
    }

    #[test]
    fn geometric_pmf_sums_to_one_and_mean_matches() {
        for &p in &[0.5, 0.1, 0.02] {
            let d = GeometricClasses::new(p);
            let total: f64 = (0..2000).map(|i| d.pmf(i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "p={p}: total {total}");
            let expected = p / (1.0 - p);
            assert_eq!(d.mean(), Some(expected));
            let m = empirical_mean(&d, 200_000, 3);
            assert!(
                (m - expected).abs() < 0.05 * expected.max(0.2),
                "p={p}: empirical mean {m} vs {expected}"
            );
        }
    }

    #[test]
    fn geometric_paper_parameters_have_small_means() {
        // The paper's p values (1/2, 1/10, 1/50) mean most elements land in
        // class 0, i.e. a giant first equivalence class.
        for &p in &[0.5, 0.1, 0.02] {
            let d = GeometricClasses::new(p);
            assert!(d.pmf(0) > 0.5 - 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "in (0,1)")]
    fn geometric_rejects_bad_parameter() {
        let _ = GeometricClasses::new(1.0);
    }

    #[test]
    fn poisson_mean_and_rank_orderedness() {
        let d = PoissonClasses::new(5.0);
        assert_eq!(d.mean(), Some(5.0));
        assert!(!d.is_rank_ordered());
        let d_small = PoissonClasses::new(0.5);
        assert!(d_small.is_rank_ordered());
        let m = empirical_mean(&d, 100_000, 4);
        assert!((m - 5.0).abs() < 0.05);
    }

    #[test]
    fn zeta_mean_finite_only_above_two() {
        assert!(ZetaClasses::new(2.5).mean().is_some());
        assert!(ZetaClasses::new(2.0).mean().is_none());
        assert!(ZetaClasses::new(1.5).mean().is_none());
    }

    #[test]
    fn zeta_empirical_mean_matches_theory_for_s_2_5() {
        let d = ZetaClasses::new(2.5);
        let expected = d.mean().unwrap();
        let m = empirical_mean(&d, 400_000, 5);
        assert!(
            (m - expected).abs() < 0.05 * expected.max(1.0),
            "empirical {m} vs expected {expected}"
        );
    }

    #[test]
    fn any_distribution_delegates() {
        let all = [
            AnyDistribution::uniform(10),
            AnyDistribution::geometric(0.1),
            AnyDistribution::poisson(5.0),
            AnyDistribution::zeta(2.0),
        ];
        let kinds: Vec<DistributionKind> = all.iter().map(|d| d.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                DistributionKind::Uniform,
                DistributionKind::Geometric,
                DistributionKind::Poisson,
                DistributionKind::Zeta
            ]
        );
        let mut r = rng(6);
        for d in &all {
            let name = d.name();
            assert!(!name.is_empty());
            let x = d.sample_class(&mut r);
            assert!(d.pmf(x) >= 0.0);
        }
    }

    #[test]
    fn pmfs_are_nonincreasing_when_rank_ordered() {
        let dists = [
            AnyDistribution::uniform(25),
            AnyDistribution::geometric(0.5),
            AnyDistribution::zeta(1.5),
        ];
        for d in &dists {
            assert!(d.is_rank_ordered());
            for i in 0..50 {
                assert!(
                    d.pmf(i) >= d.pmf(i + 1) - 1e-15,
                    "{} pmf increases at {i}",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn display_of_kinds() {
        assert_eq!(DistributionKind::Uniform.to_string(), "uniform");
        assert_eq!(DistributionKind::Zeta.to_string(), "zeta");
    }
}
