//! The rank distribution `D_N` and its cut-off `D_N(n)`.
//!
//! Section 4 of the paper renumbers the equivalence classes of a distribution
//! `D` from most likely to least likely (`D_N`, a distribution on ranks) and
//! then "piles up" all mass of ranks `≥ n` onto the single value `n`
//! (`D_N(n)`). Theorem 7 shows the round-robin algorithm's total comparisons
//! are stochastically dominated by twice the sum of `n` draws from `D_N(n)`.

use crate::class_distribution::ClassDistribution;
use ecs_rng::EcsRng;

/// A class distribution re-indexed by rank (most probable class first).
///
/// For the uniform, geometric, and zeta families the raw class indices are
/// already ranks. The Poisson family is unimodal with mode near `λ`, so its
/// classes must genuinely be re-sorted; the sort is performed over a finite
/// support window large enough that the excluded tail mass is far below any
/// quantity the experiments can resolve.
#[derive(Debug, Clone)]
pub struct RankDistribution<D> {
    dist: D,
    /// `order[r]` = raw class index of rank `r`, for ranks inside the window.
    order: Vec<usize>,
    /// `rank_of[c]` = rank of raw class `c`, for classes inside the window.
    rank_of: Vec<usize>,
}

impl<D: ClassDistribution> RankDistribution<D> {
    /// Default support window used when re-sorting is required.
    pub const DEFAULT_SUPPORT: usize = 4096;

    /// Builds the rank distribution with the default support window.
    pub fn new(dist: D) -> Self {
        Self::with_support(dist, Self::DEFAULT_SUPPORT)
    }

    /// Builds the rank distribution, sorting the first `support` classes by
    /// probability (descending). Classes outside the window keep their raw
    /// index as their rank, which is correct whenever the pmf is eventually
    /// non-increasing (true for all four families).
    pub fn with_support(dist: D, support: usize) -> Self {
        let support = support.max(1);
        if dist.is_rank_ordered() {
            return Self {
                dist,
                order: Vec::new(),
                rank_of: Vec::new(),
            };
        }
        let mut order: Vec<usize> = (0..support).collect();
        // Stable sort by descending pmf; ties broken by smaller class index so
        // the ranking is deterministic.
        order.sort_by(|&a, &b| {
            dist.pmf(b)
                .partial_cmp(&dist.pmf(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut rank_of = vec![0usize; support];
        for (rank, &class) in order.iter().enumerate() {
            rank_of[class] = rank;
        }
        Self {
            dist,
            order,
            rank_of,
        }
    }

    /// The underlying distribution.
    pub fn inner(&self) -> &D {
        &self.dist
    }

    /// Maps a raw class index to its rank.
    pub fn rank_of_class(&self, class: usize) -> usize {
        if self.rank_of.is_empty() || class >= self.rank_of.len() {
            class
        } else {
            self.rank_of[class]
        }
    }

    /// Maps a rank back to its raw class index.
    pub fn class_of_rank(&self, rank: usize) -> usize {
        if self.order.is_empty() || rank >= self.order.len() {
            rank
        } else {
            self.order[rank]
        }
    }

    /// `Pr[rank = r]`.
    pub fn pmf_of_rank(&self, rank: usize) -> f64 {
        self.dist.pmf(self.class_of_rank(rank))
    }

    /// Samples a rank.
    pub fn sample_rank<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize {
        self.rank_of_class(self.dist.sample_class(rng))
    }
}

/// The distribution `D_N(n)`: ranks below `n` keep their probability, and all
/// remaining mass sits on the value `n` itself.
#[derive(Debug, Clone)]
pub struct CutoffDistribution<D> {
    ranks: RankDistribution<D>,
    n: usize,
}

impl<D: ClassDistribution> CutoffDistribution<D> {
    /// Builds `D_N(n)` from a raw class distribution.
    pub fn new(dist: D, n: usize) -> Self {
        Self {
            ranks: RankDistribution::new(dist),
            n,
        }
    }

    /// Builds `D_N(n)` from an already-constructed rank distribution.
    pub fn from_ranks(ranks: RankDistribution<D>, n: usize) -> Self {
        Self { ranks, n }
    }

    /// The cut-off point `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The underlying rank distribution.
    pub fn ranks(&self) -> &RankDistribution<D> {
        &self.ranks
    }

    /// `Pr[X = i]` for the cut-off variable: the rank pmf below `n`, the whole
    /// tail mass at `i = n`, and zero above.
    pub fn pmf(&self, i: usize) -> f64 {
        use std::cmp::Ordering;
        match i.cmp(&self.n) {
            Ordering::Less => self.ranks.pmf_of_rank(i),
            Ordering::Equal => {
                let below: f64 = (0..self.n).map(|r| self.ranks.pmf_of_rank(r)).sum();
                (1.0 - below).max(0.0)
            }
            Ordering::Greater => 0.0,
        }
    }

    /// Samples a draw from `D_N(n)`: the rank of a class sample, clamped to `n`.
    pub fn sample<R: EcsRng + ?Sized>(&self, rng: &mut R) -> usize {
        self.ranks.sample_rank(rng).min(self.n)
    }

    /// The exact mean `E[X] = Σ_{i<n} i·Pr[rank=i] + n·Pr[rank ≥ n]`.
    pub fn mean(&self) -> f64 {
        let mut mean = 0.0;
        let mut below = 0.0;
        for i in 0..self.n {
            let p = self.ranks.pmf_of_rank(i);
            mean += i as f64 * p;
            below += p;
        }
        mean + self.n as f64 * (1.0 - below).max(0.0)
    }

    /// The sum of `count` independent draws.
    pub fn sample_sum<R: EcsRng + ?Sized>(&self, count: usize, rng: &mut R) -> u64 {
        (0..count).map(|_| self.sample(rng) as u64).sum()
    }

    /// The upper bound of Theorem 7 for an `n`-element instance: twice the sum
    /// of `n` draws from this distribution.
    pub fn theorem7_bound<R: EcsRng + ?Sized>(&self, rng: &mut R) -> u64 {
        2 * self.sample_sum(self.n, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class_distribution::{
        GeometricClasses, PoissonClasses, UniformClasses, ZetaClasses,
    };
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn rank_ordered_families_use_identity_ranking() {
        let u = RankDistribution::new(UniformClasses::new(10));
        let g = RankDistribution::new(GeometricClasses::new(0.5));
        let z = RankDistribution::new(ZetaClasses::new(2.0));
        for c in 0..20 {
            assert_eq!(u.rank_of_class(c), c);
            assert_eq!(g.rank_of_class(c), c);
            assert_eq!(z.rank_of_class(c), c);
            assert_eq!(u.class_of_rank(c), c);
        }
    }

    #[test]
    fn poisson_ranking_puts_mode_first() {
        let lambda = 25.0;
        let ranks = RankDistribution::new(PoissonClasses::new(lambda));
        // Rank 0 must be one of the two modes (24 or 25).
        let top = ranks.class_of_rank(0);
        assert!((24..=25).contains(&top), "rank 0 is class {top}");
        // pmf must be non-increasing in rank.
        for r in 0..100 {
            assert!(
                ranks.pmf_of_rank(r) >= ranks.pmf_of_rank(r + 1) - 1e-15,
                "pmf increases at rank {r}"
            );
        }
        // rank_of_class and class_of_rank are inverse on the window.
        for c in 0..200 {
            assert_eq!(ranks.class_of_rank(ranks.rank_of_class(c)), c);
        }
    }

    #[test]
    fn poisson_rank_samples_are_stochastically_smaller_than_raw() {
        // Ranking can only move probability toward smaller values.
        let d = PoissonClasses::new(25.0);
        let ranks = RankDistribution::new(d);
        let mut r = rng(3);
        let n = 50_000;
        let raw_mean: f64 = (0..n).map(|_| d.sample_class(&mut r) as f64).sum::<f64>() / n as f64;
        let rank_mean: f64 = (0..n)
            .map(|_| ranks.sample_rank(&mut r) as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            rank_mean < raw_mean,
            "rank mean {rank_mean} should be below raw mean {raw_mean}"
        );
    }

    #[test]
    fn cutoff_pmf_sums_to_one_and_tail_is_piled_up() {
        let cutoff = CutoffDistribution::new(GeometricClasses::new(0.9), 5);
        let total: f64 = (0..=5).map(|i| cutoff.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // With p = 0.9 a lot of mass lies beyond rank 5.
        assert!(cutoff.pmf(5) > 0.5, "tail mass {}", cutoff.pmf(5));
        assert_eq!(cutoff.pmf(6), 0.0);
    }

    #[test]
    fn cutoff_samples_never_exceed_n() {
        let cutoff = CutoffDistribution::new(ZetaClasses::new(1.1), 50);
        let mut r = rng(4);
        for _ in 0..20_000 {
            assert!(cutoff.sample(&mut r) <= 50);
        }
    }

    #[test]
    fn cutoff_mean_matches_empirical() {
        let cutoff = CutoffDistribution::new(GeometricClasses::new(0.5), 30);
        let exact = cutoff.mean();
        let mut r = rng(5);
        let n = 200_000;
        let empirical = (0..n).map(|_| cutoff.sample(&mut r) as f64).sum::<f64>() / n as f64;
        assert!(
            (exact - empirical).abs() < 0.02,
            "exact {exact} vs empirical {empirical}"
        );
        // For geometric(0.5) the mean of the untruncated variable is 1, and
        // truncation at 30 barely matters.
        assert!((exact - 1.0).abs() < 0.01);
    }

    #[test]
    fn uniform_cutoff_mean_is_class_mean_when_n_exceeds_k() {
        let cutoff = CutoffDistribution::new(UniformClasses::new(10), 100);
        assert!((cutoff.mean() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn theorem7_bound_is_positive_and_scales_with_n() {
        let mut r = rng(6);
        let small = CutoffDistribution::new(UniformClasses::new(10), 100);
        let large = CutoffDistribution::new(UniformClasses::new(10), 10_000);
        let b_small = small.theorem7_bound(&mut r);
        let b_large = large.theorem7_bound(&mut r);
        assert!(b_small > 0);
        assert!(
            b_large > 10 * b_small,
            "bound should grow roughly linearly in n"
        );
    }

    #[test]
    fn sample_sum_is_deterministic_per_seed() {
        let cutoff = CutoffDistribution::new(PoissonClasses::new(5.0), 1000);
        let a = cutoff.sample_sum(500, &mut rng(7));
        let b = cutoff.sample_sum(500, &mut rng(7));
        assert_eq!(a, b);
    }
}
