//! Equivalence-class size distributions and their analysis.
//!
//! Section 4 of the paper studies equivalence class sorting when the class of
//! each element is drawn independently from a known distribution `D` over a
//! countable set of classes. The paper works with four concrete families —
//! discrete uniform, geometric, Poisson, and zeta — and with two derived
//! distributions:
//!
//! * `D_N`, the *rank* distribution: classes renumbered `0, 1, 2, …` from most
//!   likely to least likely;
//! * `D_N(n)`, the rank distribution *cut off* at `n`: all tail mass
//!   `Pr[rank ≥ n]` is piled onto the single value `n`.
//!
//! Theorem 7 bounds the comparisons of the round-robin algorithm by twice the
//! sum of `n` draws from `D_N(n)`; Theorems 8–9 instantiate that bound for the
//! concrete families. This crate implements the distributions, their samplers,
//! the rank/cut-off constructions, and the tail bounds used in those theorems,
//! so the experiments of Section 5 can be regenerated and checked.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod class_distribution;
pub mod cutoff;
pub mod poisson;
pub mod tail_bounds;
pub mod zeta;

pub use class_distribution::{
    ClassDistribution, DistributionKind, GeometricClasses, PoissonClasses, UniformClasses,
    ZetaClasses,
};
pub use cutoff::{CutoffDistribution, RankDistribution};
pub use zeta::riemann_zeta;

use ecs_rng::EcsRng;

/// Samples class labels for `n` elements, each drawn independently from the
/// given distribution. The returned labels are raw class indices (not ranks).
pub fn sample_labels<D: ClassDistribution, R: EcsRng + ?Sized>(
    dist: &D,
    n: usize,
    rng: &mut R,
) -> Vec<usize> {
    (0..n).map(|_| dist.sample_class(rng)).collect()
}

/// Counts how many elements landed in each class, returning a dense map from
/// class index to count (indices never observed are absent).
pub fn class_histogram(labels: &[usize]) -> std::collections::BTreeMap<usize, usize> {
    let mut hist = std::collections::BTreeMap::new();
    for &label in labels {
        *hist.entry(label).or_insert(0usize) += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn sample_labels_length_and_histogram_total() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let dist = UniformClasses::new(5);
        let labels = sample_labels(&dist, 1000, &mut rng);
        assert_eq!(labels.len(), 1000);
        let hist = class_histogram(&labels);
        assert_eq!(hist.values().sum::<usize>(), 1000);
        assert!(hist.keys().all(|&k| k < 5));
    }

    #[test]
    fn histogram_of_empty_labels_is_empty() {
        assert!(class_histogram(&[]).is_empty());
    }
}
