//! Poisson sampling and probability mass evaluation.

use ecs_rng::EcsRng;

/// The Poisson probability mass function `Pr[X = i] = λ^i e^{-λ} / i!`,
/// evaluated in log-space to stay accurate for large `i` or `λ`.
pub fn poisson_pmf(lambda: f64, i: usize) -> f64 {
    assert!(lambda > 0.0, "poisson_pmf requires lambda > 0");
    let i_f = i as f64;
    let log_p = i_f * lambda.ln() - lambda - ln_factorial(i);
    log_p.exp()
}

/// Natural log of `i!` via `ln Γ(i + 1)` (Lanczos-free: exact summation for
/// small `i`, Stirling's series for large `i`).
pub fn ln_factorial(i: usize) -> f64 {
    if i < 128 {
        (1..=i).map(|j| (j as f64).ln()).sum()
    } else {
        // Stirling's series with the first three correction terms — accurate
        // to ~1e-12 for i >= 128.
        let n = i as f64;
        n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
            - 1.0 / (360.0 * n.powi(3))
    }
}

/// Samples a Poisson variate with mean `lambda`.
///
/// For small means it uses Knuth's product-of-uniforms method; for large means
/// (where `e^{-λ}` underflows usefulness) it falls back to summing independent
/// Poisson variates of mean ≤ 16, which is exact in distribution because the
/// Poisson family is closed under convolution. The experiment parameters in
/// the paper (λ ∈ {1, 5, 25}) stay well inside comfortable territory either
/// way.
pub fn sample_poisson<R: EcsRng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    assert!(lambda > 0.0, "sample_poisson requires lambda > 0");
    if lambda <= 16.0 {
        knuth_poisson(lambda, rng)
    } else {
        // Split λ into chunks of at most 16 and sum the independent draws.
        let chunks = (lambda / 16.0).ceil() as usize;
        let per_chunk = lambda / chunks as f64;
        (0..chunks).map(|_| knuth_poisson(per_chunk, rng)).sum()
    }
}

fn knuth_poisson<R: EcsRng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    let threshold = (-lambda).exp();
    let mut count = 0usize;
    let mut product = rng.f64_open();
    while product > threshold {
        count += 1;
        product *= rng.f64_open();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn ln_factorial_small_values() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
        assert!((ln_factorial(10) - 3628800f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn ln_factorial_stirling_continuity() {
        // The exact and Stirling branches should agree where they meet.
        let exact: f64 = (1..=127).map(|j| (j as f64).ln()).sum();
        let l127 = ln_factorial(127);
        let l128 = ln_factorial(128);
        assert!((l127 - exact).abs() < 1e-9);
        assert!((l128 - (exact + 128f64.ln())).abs() < 1e-8);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &lambda in &[0.5, 1.0, 5.0, 25.0] {
            let total: f64 = (0..400).map(|i| poisson_pmf(lambda, i)).sum();
            assert!((total - 1.0).abs() < 1e-9, "lambda={lambda}: total {total}");
        }
    }

    #[test]
    fn pmf_peaks_near_lambda() {
        let lambda = 25.0;
        let argmax = (0..100)
            .max_by(|&a, &b| {
                poisson_pmf(lambda, a)
                    .partial_cmp(&poisson_pmf(lambda, b))
                    .unwrap()
            })
            .unwrap();
        assert!((24..=25).contains(&argmax), "mode at {argmax}");
    }

    #[test]
    fn sampler_mean_and_variance() {
        for &lambda in &[1.0, 5.0, 25.0, 40.0] {
            let mut rng = Xoshiro256StarStar::seed_from_u64(lambda as u64 + 3);
            let n = 100_000;
            let samples: Vec<f64> = (0..n)
                .map(|_| sample_poisson(lambda, &mut rng) as f64)
                .collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "lambda={lambda}: mean {mean}"
            );
            assert!(
                (var - lambda).abs() < 0.1 * lambda.max(1.0),
                "lambda={lambda}: variance {var}"
            );
        }
    }

    #[test]
    fn sampler_matches_pmf_for_small_values() {
        let lambda = 5.0;
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let n = 200_000;
        let mut counts = [0usize; 12];
        for _ in 0..n {
            let x = sample_poisson(lambda, &mut rng);
            if x < counts.len() {
                counts[x] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = poisson_pmf(lambda, i);
            let observed = c as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "i={i}: observed {observed} vs expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "lambda > 0")]
    fn zero_lambda_rejected() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let _ = sample_poisson(0.0, &mut rng);
    }
}
