//! The tail bounds behind Theorems 8 and 9.
//!
//! Theorem 8 shows that for uniform, geometric, and Poisson class
//! distributions the total number of comparisons of the round-robin algorithm
//! is linear with exponentially high probability, by bounding the sum of `n`
//! draws from `D_N` with Chernoff bounds. Theorem 9 shows linear *expected*
//! work for the zeta distribution with `s > 2`. This module packages those
//! bounds so the experiment harness can print "paper bound vs. measured"
//! columns next to every run.

use crate::class_distribution::{
    ClassDistribution, DistributionKind, GeometricClasses, PoissonClasses, UniformClasses,
    ZetaClasses,
};
use crate::zeta::riemann_zeta;

/// A high-probability linear bound on the sum of `n` draws from a rank
/// distribution, in the form `Pr[S_n > threshold] ≤ failure_probability`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SumTailBound {
    /// The sum threshold (the paper's linear bound on Σ V_i).
    pub threshold: f64,
    /// The probability that the sum exceeds the threshold.
    pub failure_probability: f64,
}

impl SumTailBound {
    /// The corresponding bound on total comparisons via Theorem 7 (twice the
    /// sum bound).
    pub fn comparison_threshold(&self) -> f64 {
        2.0 * self.threshold
    }
}

/// Theorem 8, uniform case: the sum of `n` draws from a uniform distribution
/// over `k` classes is at most `n(k−1)` deterministically.
pub fn uniform_sum_bound(dist: &UniformClasses, n: usize) -> SumTailBound {
    SumTailBound {
        threshold: n as f64 * (dist.k() as f64 - 1.0),
        failure_probability: 0.0,
    }
}

/// Theorem 8, geometric case: `Pr[X > (2/p)·n] ≤ e^{−np}` where `X` is the sum
/// of `n` geometric draws with parameter `p`.
pub fn geometric_sum_bound(dist: &GeometricClasses, n: usize) -> SumTailBound {
    let p = dist.p();
    SumTailBound {
        threshold: 2.0 / p * n as f64,
        failure_probability: (-(n as f64) * p).exp(),
    }
}

/// Theorem 8, Poisson case: `Pr[Y > (λ(e−1)+1)·n] ≤ e^{−n}` where `Y` is the
/// sum of `n` Poisson draws with mean `λ`.
pub fn poisson_sum_bound(dist: &PoissonClasses, n: usize) -> SumTailBound {
    let lambda = dist.lambda();
    let e = std::f64::consts::E;
    SumTailBound {
        threshold: (lambda * (e - 1.0) + 1.0) * n as f64,
        failure_probability: (-(n as f64)).exp(),
    }
}

/// Theorem 9, zeta case with `s > 2`: the *expected* sum of `n` draws is
/// `n·(ζ(s−1)/ζ(s) − 1)` (0-based ranks), so expected work is linear. No high
/// probability bound is claimed by the paper — that is one of its open
/// questions — so the failure probability is reported as 1.0 ("no guarantee").
pub fn zeta_expected_sum(dist: &ZetaClasses, n: usize) -> Option<SumTailBound> {
    if dist.s() <= 2.0 {
        return None;
    }
    let mean = riemann_zeta(dist.s() - 1.0) / dist.zeta_s() - 1.0;
    Some(SumTailBound {
        threshold: mean * n as f64,
        failure_probability: 1.0,
    })
}

/// The linear-work threshold the paper proves for a given distribution, if it
/// proves one: the comparison bound (2 × sum bound) for uniform, geometric,
/// and Poisson, the expectation for zeta with `s > 2`, and `None` otherwise
/// (zeta with `s ≤ 2`, the open case the experiments probe).
pub fn paper_comparison_bound<D>(dist: &D, n: usize) -> Option<SumTailBound>
where
    D: ClassDistribution + Clone + 'static,
{
    // Dispatch on the kind tag so the function also works through
    // `AnyDistribution`.
    match dist.kind() {
        DistributionKind::Uniform => {
            let mean = dist.mean()?;
            let k = (2.0 * mean + 1.0).round() as usize;
            Some(uniform_sum_bound(&UniformClasses::new(k.max(1)), n))
        }
        DistributionKind::Geometric => {
            let mean = dist.mean()?;
            // mean = p / (1 - p)  =>  p = mean / (1 + mean)
            let p = mean / (1.0 + mean);
            Some(geometric_sum_bound(&GeometricClasses::new(p), n))
        }
        DistributionKind::Poisson => {
            let lambda = dist.mean()?;
            Some(poisson_sum_bound(&PoissonClasses::new(lambda), n))
        }
        DistributionKind::Zeta => {
            // Recover s from the pmf ratio p(0)/p(1) = 2^s.
            let ratio = dist.pmf(0) / dist.pmf(1);
            let s = ratio.log2();
            if s > 2.0 {
                zeta_expected_sum(&ZetaClasses::new(s), n)
            } else {
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class_distribution::AnyDistribution;
    use crate::cutoff::CutoffDistribution;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn uniform_bound_is_deterministic_max() {
        let d = UniformClasses::new(10);
        let b = uniform_sum_bound(&d, 1000);
        assert_eq!(b.threshold, 9000.0);
        assert_eq!(b.failure_probability, 0.0);
        assert_eq!(b.comparison_threshold(), 18_000.0);
    }

    #[test]
    fn geometric_bound_matches_paper_formula() {
        let d = GeometricClasses::new(0.1);
        let b = geometric_sum_bound(&d, 100);
        assert!((b.threshold - 2000.0).abs() < 1e-9);
        assert!((b.failure_probability - (-10.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn poisson_bound_matches_paper_formula() {
        let d = PoissonClasses::new(5.0);
        let n = 50;
        let b = poisson_sum_bound(&d, n);
        let e = std::f64::consts::E;
        assert!((b.threshold - (5.0 * (e - 1.0) + 1.0) * 50.0).abs() < 1e-9);
        assert!((b.failure_probability - (-(n as f64)).exp()).abs() < 1e-18);
    }

    #[test]
    fn zeta_expected_sum_only_above_two() {
        assert!(zeta_expected_sum(&ZetaClasses::new(2.5), 10).is_some());
        assert!(zeta_expected_sum(&ZetaClasses::new(2.0), 10).is_none());
        assert!(zeta_expected_sum(&ZetaClasses::new(1.5), 10).is_none());
    }

    #[test]
    fn bounds_hold_empirically_for_sampled_sums() {
        // The Chernoff thresholds are loose, so sampled sums should sit
        // comfortably below them.
        let n = 2000usize;
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);

        let geo = GeometricClasses::new(0.1);
        let bound = geometric_sum_bound(&geo, n);
        let cut = CutoffDistribution::new(geo, n);
        let sum = cut.sample_sum(n, &mut rng) as f64;
        assert!(
            sum < bound.threshold,
            "geometric sum {sum} vs threshold {}",
            bound.threshold
        );

        let poi = PoissonClasses::new(25.0);
        let bound = poisson_sum_bound(&poi, n);
        let cut = CutoffDistribution::new(poi, n);
        let sum = cut.sample_sum(n, &mut rng) as f64;
        assert!(
            sum < bound.threshold,
            "poisson sum {sum} vs threshold {}",
            bound.threshold
        );

        let uni = UniformClasses::new(25);
        let bound = uniform_sum_bound(&uni, n);
        let cut = CutoffDistribution::new(uni, n);
        let sum = cut.sample_sum(n, &mut rng) as f64;
        assert!(sum <= bound.threshold);
    }

    #[test]
    fn paper_bound_dispatch_covers_all_kinds() {
        let n = 100;
        assert!(paper_comparison_bound(&AnyDistribution::uniform(10), n).is_some());
        assert!(paper_comparison_bound(&AnyDistribution::geometric(0.5), n).is_some());
        assert!(paper_comparison_bound(&AnyDistribution::poisson(5.0), n).is_some());
        assert!(paper_comparison_bound(&AnyDistribution::zeta(2.5), n).is_some());
        assert!(paper_comparison_bound(&AnyDistribution::zeta(1.5), n).is_none());
    }

    #[test]
    fn dispatched_geometric_bound_recovers_parameter() {
        let direct = geometric_sum_bound(&GeometricClasses::new(0.02), 500);
        let via_any = paper_comparison_bound(&AnyDistribution::geometric(0.02), 500).unwrap();
        assert!((direct.threshold - via_any.threshold).abs() < 1e-6);
    }
}
