//! The Riemann zeta function and the zeta (Zipf) class distribution's numeric
//! underpinnings.

/// Evaluates the Riemann zeta function `ζ(s)` for real `s > 1`.
///
/// Uses direct summation of the first `M` terms plus an Euler–Maclaurin tail
/// correction:
///
/// `ζ(s) ≈ Σ_{i=1}^{M} i^{-s} + M^{1-s}/(s-1) + M^{-s}/2 + s·M^{-s-1}/12`.
///
/// For the parameter range used in the paper (`s ≥ 1.1`) this is accurate to
/// well below `1e-10` with `M = 20_000`, which is far more precision than the
/// experiments need.
///
/// # Panics
///
/// Panics if `s <= 1` (the series diverges).
pub fn riemann_zeta(s: f64) -> f64 {
    assert!(s > 1.0, "riemann_zeta requires s > 1, got {s}");
    let m = 20_000u32;
    let mut sum = 0.0f64;
    for i in 1..m {
        sum += (i as f64).powf(-s);
    }
    // Euler–Maclaurin tail starting at M: ∫_M^∞ x^{-s} dx + f(M)/2 − f'(M)/12.
    let mf = m as f64;
    sum += mf.powf(1.0 - s) / (s - 1.0);
    sum += 0.5 * mf.powf(-s);
    sum += s * mf.powf(-s - 1.0) / 12.0;
    sum
}

/// The normalized probability of rank `i` (0-based) under the zeta
/// distribution with parameter `s`: `Pr[rank = i] = (i+1)^{-s} / ζ(s)`.
pub fn zeta_pmf(s: f64, zeta_s: f64, i: usize) -> f64 {
    ((i + 1) as f64).powf(-s) / zeta_s
}

/// Samples a 0-based rank from the zeta distribution with parameter `s > 1`
/// using Devroye's rejection-inversion method (the standard algorithm for
/// unbounded Zipf variates; see Devroye, *Non-Uniform Random Variate
/// Generation*, §X.6).
///
/// The returned value is `k - 1` where `k ≥ 1` is the classic 1-based Zipf
/// variate, so that class indices start at 0 like every other distribution in
/// this crate.
pub fn sample_zeta<R: ecs_rng::EcsRng + ?Sized>(s: f64, rng: &mut R) -> usize {
    debug_assert!(s > 1.0);
    // Devroye's algorithm with b = 2^(s-1).
    let b = 2f64.powf(s - 1.0);
    loop {
        let u = rng.f64_open();
        let v = rng.f64();
        let x = u.powf(-1.0 / (s - 1.0)).floor();
        // Guard against overflow of the floor into absurd territory when u is
        // extremely small; resample in that case (probability ~ 2^-64).
        if !(1.0..=1e18).contains(&x) {
            continue;
        }
        let t = (1.0 + 1.0 / x).powf(s - 1.0);
        if v * x * (t - 1.0) / (b - 1.0) <= t / b {
            return (x as usize) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn zeta_known_values() {
        let pi = std::f64::consts::PI;
        assert!((riemann_zeta(2.0) - pi * pi / 6.0).abs() < 1e-9);
        assert!((riemann_zeta(4.0) - pi.powi(4) / 90.0).abs() < 1e-9);
        // Reference values (Apéry's constant and ζ(1.5)).
        assert!((riemann_zeta(3.0) - 1.2020569031595942).abs() < 1e-9);
        assert!((riemann_zeta(1.5) - 2.612375348685488).abs() < 1e-7);
        // ζ(1.1) is large but finite; reference ≈ 10.5844484649508.
        assert!((riemann_zeta(1.1) - 10.5844484649508).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "s > 1")]
    fn zeta_rejects_divergent_arguments() {
        let _ = riemann_zeta(1.0);
    }

    #[test]
    fn pmf_sums_to_one() {
        for &s in &[1.5, 2.0, 2.5, 3.0] {
            let z = riemann_zeta(s);
            let total: f64 = (0..200_000).map(|i| zeta_pmf(s, z, i)).sum();
            // The truncated sum should be close to 1 (tail is tiny for s >= 1.5
            // only when s is comfortably above 1; allow a looser tolerance for 1.5).
            let tol = if s >= 2.0 { 1e-4 } else { 2e-2 };
            assert!((total - 1.0).abs() < tol, "s={s}: pmf sums to {total}");
        }
    }

    #[test]
    fn sampler_matches_pmf_for_small_ranks() {
        let s = 2.0;
        let z = riemann_zeta(s);
        let mut rng = Xoshiro256StarStar::seed_from_u64(42);
        let n = 200_000;
        let mut counts = [0usize; 5];
        for _ in 0..n {
            let x = sample_zeta(s, &mut rng);
            if x < counts.len() {
                counts[x] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = zeta_pmf(s, z, i);
            let observed = c as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {i}: observed {observed} vs expected {expected}"
            );
        }
    }

    #[test]
    fn sampler_mean_matches_theory_for_s3() {
        // For s = 3 the mean of the 1-based variate is ζ(2)/ζ(3); our 0-based
        // samples should average to that minus 1.
        let s = 3.0;
        let expected = riemann_zeta(2.0) / riemann_zeta(3.0) - 1.0;
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let n = 300_000;
        let sum: f64 = (0..n).map(|_| sample_zeta(s, &mut rng) as f64).sum();
        let mean = sum / n as f64;
        assert!(
            (mean - expected).abs() < 0.01,
            "mean {mean} vs expected {expected}"
        );
    }

    #[test]
    fn heavy_tail_produces_large_ranks_for_small_s() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let max = (0..50_000)
            .map(|_| sample_zeta(1.1, &mut rng))
            .max()
            .unwrap();
        assert!(
            max > 1_000,
            "s = 1.1 should occasionally produce very large ranks, max {max}"
        );
    }
}
