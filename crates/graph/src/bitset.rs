//! Packed bit substrates: one bit per unordered pair and one bit per element.
//!
//! The adversary knowledge graph, the union-find class sets, and the batched
//! oracle paths all ask the same two kinds of set question — "is this pair
//! related?" and "is this element in that set?" — and all of them used to
//! answer through pointer-heavy structures (`HashMap<usize, HashSet<usize>>`
//! adjacency, `Vec<Option<Mark>>` flags, `Vec<Vec<usize>>` member lists).
//! This module packs both questions into flat word arrays:
//!
//! * [`PairBitset`] stores one bit per **unordered pair** `(i, j)` of `0..n`
//!   in an upper-triangular layout over a `Vec<u64>`, addressed by the
//!   closed-form [`coord_to_idx`]. Row `i` owns the `n − 1 − i` contiguous
//!   bits for its greater partners `j > i`; its smaller partners `k < i` live
//!   strided through earlier rows at `idx(k, i)`.
//! * [`BitRow`] is a plain `n`-bit set — class rows, marks, visited flags —
//!   with word-parallel intersection, difference, and extraction.
//!
//! Membership tests are a shift and a mask, bulk relations (union,
//! intersection, population count, "does this row meet that set?") run 64
//! pairs per instruction, and iteration walks words with `trailing_zeros`
//! instead of chasing heap pointers.
//!
//! ```text
//! n = 5        j=1 j=2 j=3 j=4
//!        i=0 [  0   1   2   3 ]   row 0: base 0, 4 contiguous bits
//!        i=1 [      4   5   6 ]   row 1: base 4, 3 contiguous bits
//!        i=2 [          7   8 ]   row 2: base 7, 2 contiguous bits
//!        i=3 [              9 ]   row 3: base 9, 1 contiguous bit
//!
//!        idx(i, j) = i·n − i·(i+1)/2 + (j − i − 1)      for i < j
//! ```

/// The closed-form upper-triangular index of the unordered pair `(i, j)`
/// among all `n·(n−1)/2` pairs of `0..n`: with `i < j` (the arguments are
/// normalized first), `idx = i·n − i·(i+1)/2 + (j − i − 1)`.
///
/// # Panics
///
/// Panics if `i == j` or either index is out of range (debug builds assert
/// eagerly; release builds fault on the out-of-range word access).
#[inline]
pub fn coord_to_idx(i: usize, j: usize, n: usize) -> usize {
    debug_assert!(i != j, "unordered pair ({i}, {j}) has distinct endpoints");
    debug_assert!(i < n && j < n, "pair ({i}, {j}) out of range for n = {n}");
    let (i, j) = if i < j { (i, j) } else { (j, i) };
    i * n - i * (i + 1) / 2 + (j - i - 1)
}

/// A packed upper-triangular bitset over the unordered pairs of `0..n`.
///
/// One bit per pair, `n·(n−1)/2` bits total, stored in a flat `Vec<u64>` and
/// addressed by [`coord_to_idx`]. See the module docs for the layout diagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairBitset {
    n: usize,
    words: Vec<u64>,
}

impl PairBitset {
    /// Creates the empty relation over `n` elements.
    pub fn new(n: usize) -> Self {
        let bits = n * n.saturating_sub(1) / 2;
        Self {
            n,
            words: vec![0u64; bits.div_ceil(64)],
        }
    }

    /// Number of elements (not pairs).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of unordered pairs the set ranges over.
    pub fn num_pairs(&self) -> usize {
        self.n * self.n.saturating_sub(1) / 2
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        coord_to_idx(i, j, self.n)
    }

    /// The index of the word holding pair `(i, j)` — exposed so callers that
    /// track touched words (e.g. a round plan that must reset quickly) can
    /// clear exactly the words they dirtied via [`PairBitset::clear_word`].
    #[inline]
    pub fn word_index(&self, i: usize, j: usize) -> usize {
        self.index(i, j) / 64
    }

    /// Tests the pair bit.
    #[inline]
    pub fn test(&self, i: usize, j: usize) -> bool {
        let idx = self.index(i, j);
        self.words[idx / 64] >> (idx % 64) & 1 == 1
    }

    /// Sets the pair bit; returns `true` if it was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize) -> bool {
        let idx = self.index(i, j);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clears the pair bit; returns `true` if it was previously set.
    #[inline]
    pub fn clear(&mut self, i: usize, j: usize) -> bool {
        let idx = self.index(i, j);
        let word = &mut self.words[idx / 64];
        let mask = 1u64 << (idx % 64);
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Best-effort prefetch hint for the word holding pair `(i, j)`: touches
    /// the word with a read the optimizer must keep, pulling its cache line
    /// in before the caller's dependent access. (The workspace forbids
    /// `unsafe`, so this is a plain warming read rather than a `prefetcht0`.)
    #[inline]
    pub fn prefetch(&self, i: usize, j: usize) {
        std::hint::black_box(self.words[self.word_index(i, j)]);
    }

    /// Number of set pairs, counted 64 at a time.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every pair.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Clears one whole word (64 pair bits) by index — the fast reset path
    /// for callers that tracked which words they dirtied.
    #[inline]
    pub fn clear_word(&mut self, word: usize) {
        self.words[word] = 0;
    }

    /// In-place union, whole words at a time.
    ///
    /// # Panics
    ///
    /// Panics if the two sets range over different `n`.
    pub fn union_with(&mut self, other: &PairBitset) {
        assert_eq!(self.n, other.n, "PairBitset size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection, whole words at a time.
    ///
    /// # Panics
    ///
    /// Panics if the two sets range over different `n`.
    pub fn intersect_with(&mut self, other: &PairBitset) {
        assert_eq!(self.n, other.n, "PairBitset size mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Calls `f` for every partner `z` with the pair `(i, z)` set, in
    /// ascending `z` order. Partners below `i` are strided through earlier
    /// rows and tested bit-by-bit; partners above `i` are contiguous and
    /// walked a word at a time via `trailing_zeros`.
    pub fn for_each_in_row(&self, i: usize, mut f: impl FnMut(usize)) {
        for k in 0..i {
            if self.test(k, i) {
                f(k);
            }
        }
        if i + 1 >= self.n {
            return;
        }
        let base = coord_to_idx(i, i + 1, self.n);
        let len = self.n - 1 - i;
        let mut offset = 0;
        while offset < len {
            let take = (len - offset).min(64 - (base + offset) % 64);
            let mut word = self.words[(base + offset) / 64] >> ((base + offset) % 64);
            if take < 64 {
                word &= (1u64 << take) - 1;
            }
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                f(i + 1 + offset + bit);
                word &= word - 1;
            }
            offset += take;
        }
    }

    /// Whether any partner of `i` lies in `mask` — i.e. whether row `i`
    /// intersects the element set `mask`. The contiguous part of the row is
    /// tested 64 pairs per AND against words extracted from `mask`; the
    /// strided part iterates `mask`'s set bits below `i` (cheap when `mask`
    /// is a small class) and tests each pair bit.
    ///
    /// # Panics
    ///
    /// Panics if `mask` is not an `n`-bit row.
    pub fn row_intersects(&self, i: usize, mask: &BitRow) -> bool {
        assert_eq!(mask.len(), self.n, "mask length mismatch");
        let mut hit = false;
        mask.for_each_one_below(i, |k| {
            hit = hit || self.test(k, i);
        });
        if hit {
            return true;
        }
        if i + 1 >= self.n {
            return false;
        }
        let base = coord_to_idx(i, i + 1, self.n);
        let len = self.n - 1 - i;
        let mut offset = 0;
        while offset < len {
            let take = (len - offset).min(64 - (base + offset) % 64);
            let mut word = self.words[(base + offset) / 64] >> ((base + offset) % 64);
            if take < 64 {
                word &= (1u64 << take) - 1;
            }
            if word & mask.extract_word(i + 1 + offset) != 0 {
                return true;
            }
            offset += take;
        }
        false
    }
}

/// A flat `n`-bit set over elements `0..n`, packed into a `Vec<u64>`.
///
/// The element-granular counterpart of [`PairBitset`]: class rows, mark
/// flags, visited sets. Set/test/clear are a shift and a mask; intersection
/// and difference queries run a word (64 elements) at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitRow {
    len: usize,
    words: Vec<u64>,
}

impl BitRow {
    /// Creates the empty set over `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Number of elements the set ranges over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the universe is empty (`len == 0`), matching the container
    /// convention; see [`BitRow::any`] for "is any bit set".
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, i: usize) {
        debug_assert!(i < self.len, "bit {i} out of range for len {}", self.len);
    }

    /// Tests bit `i`.
    #[inline]
    pub fn test(&self, i: usize) -> bool {
        self.check(i);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`; returns `true` if it was previously clear.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        self.check(i);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clears bit `i`; returns `true` if it was previously set.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        self.check(i);
        let word = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        let was = *word & mask != 0;
        *word &= !mask;
        was
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits, counted 64 at a time.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Clears every bit.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// In-place union, whole words at a time.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn union_with(&mut self, other: &BitRow) {
        assert_eq!(self.len, other.len, "BitRow length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection, whole words at a time.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn intersect_with(&mut self, other: &BitRow) {
        assert_eq!(self.len, other.len, "BitRow length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Whether the two sets share any element (word-parallel; no allocation).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn intersects(&self, other: &BitRow) -> bool {
        assert_eq!(self.len, other.len, "BitRow length mismatch");
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self \ other` is non-empty — "does this set contain an
    /// element the other lacks?", one `a & !b` word op per 64 elements.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn any_and_not(&self, other: &BitRow) -> bool {
        assert_eq!(self.len, other.len, "BitRow length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .any(|(a, b)| a & !b != 0)
    }

    /// Extracts the 64 bits starting at `start` as one word (bit `k` of the
    /// result is bit `start + k` of the set; bits past the end read as 0).
    /// This is the unaligned fetch that lets a caller AND an arbitrary
    /// 64-element window of this set against its own words.
    #[inline]
    pub fn extract_word(&self, start: usize) -> u64 {
        let w = start / 64;
        let shift = start % 64;
        let lo = self.words.get(w).copied().unwrap_or(0) >> shift;
        if shift == 0 {
            lo
        } else {
            lo | self.words.get(w + 1).copied().unwrap_or(0) << (64 - shift)
        }
    }

    /// Calls `f` for every set bit, in ascending order, walking words with
    /// `trailing_zeros`.
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut word = word;
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                f(w * 64 + bit);
                word &= word - 1;
            }
        }
    }

    /// Calls `f` for every set bit strictly below `limit`, in ascending
    /// order.
    pub fn for_each_one_below(&self, limit: usize, mut f: impl FnMut(usize)) {
        let limit = limit.min(self.len);
        for (w, &word) in self.words.iter().enumerate().take(limit.div_ceil(64)) {
            let mut word = word;
            if (w + 1) * 64 > limit {
                let keep = limit - w * 64;
                if keep == 0 {
                    break;
                }
                word &= (1u64 << keep).wrapping_sub(1);
            }
            while word != 0 {
                let bit = word.trailing_zeros() as usize;
                f(w * 64 + bit);
                word &= word - 1;
            }
        }
    }

    /// The set bits collected into a vector, ascending.
    pub fn ones(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones());
        self.for_each_one(|i| out.push(i));
        out
    }

    /// A lazy ascending iterator over the set bits — what consumers that
    /// only need a prefix (e.g. zipping fragment members against a shorter
    /// chunk) use instead of materializing [`BitRow::ones`].
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            next_word: 0,
            current: 0,
        }
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Iterator behind [`BitRow::iter_ones`]: drains one word at a time with
/// `trailing_zeros`, exactly the [`BitRow::for_each_one`] walk but
/// suspendable.
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    /// Index of the next word to load into `current`.
    next_word: usize,
    /// Remaining bits of word `next_word - 1`.
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.current = *self.words.get(self.next_word)?;
            self.next_word += 1;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.next_word - 1) * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn coord_to_idx_is_the_triangular_enumeration() {
        // Enumerating pairs (i, j) with i < j in lexicographic order must
        // yield consecutive indices 0, 1, 2, ... — the layout diagram.
        for n in 0..20 {
            let mut expected = 0;
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(coord_to_idx(i, j, n), expected, "({i}, {j}) in n={n}");
                    assert_eq!(coord_to_idx(j, i, n), expected, "order-normalized");
                    expected += 1;
                }
            }
            assert_eq!(expected, n * n.saturating_sub(1) / 2);
        }
    }

    #[test]
    fn set_test_clear_roundtrip() {
        let mut s = PairBitset::new(10);
        assert!(!s.test(3, 7));
        assert!(s.set(3, 7));
        assert!(!s.set(7, 3), "already set, order-normalized");
        assert!(s.test(3, 7));
        assert!(s.test(7, 3));
        assert_eq!(s.count_ones(), 1);
        assert!(s.clear(7, 3));
        assert!(!s.clear(3, 7));
        assert_eq!(s.count_ones(), 0);
    }

    #[test]
    fn tiny_universes() {
        let s0 = PairBitset::new(0);
        assert_eq!(s0.num_pairs(), 0);
        assert_eq!(s0.count_ones(), 0);
        let s1 = PairBitset::new(1);
        assert_eq!(s1.num_pairs(), 0);
        let mut s2 = PairBitset::new(2);
        assert!(s2.set(0, 1));
        assert_eq!(s2.count_ones(), 1);
        s2.for_each_in_row(0, |z| assert_eq!(z, 1));
        s2.for_each_in_row(1, |z| assert_eq!(z, 0));
    }

    #[test]
    fn row_iteration_covers_both_parts() {
        // Partners both below and above i, crossing a word boundary.
        let n = 200;
        let mut s = PairBitset::new(n);
        let partners = [0usize, 3, 9, 99, 101, 150, 199];
        for &p in &partners {
            s.set(100, p);
        }
        let mut seen = Vec::new();
        s.for_each_in_row(100, |z| seen.push(z));
        assert_eq!(seen, partners.to_vec());
    }

    #[test]
    fn word_index_and_clear_word() {
        let mut s = PairBitset::new(40);
        s.set(0, 1);
        s.set(0, 2);
        s.set(30, 35);
        let w = s.word_index(0, 1);
        assert_eq!(w, s.word_index(0, 2));
        s.clear_word(w);
        assert!(!s.test(0, 1));
        assert!(!s.test(0, 2));
        assert!(s.test(30, 35), "other words untouched");
        s.prefetch(30, 35); // smoke: must not panic
    }

    #[test]
    fn union_and_intersection_are_wordwise() {
        let mut a = PairBitset::new(12);
        let mut b = PairBitset::new(12);
        a.set(0, 1);
        a.set(2, 5);
        b.set(2, 5);
        b.set(9, 11);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count_ones(), 3);
        a.intersect_with(&b);
        assert_eq!(a.count_ones(), 1);
        assert!(a.test(2, 5));
    }

    #[test]
    fn row_intersects_matches_naive() {
        let n = 130;
        let mut s = PairBitset::new(n);
        for &(i, j) in &[(5usize, 64usize), (5, 100), (20, 5), (64, 129)] {
            s.set(i, j);
        }
        let mut mask = BitRow::new(n);
        mask.set(100);
        assert!(s.row_intersects(5, &mask));
        assert!(!s.row_intersects(64, &mask));
        let mut below = BitRow::new(n);
        below.set(20);
        assert!(s.row_intersects(5, &below), "strided part below i");
        let empty = BitRow::new(n);
        assert!(!s.row_intersects(5, &empty));
    }

    #[test]
    fn bitrow_basics() {
        let mut r = BitRow::new(70);
        assert!(!r.any());
        assert!(r.set(0));
        assert!(r.set(69));
        assert!(!r.set(69));
        assert!(r.test(69));
        assert_eq!(r.count_ones(), 2);
        assert_eq!(r.ones(), vec![0, 69]);
        assert!(r.clear(0));
        assert!(!r.clear(0));
        assert!(r.any());
        r.clear_all();
        assert!(!r.any());
        assert!(
            !r.is_empty(),
            "is_empty is about the universe, not the bits"
        );
        assert!(BitRow::new(0).is_empty());
    }

    #[test]
    fn bitrow_set_algebra() {
        let mut a = BitRow::new(100);
        let mut b = BitRow::new(100);
        a.set(1);
        a.set(64);
        b.set(64);
        b.set(99);
        assert!(a.intersects(&b));
        assert!(a.any_and_not(&b), "1 is in a but not b");
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.ones(), vec![1, 64, 99]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.ones(), vec![64]);
        assert!(!i.any_and_not(&u));
    }

    #[test]
    fn extract_word_is_an_unaligned_window() {
        let mut r = BitRow::new(200);
        for &i in &[3usize, 64, 65, 127, 130] {
            r.set(i);
        }
        for start in 0..137 {
            let w = r.extract_word(start);
            for k in 0..64 {
                let expected = start + k < 200 && r.test(start + k);
                assert_eq!(w >> k & 1 == 1, expected, "start={start}, k={k}");
            }
        }
        assert_eq!(r.extract_word(199), 0);
    }

    #[test]
    fn for_each_one_below_respects_the_limit() {
        let mut r = BitRow::new(150);
        for &i in &[0usize, 63, 64, 100, 149] {
            r.set(i);
        }
        let mut seen = Vec::new();
        r.for_each_one_below(100, |i| seen.push(i));
        assert_eq!(seen, vec![0, 63, 64]);
        seen.clear();
        r.for_each_one_below(0, |i| seen.push(i));
        assert!(seen.is_empty());
        seen.clear();
        r.for_each_one_below(1000, |i| seen.push(i));
        assert_eq!(seen, vec![0, 63, 64, 100, 149]);
    }

    #[test]
    fn iter_ones_matches_ones_and_is_lazy() {
        let mut r = BitRow::new(150);
        for &i in &[0usize, 63, 64, 100, 149] {
            r.set(i);
        }
        assert_eq!(r.iter_ones().collect::<Vec<_>>(), r.ones());
        assert_eq!(r.iter_ones().take(2).collect::<Vec<_>>(), vec![0, 63]);
        assert_eq!(BitRow::new(0).iter_ones().next(), None);
        assert_eq!(BitRow::new(70).iter_ones().next(), None);
    }

    proptest! {
        #[test]
        fn pair_bitset_matches_hashset_reference(
            n in 2usize..60,
            ops in proptest::collection::vec((0usize..60, 0usize..60, 0u8..2), 0..200)
        ) {
            let mut packed = PairBitset::new(n);
            let mut reference: HashSet<(usize, usize)> = HashSet::new();
            for (a, b, op) in ops {
                let insert = op == 0;
                let (a, b) = (a % n, b % n);
                if a == b { continue; }
                let key = (a.min(b), a.max(b));
                if insert {
                    prop_assert_eq!(packed.set(a, b), reference.insert(key));
                } else {
                    prop_assert_eq!(packed.clear(a, b), reference.remove(&key));
                }
            }
            prop_assert_eq!(packed.count_ones(), reference.len());
            for i in 0..n {
                for j in (i + 1)..n {
                    prop_assert_eq!(packed.test(i, j), reference.contains(&(i, j)));
                }
                let mut row = Vec::new();
                packed.for_each_in_row(i, |z| row.push(z));
                let mut expected: Vec<usize> = (0..n)
                    .filter(|&z| z != i && reference.contains(&(i.min(z), i.max(z))))
                    .collect();
                expected.sort_unstable();
                prop_assert_eq!(row, expected);
            }
        }

        #[test]
        fn row_intersects_matches_scalar_scan(
            n in 2usize..50,
            pairs in proptest::collection::vec((0usize..50, 0usize..50), 0..120),
            members in proptest::collection::vec(0usize..50, 0..20),
            i in 0usize..50,
        ) {
            let i = i % n;
            let mut s = PairBitset::new(n);
            for (a, b) in pairs {
                let (a, b) = (a % n, b % n);
                if a != b {
                    s.set(a, b);
                }
            }
            let mut mask = BitRow::new(n);
            for m in members {
                mask.set(m % n);
            }
            let naive = (0..n).any(|z| z != i && mask.test(z) && s.test(i, z));
            prop_assert_eq!(s.row_intersects(i, &mask), naive);
        }

        #[test]
        fn bitrow_matches_bool_vec(
            len in 1usize..200,
            ops in proptest::collection::vec((0usize..200, 0u8..2), 0..300)
        ) {
            let mut row = BitRow::new(len);
            let mut reference = vec![false; len];
            for (i, op) in ops {
                let insert = op == 0;
                let i = i % len;
                if insert {
                    prop_assert_eq!(row.set(i), !reference[i]);
                    reference[i] = true;
                } else {
                    prop_assert_eq!(row.clear(i), reference[i]);
                    reference[i] = false;
                }
            }
            prop_assert_eq!(row.count_ones(), reference.iter().filter(|&&b| b).count());
            let expected: Vec<usize> =
                (0..len).filter(|&i| reference[i]).collect();
            prop_assert_eq!(row.ones(), expected);
            prop_assert_eq!(row.any(), reference.iter().any(|&b| b));
        }
    }
}
