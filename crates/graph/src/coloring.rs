//! Equitable and weighted equitable colorings.
//!
//! Section 3 of the paper proves its Ω(n²/f) and Ω(n²/ℓ) lower bounds with an
//! adversary that maintains a *weighted equitable* `n/f`-coloring of the
//! algorithm's knowledge graph: color classes are the not-yet-revealed
//! equivalence classes, vertex weights are the sizes of already-contracted
//! groups, and every color class must keep total weight `⌊n/k⌋` or `⌈n/k⌉`.
//! This module provides the coloring containers and their invariant checks;
//! the adversary's decision logic lives in the `ecs-adversary` crate.

use crate::bitset::BitRow;

/// An assignment of one of `k` colors to each of `n` unweighted vertices.
///
/// An *equitable* `k`-coloring is a proper coloring in which every color class
/// has size `⌊n/k⌋` or `⌈n/k⌉`. Properness depends on a graph, so it is
/// checked against an explicit edge list via [`EquitableColoring::is_proper_for`];
/// the size condition is intrinsic and checked by
/// [`EquitableColoring::is_equitable`].
#[derive(Debug, Clone)]
pub struct EquitableColoring {
    color_of: Vec<u32>,
    members: Vec<Vec<u32>>,
}

impl EquitableColoring {
    /// Creates the balanced coloring that assigns vertex `v` color `v mod k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` while `n > 0`.
    pub fn balanced(n: usize, k: usize) -> Self {
        assert!(
            k > 0 || n == 0,
            "need at least one color for a non-empty vertex set"
        );
        let mut members = vec![Vec::new(); k];
        let mut color_of = Vec::with_capacity(n);
        for v in 0..n {
            let c = v % k.max(1);
            color_of.push(c as u32);
            members[c].push(v as u32);
        }
        Self { color_of, members }
    }

    /// Creates a coloring from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if any color is `>= k`.
    pub fn from_assignment(assignment: &[usize], k: usize) -> Self {
        let mut members = vec![Vec::new(); k];
        let mut color_of = Vec::with_capacity(assignment.len());
        for (v, &c) in assignment.iter().enumerate() {
            assert!(c < k, "vertex {v} assigned color {c} >= k = {k}");
            color_of.push(c as u32);
            members[c].push(v as u32);
        }
        Self { color_of, members }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.color_of.len()
    }

    /// Number of colors.
    pub fn num_colors(&self) -> usize {
        self.members.len()
    }

    /// The color of vertex `v`.
    pub fn color_of(&self, v: usize) -> usize {
        self.color_of[v] as usize
    }

    /// The vertices of color `c` (unsorted).
    pub fn members(&self, c: usize) -> &[u32] {
        &self.members[c]
    }

    /// The size of each color class.
    pub fn class_sizes(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.len()).collect()
    }

    /// The color classes as packed membership rows: row `c` has bit `v` set
    /// iff `color_of(v) == c`. Derived from the assignment on demand — the
    /// [`EquitableColoring::members`] lists stay the primary, order-bearing
    /// representation (their insertion order matters to `recolor`).
    pub fn classes_as_bitrows(&self) -> Vec<BitRow> {
        let n = self.num_vertices();
        let mut rows: Vec<BitRow> = (0..self.num_colors()).map(|_| BitRow::new(n)).collect();
        for (v, &c) in self.color_of.iter().enumerate() {
            rows[c as usize].set(v);
        }
        rows
    }

    /// Reassigns vertex `v` to color `c`.
    pub fn recolor(&mut self, v: usize, c: usize) {
        let old = self.color_of[v] as usize;
        if old == c {
            return;
        }
        let pos = self.members[old]
            .iter()
            .position(|&x| x as usize == v)
            .expect("membership list out of sync");
        self.members[old].swap_remove(pos);
        self.members[c].push(v as u32);
        self.color_of[v] = c as u32;
    }

    /// Swaps the colors of vertices `u` and `v` (a size-preserving operation —
    /// the move the adversary uses to dodge equal-color comparisons).
    pub fn swap_colors(&mut self, u: usize, v: usize) {
        let cu = self.color_of(u);
        let cv = self.color_of(v);
        if cu == cv {
            return;
        }
        self.recolor(u, cv);
        self.recolor(v, cu);
    }

    /// Checks the size condition: every class has `⌊n/k⌋` or `⌈n/k⌉` vertices.
    pub fn is_equitable(&self) -> bool {
        let n = self.num_vertices();
        let k = self.num_colors();
        if k == 0 {
            return n == 0;
        }
        let lo = n / k;
        let hi = n.div_ceil(k);
        self.members.iter().all(|m| m.len() == lo || m.len() == hi)
    }

    /// Checks properness against an explicit edge list: no edge joins two
    /// vertices of the same color.
    pub fn is_proper_for(&self, edges: &[(usize, usize)]) -> bool {
        edges
            .iter()
            .all(|&(u, v)| u == v || self.color_of(u) != self.color_of(v))
    }
}

/// A coloring of weighted vertices in which every color class must keep a
/// prescribed total weight.
///
/// The adversary's knowledge graph contracts vertices as it concedes
/// equivalences, so vertex weights grow; the defining invariant of the
/// adversary is that the *weight* of every color class stays `⌊n/k⌋` or
/// `⌈n/k⌉` where `n` is the total weight.
#[derive(Debug, Clone)]
pub struct WeightedEquitableColoring {
    color_of: Vec<u32>,
    weight: Vec<u64>,
    class_weight: Vec<u64>,
    total_weight: u64,
}

impl WeightedEquitableColoring {
    /// Creates a weighted coloring from explicit assignments and weights.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or a color is `>= k`.
    pub fn new(assignment: &[usize], weights: &[u64], k: usize) -> Self {
        assert_eq!(
            assignment.len(),
            weights.len(),
            "one weight per vertex required"
        );
        let mut class_weight = vec![0u64; k];
        let mut color_of = Vec::with_capacity(assignment.len());
        for (v, (&c, &w)) in assignment.iter().zip(weights).enumerate() {
            assert!(c < k, "vertex {v} assigned color {c} >= k = {k}");
            class_weight[c] += w;
            color_of.push(c as u32);
        }
        let total_weight = weights.iter().sum();
        Self {
            color_of,
            weight: weights.to_vec(),
            class_weight,
            total_weight,
        }
    }

    /// Creates unit-weight vertices colored `v mod k`.
    pub fn balanced_unit(n: usize, k: usize) -> Self {
        assert!(
            k > 0 || n == 0,
            "need at least one color for a non-empty vertex set"
        );
        let assignment: Vec<usize> = (0..n).map(|v| v % k.max(1)).collect();
        Self::new(&assignment, &vec![1u64; n], k.max(usize::from(n > 0)))
    }

    /// Number of vertices (including zero-weight tombstones left by merges).
    pub fn num_vertices(&self) -> usize {
        self.color_of.len()
    }

    /// Number of colors.
    pub fn num_colors(&self) -> usize {
        self.class_weight.len()
    }

    /// Total weight over all vertices.
    pub fn total_weight(&self) -> u64 {
        self.total_weight
    }

    /// The color of vertex `v`.
    pub fn color_of(&self, v: usize) -> usize {
        self.color_of[v] as usize
    }

    /// The weight of vertex `v`.
    pub fn weight_of(&self, v: usize) -> u64 {
        self.weight[v]
    }

    /// The total weight of color class `c`.
    pub fn class_weight(&self, c: usize) -> u64 {
        self.class_weight[c]
    }

    /// All class weights.
    pub fn class_weights(&self) -> &[u64] {
        &self.class_weight
    }

    /// The color classes as packed membership rows over the *live* vertices:
    /// row `c` has bit `v` set iff `color_of(v) == c` and `v` still carries
    /// weight. Zero-weight tombstones left behind by
    /// [`WeightedEquitableColoring::merge_into`] are omitted, matching how
    /// [`WeightedEquitableColoring::is_proper_for`] ignores them.
    pub fn classes_as_bitrows(&self) -> Vec<BitRow> {
        let n = self.num_vertices();
        let mut rows: Vec<BitRow> = (0..self.num_colors()).map(|_| BitRow::new(n)).collect();
        for (v, (&c, &w)) in self.color_of.iter().zip(&self.weight).enumerate() {
            if w > 0 {
                rows[c as usize].set(v);
            }
        }
        rows
    }

    /// Moves vertex `v` to color `c`, updating class weights.
    pub fn recolor(&mut self, v: usize, c: usize) {
        let old = self.color_of(v);
        if old == c {
            return;
        }
        self.class_weight[old] -= self.weight[v];
        self.class_weight[c] += self.weight[v];
        self.color_of[v] = c as u32;
    }

    /// Swaps the colors of `u` and `v`. Class weights change only if the two
    /// vertices have different weights.
    pub fn swap_colors(&mut self, u: usize, v: usize) {
        let cu = self.color_of(u);
        let cv = self.color_of(v);
        if cu == cv {
            return;
        }
        self.recolor(u, cv);
        self.recolor(v, cu);
    }

    /// Merges vertex `src` into vertex `dst` (they must share a color): the
    /// weight of `src` moves onto `dst` and `src` becomes a zero-weight
    /// tombstone. This models the contraction performed when the adversary
    /// concedes that two groups are equivalent.
    ///
    /// # Panics
    ///
    /// Panics if the vertices have different colors (the adversary never
    /// concedes equality across colors).
    pub fn merge_into(&mut self, dst: usize, src: usize) {
        assert_eq!(
            self.color_of(dst),
            self.color_of(src),
            "only same-colored vertices can be contracted"
        );
        if dst == src {
            return;
        }
        self.weight[dst] += self.weight[src];
        self.weight[src] = 0;
    }

    /// Checks the weighted equitability condition: every class weight equals
    /// `⌊W/k⌋` or `⌈W/k⌉` where `W` is the total weight.
    pub fn is_equitable(&self) -> bool {
        let k = self.num_colors() as u64;
        if k == 0 {
            return self.total_weight == 0;
        }
        let lo = self.total_weight / k;
        let hi = self.total_weight.div_ceil(k);
        self.class_weight.iter().all(|&w| w == lo || w == hi)
    }

    /// Checks properness against an explicit edge list, ignoring zero-weight
    /// tombstone vertices.
    pub fn is_proper_for(&self, edges: &[(usize, usize)]) -> bool {
        edges.iter().all(|&(u, v)| {
            u == v
                || self.weight[u] == 0
                || self.weight[v] == 0
                || self.color_of(u) != self.color_of(v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn balanced_coloring_is_equitable() {
        for &(n, k) in &[(10usize, 5usize), (11, 5), (7, 3), (1, 1), (0, 1), (12, 12)] {
            let c = EquitableColoring::balanced(n, k);
            assert!(c.is_equitable(), "balanced({n},{k}) should be equitable");
            assert_eq!(c.num_vertices(), n);
            assert_eq!(c.class_sizes().iter().sum::<usize>(), n);
        }
    }

    #[test]
    fn recolor_and_swap_maintain_membership_lists() {
        let mut c = EquitableColoring::balanced(6, 3);
        assert_eq!(c.color_of(4), 1);
        c.recolor(4, 2);
        assert_eq!(c.color_of(4), 2);
        assert!(c.members(2).contains(&4));
        assert!(!c.members(1).contains(&4));
        // Swap restores equitability broken by the recolor.
        c.swap_colors(5, 4);
        assert_eq!(c.color_of(5), 2);
        assert_eq!(c.color_of(4), 2);
    }

    #[test]
    fn swap_same_color_is_noop() {
        let mut c = EquitableColoring::balanced(4, 2);
        let before: Vec<usize> = (0..4).map(|v| c.color_of(v)).collect();
        c.swap_colors(0, 2); // both color 0
        let after: Vec<usize> = (0..4).map(|v| c.color_of(v)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn properness_check() {
        let c = EquitableColoring::from_assignment(&[0, 1, 0, 1], 2);
        assert!(c.is_proper_for(&[(0, 1), (2, 3)]));
        assert!(!c.is_proper_for(&[(0, 2)]));
        assert!(c.is_proper_for(&[(1, 1)]), "self loops are ignored");
    }

    #[test]
    #[should_panic(expected = "assigned color")]
    fn from_assignment_rejects_bad_color() {
        let _ = EquitableColoring::from_assignment(&[0, 3], 2);
    }

    #[test]
    fn weighted_balanced_unit_is_equitable() {
        let w = WeightedEquitableColoring::balanced_unit(10, 5);
        assert!(w.is_equitable());
        assert_eq!(w.total_weight(), 10);
        assert_eq!(w.class_weights(), &[2, 2, 2, 2, 2]);
    }

    #[test]
    fn weighted_merge_moves_weight_and_keeps_class_weight() {
        let mut w = WeightedEquitableColoring::balanced_unit(8, 4);
        // Vertices 0 and 4 both have color 0.
        assert_eq!(w.color_of(0), w.color_of(4));
        w.merge_into(0, 4);
        assert_eq!(w.weight_of(0), 2);
        assert_eq!(w.weight_of(4), 0);
        assert_eq!(w.class_weight(0), 2);
        assert!(w.is_equitable());
    }

    #[test]
    #[should_panic(expected = "same-colored")]
    fn weighted_merge_rejects_cross_color() {
        let mut w = WeightedEquitableColoring::balanced_unit(8, 4);
        w.merge_into(0, 1);
    }

    #[test]
    fn weighted_swap_preserves_equitability_for_equal_weights() {
        let mut w = WeightedEquitableColoring::balanced_unit(9, 3);
        assert!(w.is_equitable());
        w.swap_colors(0, 1);
        assert!(w.is_equitable());
        assert_eq!(w.color_of(0), 1);
        assert_eq!(w.color_of(1), 0);
    }

    #[test]
    fn weighted_recolor_changes_class_weights() {
        let mut w = WeightedEquitableColoring::new(&[0, 0, 1, 1], &[3, 1, 2, 2], 2);
        assert_eq!(w.class_weight(0), 4);
        assert_eq!(w.class_weight(1), 4);
        assert!(w.is_equitable());
        w.recolor(0, 1);
        assert_eq!(w.class_weight(0), 1);
        assert_eq!(w.class_weight(1), 7);
        assert!(!w.is_equitable());
    }

    #[test]
    fn weighted_properness_ignores_tombstones() {
        let mut w = WeightedEquitableColoring::balanced_unit(4, 2);
        w.merge_into(0, 2); // 2 becomes a tombstone with color 0
        assert!(w.is_proper_for(&[(2, 0)]), "tombstone edges are ignored");
        // A real same-color edge is still rejected.
        assert!(!w.is_proper_for(&[(1, 3)]));
    }

    #[test]
    fn bitrows_mirror_member_lists() {
        let mut c = EquitableColoring::balanced(9, 3);
        c.swap_colors(0, 4);
        c.recolor(7, 0);
        let rows = c.classes_as_bitrows();
        assert_eq!(rows.len(), c.num_colors());
        for (color, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c.num_vertices());
            assert_eq!(row.count_ones(), c.members(color).len());
            for v in 0..c.num_vertices() {
                assert_eq!(row.test(v), c.members(color).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn weighted_bitrows_skip_tombstones() {
        let mut w = WeightedEquitableColoring::balanced_unit(6, 2);
        w.merge_into(0, 2); // 2 becomes a zero-weight tombstone with color 0
        let rows = w.classes_as_bitrows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].test(0) && rows[0].test(4));
        assert!(!rows[0].test(2), "tombstones are not class members");
        assert_eq!(rows[0].count_ones(), 2);
        assert_eq!(rows[1].count_ones(), 3);
        for v in 0..6 {
            if w.weight_of(v) > 0 {
                assert!(rows[w.color_of(v)].test(v));
            }
        }
    }

    proptest! {
        #[test]
        fn balanced_class_sizes_differ_by_at_most_one(n in 0usize..200, k in 1usize..20) {
            let c = EquitableColoring::balanced(n, k);
            let sizes = c.class_sizes();
            let min = sizes.iter().min().copied().unwrap_or(0);
            let max = sizes.iter().max().copied().unwrap_or(0);
            prop_assert!(max - min <= 1);
            prop_assert!(c.is_equitable());
        }

        #[test]
        fn recolor_keeps_partition(n in 1usize..60, k in 1usize..10, moves in proptest::collection::vec((0usize..60, 0usize..10), 0..50)) {
            let mut c = EquitableColoring::balanced(n, k);
            for (v, col) in moves {
                c.recolor(v % n, col % k);
            }
            // Every vertex appears in exactly one membership list, matching color_of.
            let mut seen = vec![0usize; n];
            for col in 0..k {
                for &v in c.members(col) {
                    seen[v as usize] += 1;
                    prop_assert_eq!(c.color_of(v as usize), col);
                }
            }
            prop_assert!(seen.iter().all(|&s| s == 1));
        }

        #[test]
        fn weighted_class_weights_stay_consistent(
            n in 1usize..40,
            k in 1usize..8,
            ops in proptest::collection::vec((0usize..40, 0usize..40), 0..60)
        ) {
            let mut w = WeightedEquitableColoring::balanced_unit(n, k);
            for (a, b) in ops {
                let (a, b) = (a % n, b % n);
                if w.color_of(a) == w.color_of(b) {
                    if a != b && w.weight_of(a) > 0 && w.weight_of(b) > 0 {
                        w.merge_into(a, b);
                    }
                } else {
                    w.swap_colors(a, b);
                }
            }
            // Recompute class weights from scratch and compare.
            let mut recomputed = vec![0u64; w.num_colors()];
            for v in 0..n {
                recomputed[w.color_of(v)] += w.weight_of(v);
            }
            prop_assert_eq!(recomputed.as_slice(), w.class_weights());
            prop_assert_eq!(w.total_weight(), n as u64);
        }
    }
}
