//! Connected components of undirected edge sets.
//!
//! The equivalence relation discovered by comparisons is symmetric, so the
//! subgraph of "same class" answers can be treated as undirected; its
//! connected components are exactly the sets of elements currently known to
//! be equivalent. For the `H_d` subgraph used by the constant-round algorithm
//! these coincide with the strongly connected components of the directed
//! version restricted to positive answers, and the test-suite checks that.

use crate::{BitRow, UnionFind};

/// Computes the connected components of the undirected graph on `n` vertices
/// with the given edges.
///
/// Components are returned as sorted vertex lists ordered by smallest member —
/// the same canonical format as [`crate::tarjan_scc`].
pub fn connected_components(n: usize, edges: &[(usize, usize)]) -> Vec<Vec<usize>> {
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        uf.union(u, v);
    }
    uf.groups()
}

/// Returns per-vertex component labels in `0..num_components`, numbered by
/// each component's smallest vertex.
pub fn component_labels(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        uf.union(u, v);
    }
    uf.labels()
}

/// The components as packed membership rows — one [`BitRow`] per component,
/// bit `x` set iff vertex `x` belongs to it, ordered by smallest member
/// (the same canonical order as [`connected_components`]).
pub fn components_as_bitrows(n: usize, edges: &[(usize, usize)]) -> Vec<BitRow> {
    let mut uf = UnionFind::new(n);
    for &(u, v) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        uf.union(u, v);
    }
    uf.classes_as_bitrows()
}

/// Returns the size of the largest connected component (0 for an empty
/// graph). Runs on the packed [`components_as_bitrows`] substrate: a
/// component's size is a popcount over its row, no member lists are
/// materialised.
pub fn largest_component_size(n: usize, edges: &[(usize, usize)]) -> usize {
    components_as_bitrows(n, edges)
        .iter()
        .map(BitRow::count_ones)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tarjan_scc, DiGraph};
    use proptest::prelude::*;

    #[test]
    fn no_edges_means_singletons() {
        let comps = connected_components(3, &[]);
        assert_eq!(comps, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn empty_graph() {
        assert!(connected_components(0, &[]).is_empty());
        assert_eq!(largest_component_size(0, &[]), 0);
    }

    #[test]
    fn path_is_one_component() {
        let comps = connected_components(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(comps, vec![vec![0, 1, 2, 3]]);
        assert_eq!(largest_component_size(4, &[(0, 1), (1, 2), (2, 3)]), 4);
    }

    #[test]
    fn two_components() {
        let comps = connected_components(5, &[(0, 1), (3, 4)]);
        assert_eq!(comps, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn labels_match_components() {
        let edges = [(0, 2), (2, 4), (1, 3)];
        let labels = component_labels(6, &edges);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[2], labels[4]);
        assert_eq!(labels[1], labels[3]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[5], labels[0]);
        assert_ne!(labels[5], labels[1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = connected_components(2, &[(0, 5)]);
    }

    proptest! {
        #[test]
        fn symmetric_closure_scc_equals_connected_components(
            n in 1usize..30,
            raw_edges in proptest::collection::vec((0usize..30, 0usize..30), 0..80)
        ) {
            // For a symmetric edge set, SCCs of the digraph with both
            // directions equal the undirected connected components.
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let mut g = DiGraph::new(n);
            for &(u, v) in &edges {
                g.add_edge(u, v);
                g.add_edge(v, u);
            }
            let sccs = tarjan_scc(&g);
            let comps = connected_components(n, &edges);
            prop_assert_eq!(sccs, comps);
        }

        #[test]
        fn component_sizes_sum_to_n(
            n in 1usize..50,
            raw_edges in proptest::collection::vec((0usize..50, 0usize..50), 0..100)
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let comps = connected_components(n, &edges);
            let total: usize = comps.iter().map(|c| c.len()).sum();
            prop_assert_eq!(total, n);
            prop_assert!(largest_component_size(n, &edges) <= n);
        }

        #[test]
        fn packed_rows_agree_with_the_legacy_group_lists(
            n in 1usize..50,
            raw_edges in proptest::collection::vec((0usize..50, 0usize..50), 0..100)
        ) {
            // The bitrow substrate and the legacy Vec<Vec<usize>> path are
            // two views of the same partition: same order, same members,
            // and the packed largest-component size equals the legacy max.
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let comps = connected_components(n, &edges);
            let rows = components_as_bitrows(n, &edges);
            prop_assert_eq!(comps.len(), rows.len());
            for (comp, row) in comps.iter().zip(&rows) {
                let members: Vec<usize> = row.iter_ones().collect();
                prop_assert_eq!(comp, &members);
            }
            let legacy_max = comps.iter().map(|c| c.len()).max().unwrap_or(0);
            prop_assert_eq!(largest_component_size(n, &edges), legacy_max);
        }
    }
}
