//! A compact adjacency-list directed graph.

/// A directed graph on vertices `0..n` stored as adjacency lists.
///
/// The graph is deliberately simple: the workloads in this workspace build a
/// graph once (e.g. the union of Hamiltonian cycles `H_d`, or the subgraph of
/// comparisons that answered "same class") and then run one traversal over it,
/// so an insert-only adjacency list is the right trade-off.
///
/// Parallel edges are permitted (they are harmless for reachability queries
/// and SCC computations); [`DiGraph::dedup_edges`] removes them when a simple
/// graph is required.
#[derive(Debug, Clone, Default)]
pub struct DiGraph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed edges (counting parallel edges).
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Adds the directed edge `u -> v`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(
            u < self.adj.len() && v < self.adj.len(),
            "edge endpoint out of range"
        );
        self.adj[u].push(v as u32);
        self.num_edges += 1;
    }

    /// Out-neighbours of `u`.
    pub fn neighbors(&self, u: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[u].iter().map(|&v| v as usize)
    }

    /// Out-neighbours of `u` as the packed backing slice — the zero-copy
    /// access the traversals use so a DFS frame indexes the adjacency
    /// directly instead of collecting an iterator per visit.
    pub fn neighbor_slice(&self, u: usize) -> &[u32] {
        &self.adj[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Returns the reverse (transpose) graph.
    pub fn reversed(&self) -> Self {
        let mut rev = Self::new(self.num_vertices());
        for u in 0..self.num_vertices() {
            for v in self.neighbors(u) {
                rev.add_edge(v, u);
            }
        }
        rev
    }

    /// Removes parallel edges (keeps one copy of each distinct edge).
    pub fn dedup_edges(&mut self) {
        let mut total = 0;
        for list in &mut self.adj {
            list.sort_unstable();
            list.dedup();
            total += list.len();
        }
        self.num_edges = total;
    }

    /// Iterates over all edges as `(u, v)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, list)| list.iter().map(move |&v| (u, v as usize)))
    }

    /// Vertices reachable from `start` (including `start`), via BFS.
    pub fn reachable_from(&self, start: usize) -> Vec<bool> {
        let mut seen = vec![false; self.num_vertices()];
        if self.adj.is_empty() {
            return seen;
        }
        let mut queue = std::collections::VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_graph() {
        let g = DiGraph::new(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(2, 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        let n0: Vec<usize> = g.neighbors(0).collect();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 2);
    }

    #[test]
    fn reversed_swaps_directions() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = g.reversed();
        let mut edges: Vec<(usize, usize)> = r.edges().collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 2), (1, 0), (2, 1)]);
    }

    #[test]
    fn dedup_removes_parallel_edges() {
        let mut g = DiGraph::from_edges(2, &[(0, 1), (0, 1), (1, 0)]);
        assert_eq!(g.num_edges(), 3);
        g.dedup_edges();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn reachability_on_a_path() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let from0 = g.reachable_from(0);
        assert_eq!(from0, vec![true, true, true, false, false]);
        let from3 = g.reachable_from(3);
        assert_eq!(from3, vec![false, false, false, true, true]);
    }

    #[test]
    fn self_loops_are_allowed() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert_eq!(g.num_edges(), 2);
        assert!(g.reachable_from(0)[0]);
    }

    proptest! {
        #[test]
        fn from_edges_matches_incremental(
            n in 1usize..30,
            raw_edges in proptest::collection::vec((0usize..30, 0usize..30), 0..80)
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let built = DiGraph::from_edges(n, &edges);
            let mut incremental = DiGraph::new(n);
            for &(u, v) in &edges {
                incremental.add_edge(u, v);
            }
            let a: Vec<(usize, usize)> = built.edges().collect();
            let b: Vec<(usize, usize)> = incremental.edges().collect();
            prop_assert_eq!(a, b);
        }

        #[test]
        fn double_reverse_is_identity(
            n in 1usize..25,
            raw_edges in proptest::collection::vec((0usize..25, 0usize..25), 0..60)
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let g = DiGraph::from_edges(n, &edges);
            let rr = g.reversed().reversed();
            let mut a: Vec<(usize, usize)> = g.edges().collect();
            let mut b: Vec<(usize, usize)> = rr.edges().collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }
}
