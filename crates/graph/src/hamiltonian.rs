//! The `H_d` construction: a union of `d` independent random Hamiltonian cycles.
//!
//! Theorem 3 of the paper (quoting Goodrich, *Pipelined algorithms to detect
//! cheating in long-term grid computations*) states that for any subset `W` of
//! `λn` vertices, the union of `d` random Hamiltonian cycles induces a strongly
//! connected component inside `W` of size greater than `γλn`, with probability
//! at least `1 − e^{n[(1+λ)ln2 + d·t] + O(1)}` where
//! `t = α ln α + β ln β − (1−λ)ln(1−λ)`, `α = 1 − (1−γ)/2·λ`,
//! `β = 1 − (1+γ)/2·λ`.
//!
//! With `γ = 1/4` the paper bounds `t ≤ −λ²/8` for `λ ∈ (0, 0.4]` via an
//! explicit Taylor-series computation; this module exposes both that bound and
//! the resulting choice of `d`, plus the decomposition of the cycles into
//! exclusive-read comparison rounds (each round a perfect or near-perfect
//! matching).

use crate::{BitRow, DiGraph, UnionFind};
use ecs_rng::EcsRng;

/// The natural logarithm of 2, used by the probability bound.
const LN_2: f64 = std::f64::consts::LN_2;

/// A union of `d` random Hamiltonian cycles on `n` vertices.
#[derive(Debug, Clone)]
pub struct HamiltonianUnion {
    n: usize,
    cycles: Vec<Vec<u32>>,
}

impl HamiltonianUnion {
    /// Builds `H_d`: `d` independent uniformly random Hamiltonian cycles on
    /// `0..n`, each determined by a random permutation of the vertices.
    pub fn random<R: EcsRng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Self {
        let cycles = (0..d)
            .map(|_| {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                rng.shuffle(&mut perm);
                perm
            })
            .collect();
        Self { n, cycles }
    }

    /// Builds `H_d` from explicit permutations (used by tests).
    ///
    /// # Panics
    ///
    /// Panics if any cycle is not a permutation of `0..n`.
    pub fn from_permutations(n: usize, cycles: Vec<Vec<u32>>) -> Self {
        for cycle in &cycles {
            assert_eq!(cycle.len(), n, "cycle must visit every vertex exactly once");
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            assert!(
                sorted.iter().enumerate().all(|(i, &v)| i as u32 == v),
                "cycle must be a permutation of 0..n"
            );
        }
        Self { n, cycles }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of Hamiltonian cycles (`d`).
    pub fn num_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// The underlying permutations.
    pub fn cycles(&self) -> &[Vec<u32>] {
        &self.cycles
    }

    /// All directed edges of `H_d` (successor edges along every cycle).
    ///
    /// For `n < 2` there are no edges.
    pub fn directed_edges(&self) -> Vec<(usize, usize)> {
        if self.n < 2 {
            return Vec::new();
        }
        let mut edges = Vec::with_capacity(self.cycles.len() * self.n);
        for cycle in &self.cycles {
            for i in 0..self.n {
                let u = cycle[i] as usize;
                let v = cycle[(i + 1) % self.n] as usize;
                edges.push((u, v));
            }
        }
        edges
    }

    /// The distinct undirected comparison pairs `{u, v}` of `H_d`, with
    /// `u < v`, deduplicated across cycles.
    pub fn comparison_pairs(&self) -> Vec<(usize, usize)> {
        let mut pairs: Vec<(usize, usize)> = self
            .directed_edges()
            .into_iter()
            .filter(|&(u, v)| u != v)
            .map(|(u, v)| (u.min(v), u.max(v)))
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Converts `H_d` into a [`DiGraph`] (with parallel edges removed).
    pub fn to_digraph(&self) -> DiGraph {
        let mut g = DiGraph::from_edges(self.n, &self.directed_edges());
        g.dedup_edges();
        g
    }

    /// Decomposes all comparisons of `H_d` into exclusive-read rounds: each
    /// round is a set of vertex-disjoint pairs.
    ///
    /// A Hamiltonian cycle on an even number of vertices splits into two
    /// perfect matchings (alternating edges); on an odd number of vertices a
    /// third, single-edge-short round is needed because the last edge shares a
    /// vertex with both parities. The paper charges `2d` rounds for this step,
    /// which this decomposition matches for even `n` and exceeds by at most
    /// `d` rounds for odd `n` — still `O(d)`.
    pub fn er_rounds(&self) -> Vec<Vec<(usize, usize)>> {
        let n = self.n;
        if n < 2 {
            return Vec::new();
        }
        let mut rounds = Vec::new();
        for cycle in &self.cycles {
            if n == 2 {
                rounds.push(vec![(cycle[0] as usize, cycle[1] as usize)]);
                continue;
            }
            let edge = |i: usize| {
                let u = cycle[i] as usize;
                let v = cycle[(i + 1) % n] as usize;
                (u, v)
            };
            let mut even_round = Vec::with_capacity(n / 2);
            let mut odd_round = Vec::with_capacity(n / 2);
            let mut leftover = Vec::new();
            for i in 0..n {
                if n % 2 == 1 && i == n - 1 {
                    // The closing edge of an odd cycle conflicts with both
                    // parities; give it its own round.
                    leftover.push(edge(i));
                } else if i % 2 == 0 {
                    even_round.push(edge(i));
                } else {
                    odd_round.push(edge(i));
                }
            }
            rounds.push(even_round);
            rounds.push(odd_round);
            if !leftover.is_empty() {
                rounds.push(leftover);
            }
        }
        rounds
    }

    /// The paper's Taylor-polynomial upper bound on the exponent term `t` for
    /// `γ = 1/4`:
    ///
    /// `t ≤ −(3743/8192)λ⁴ + (19/256)λ³ − (15/64)λ²`,
    ///
    /// which is at most `−λ²/8` for `λ ∈ (0, 0.4]`.
    pub fn exponent_bound(lambda: f64) -> f64 {
        assert!(
            lambda > 0.0 && lambda <= 0.4,
            "the Taylor bound is stated for lambda in (0, 0.4], got {lambda}"
        );
        -3743.0 / 8192.0 * lambda.powi(4) + 19.0 / 256.0 * lambda.powi(3)
            - 15.0 / 64.0 * lambda.powi(2)
    }

    /// The exact exponent term `t(λ, γ) = α ln α + β ln β − (1−λ)ln(1−λ)` from
    /// Theorem 3, with `α = 1 − (1−γ)λ/2` and `β = 1 − (1+γ)λ/2`.
    pub fn exponent_exact(lambda: f64, gamma: f64) -> f64 {
        assert!(lambda > 0.0 && lambda < 1.0, "lambda must lie in (0, 1)");
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must lie in (0, 1)");
        let alpha = 1.0 - (1.0 - gamma) / 2.0 * lambda;
        let beta = 1.0 - (1.0 + gamma) / 2.0 * lambda;
        alpha * alpha.ln() + beta * beta.ln() - (1.0 - lambda) * (1.0 - lambda).ln()
    }

    /// The number of Hamiltonian cycles `d` needed so that the failure
    /// probability exponent `n[(1+λ)ln2 + d·t]` is negative with slack
    /// (Theorem 3 with `γ = 1/4`), i.e. so Theorem 4's construction succeeds
    /// with high probability.
    ///
    /// Uses the conservative `t ≤ −λ²/8` bound: `d = ⌈8(1+λ)ln2 / λ²⌉ + 1`.
    pub fn required_cycles(lambda: f64) -> usize {
        assert!(
            lambda > 0.0 && lambda <= 0.4,
            "lambda must lie in (0, 0.4], got {lambda}"
        );
        let d = (8.0 * (1.0 + lambda) * LN_2) / (lambda * lambda);
        d.ceil() as usize + 1
    }

    /// A sharper choice of `d` using the exact exponent rather than the
    /// `−λ²/8` relaxation. Still includes one extra cycle of slack.
    pub fn required_cycles_exact(lambda: f64) -> usize {
        let t = Self::exponent_exact(lambda, 0.25);
        assert!(t < 0.0, "exponent must be negative for lambda = {lambda}");
        let d = ((1.0 + lambda) * LN_2) / (-t);
        d.ceil() as usize + 1
    }

    /// The failure-probability exponent per element, `(1+λ)ln2 + d·t`, using
    /// the exact `t`. The overall failure probability is roughly
    /// `e^{n · exponent}`, so a negative value means success with probability
    /// approaching 1 exponentially fast in `n`.
    pub fn failure_exponent(lambda: f64, d: usize) -> f64 {
        (1.0 + lambda) * LN_2 + d as f64 * Self::exponent_exact(lambda, 0.25)
    }
}

/// The connected fragments a tested `H_d` overlay induces, packed on the
/// [`BitRow`] substrate ([`UnionFind::classes_as_bitrows`]) instead of
/// exploded `Vec<Vec<usize>>` member lists.
///
/// The constant-round pivot consumer reads fragments through this view:
/// size checks are cached popcounts and membership sweeps are word scans.
/// Member order is identical to [`UnionFind::groups`] — both derive from
/// [`UnionFind::labels`], so members ascend within a fragment and fragments
/// are born ordered by smallest member — which is what makes the packed
/// lowering bit-identical to the legacy `Vec` path. The `Vec` export
/// survives as the thin [`Fragments::to_groups`] / [`Fragments::members`]
/// adapters.
#[derive(Debug, Clone)]
pub struct Fragments {
    rows: Vec<BitRow>,
    /// Cached popcount per row, so the hot size comparisons never rescan.
    sizes: Vec<usize>,
}

impl Fragments {
    /// Packs the current partition of `uf`, one [`BitRow`] per fragment.
    pub fn from_union_find(uf: &mut UnionFind) -> Self {
        let rows = uf.classes_as_bitrows();
        let sizes = rows.iter().map(BitRow::count_ones).collect();
        Self { rows, sizes }
    }

    /// Number of fragments.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the universe (and so the fragment list) is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Member count of fragment `i` (a cached popcount).
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// The packed membership row of fragment `i`.
    pub fn row(&self, i: usize) -> &BitRow {
        &self.rows[i]
    }

    /// The smallest member of fragment `i` (fragments are never empty, but
    /// the lookup stays total).
    pub fn smallest(&self, i: usize) -> Option<usize> {
        self.rows[i].iter_ones().next()
    }

    /// Fragment indices ordered largest-first; ties keep the
    /// smallest-member birth order (stable sort), exactly matching
    /// `groups().sort_by_key(|f| Reverse(f.len()))` on the legacy path.
    pub fn by_size_desc(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(self.sizes[i]));
        order
    }

    /// Thin adapter: fragment `i` as an ascending member list.
    pub fn members(&self, i: usize) -> Vec<usize> {
        self.rows[i].ones()
    }

    /// Thin adapter: the whole partition as `Vec<Vec<usize>>`, bit-identical
    /// to [`UnionFind::groups`].
    pub fn to_groups(&self) -> Vec<Vec<usize>> {
        self.rows.iter().map(BitRow::ones).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connected::largest_component_size;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
    use proptest::prelude::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn random_cycles_are_permutations() {
        let h = HamiltonianUnion::random(50, 3, &mut rng(1));
        assert_eq!(h.num_cycles(), 3);
        for cycle in h.cycles() {
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn directed_edge_count_is_d_times_n() {
        let h = HamiltonianUnion::random(17, 4, &mut rng(2));
        assert_eq!(h.directed_edges().len(), 4 * 17);
    }

    #[test]
    fn tiny_graphs() {
        let h0 = HamiltonianUnion::random(0, 2, &mut rng(3));
        assert!(h0.directed_edges().is_empty());
        assert!(h0.er_rounds().is_empty());
        let h1 = HamiltonianUnion::random(1, 2, &mut rng(3));
        assert!(h1.directed_edges().is_empty());
        let h2 = HamiltonianUnion::random(2, 2, &mut rng(3));
        assert_eq!(h2.comparison_pairs(), vec![(0, 1)]);
        assert_eq!(h2.er_rounds().len(), 2);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn from_permutations_rejects_non_permutation() {
        let _ = HamiltonianUnion::from_permutations(3, vec![vec![0, 0, 2]]);
    }

    #[test]
    fn er_rounds_are_matchings_and_cover_all_pairs() {
        for &n in &[4usize, 5, 6, 9, 10, 33] {
            let h = HamiltonianUnion::random(n, 3, &mut rng(n as u64));
            let rounds = h.er_rounds();
            // Every round must be a matching: no vertex appears twice.
            for round in &rounds {
                let mut seen = vec![false; n];
                for &(u, v) in round {
                    assert_ne!(u, v);
                    assert!(!seen[u], "vertex {u} reused within a round (n={n})");
                    assert!(!seen[v], "vertex {v} reused within a round (n={n})");
                    seen[u] = true;
                    seen[v] = true;
                }
            }
            // The union of rounds must cover exactly the comparison pairs.
            let mut from_rounds: Vec<(usize, usize)> = rounds
                .iter()
                .flatten()
                .map(|&(u, v)| (u.min(v), u.max(v)))
                .collect();
            from_rounds.sort_unstable();
            from_rounds.dedup();
            assert_eq!(from_rounds, h.comparison_pairs());
            // Round count: 2 per cycle for even n, 3 per cycle for odd n >= 3.
            let per_cycle = if n % 2 == 0 { 2 } else { 3 };
            assert_eq!(rounds.len(), per_cycle * h.num_cycles());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn packed_fragments_cross_validate_against_groups(
            n in 1usize..80,
            unions in proptest::collection::vec((0usize..80, 0usize..80), 0..120),
            seed in 0u64..1_000,
        ) {
            // Drive the union-find with H_d edge answers plus arbitrary
            // extra unions, then require the packed view and the legacy
            // `Vec` export to agree on everything the pivot consumer reads.
            let mut uf = UnionFind::new(n);
            let h = HamiltonianUnion::random(n, 2, &mut rng(seed));
            for (u, v) in h.comparison_pairs() {
                if (u + v + seed as usize).is_multiple_of(3) {
                    uf.union(u, v);
                }
            }
            for (a, b) in unions {
                if a % n != b % n {
                    uf.union(a % n, b % n);
                }
            }
            let fragments = Fragments::from_union_find(&mut uf);
            let groups = uf.groups();
            prop_assert_eq!(fragments.to_groups(), groups.clone());
            prop_assert_eq!(fragments.len(), groups.len());
            let mut legacy_order: Vec<Vec<usize>> = groups.clone();
            legacy_order.sort_by_key(|f| std::cmp::Reverse(f.len()));
            let packed_order: Vec<Vec<usize>> = fragments
                .by_size_desc()
                .into_iter()
                .map(|i| fragments.members(i))
                .collect();
            prop_assert_eq!(packed_order, legacy_order, "pivot order must match");
            for (i, group) in groups.iter().enumerate() {
                prop_assert_eq!(fragments.size(i), group.len());
                prop_assert_eq!(fragments.smallest(i), group.first().copied());
                let prefix: Vec<usize> =
                    fragments.row(i).iter_ones().take(2).collect();
                prop_assert_eq!(&prefix, &group[..group.len().min(2)]);
            }
        }
    }

    #[test]
    fn exponent_bound_matches_paper_inequality() {
        // The polynomial bound must be <= -lambda^2 / 8 on (0, 0.4].
        let mut lambda = 0.01;
        while lambda <= 0.4 {
            let bound = HamiltonianUnion::exponent_bound(lambda);
            assert!(
                bound <= -lambda * lambda / 8.0 + 1e-12,
                "bound {bound} violates -lambda^2/8 at lambda={lambda}"
            );
            lambda += 0.01;
        }
    }

    #[test]
    fn exact_exponent_is_negative_and_below_taylor_bound() {
        for &lambda in &[0.05, 0.1, 0.2, 0.3, 0.4] {
            let exact = HamiltonianUnion::exponent_exact(lambda, 0.25);
            let taylor = HamiltonianUnion::exponent_bound(lambda);
            assert!(exact < 0.0);
            // The Taylor polynomial is an upper bound on t.
            assert!(exact <= taylor + 1e-12, "exact {exact} vs taylor {taylor}");
        }
    }

    #[test]
    fn required_cycles_monotone_and_sufficient() {
        let d_04 = HamiltonianUnion::required_cycles(0.4);
        let d_02 = HamiltonianUnion::required_cycles(0.2);
        let d_01 = HamiltonianUnion::required_cycles(0.1);
        assert!(
            d_04 < d_02 && d_02 < d_01,
            "smaller lambda needs more cycles"
        );
        for &lambda in &[0.1, 0.2, 0.3, 0.4] {
            let d = HamiltonianUnion::required_cycles(lambda);
            assert!(
                HamiltonianUnion::failure_exponent(lambda, d) < 0.0,
                "required_cycles({lambda}) = {d} does not make the exponent negative"
            );
            let d_exact = HamiltonianUnion::required_cycles_exact(lambda);
            assert!(d_exact <= d, "exact choice should never need more cycles");
            assert!(HamiltonianUnion::failure_exponent(lambda, d_exact) < 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn required_cycles_rejects_large_lambda() {
        let _ = HamiltonianUnion::required_cycles(0.5);
    }

    #[test]
    fn induced_component_in_large_subsets_is_large() {
        // Empirical check of Theorem 3's guarantee: for lambda = 0.25 and the
        // prescribed d, every tested subset of size lambda*n contains a
        // connected component (within the subset) of size > lambda*n/8.
        let n = 400;
        let lambda = 0.25;
        let d = HamiltonianUnion::required_cycles_exact(lambda);
        let mut r = rng(77);
        let h = HamiltonianUnion::random(n, d, &mut r);
        let w_size = (lambda * n as f64) as usize;
        for trial in 0..20 {
            let mut t = rng(1000 + trial);
            let members = t.sample_indices(n, w_size);
            let in_w: Vec<Option<usize>> = {
                let mut map = vec![None; n];
                for (local, &global) in members.iter().enumerate() {
                    map[global] = Some(local);
                }
                map
            };
            let sub_edges: Vec<(usize, usize)> = h
                .comparison_pairs()
                .into_iter()
                .filter_map(|(u, v)| match (in_w[u], in_w[v]) {
                    (Some(a), Some(b)) => Some((a, b)),
                    _ => None,
                })
                .collect();
            let largest = largest_component_size(w_size, &sub_edges);
            // `largest_component_size` now runs on the packed bitrow
            // substrate; cross-validate it against the legacy group-list
            // path on every trial before trusting the bound below.
            let legacy = crate::connected_components(w_size, &sub_edges)
                .iter()
                .map(Vec::len)
                .max()
                .unwrap_or(0);
            assert_eq!(largest, legacy, "packed and legacy paths must agree");
            assert!(
                largest * 8 > w_size,
                "trial {trial}: largest component {largest} of subset {w_size} too small"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn comparison_pairs_are_symmetric_dedup_of_edges(
            n in 2usize..40,
            d in 1usize..5,
            seed in 0u64..1000,
        ) {
            let h = HamiltonianUnion::random(n, d, &mut rng(seed));
            let pairs = h.comparison_pairs();
            // Pairs are sorted, unique, and within range.
            let mut sorted = pairs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &pairs);
            prop_assert!(pairs.iter().all(|&(u, v)| u < v && v < n));
            // Each cycle contributes at most n pairs.
            prop_assert!(pairs.len() <= d * n);
            // A single Hamiltonian cycle on >= 3 vertices has exactly n pairs.
            if d == 1 && n >= 3 {
                prop_assert_eq!(pairs.len(), n);
            }
        }

        #[test]
        fn digraph_is_strongly_connected(
            n in 2usize..60,
            d in 1usize..4,
            seed in 0u64..1000,
        ) {
            // A Hamiltonian cycle alone makes the digraph strongly connected.
            let h = HamiltonianUnion::random(n, d, &mut rng(seed));
            let g = h.to_digraph();
            let sccs = crate::tarjan_scc(&g);
            prop_assert_eq!(sccs.len(), 1);
        }
    }
}
