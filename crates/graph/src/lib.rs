//! Graph substrate for parallel equivalence class sorting.
//!
//! The constant-round ER algorithm of the paper (Theorem 4) tests the edges of
//! `H_d`, a union of `d` random Hamiltonian cycles, and then works with the
//! strongly connected components induced by same-class edges; the lower-bound
//! adversary of Section 3 maintains weighted equitable colorings of a
//! "known-different" graph. This crate provides those building blocks:
//!
//! * [`UnionFind`] — disjoint sets with union by size and path compression,
//!   the bookkeeping structure used to aggregate discovered equivalences.
//! * [`bitset`] — the packed substrates: [`PairBitset`], one bit per
//!   unordered pair in a flat upper-triangular word array, and [`BitRow`],
//!   a flat per-element bit set. The adversary knowledge graph, the
//!   union-find class views, and the word-parallel `same_batch` oracle path
//!   are all built on these.
//! * [`DiGraph`] — a compact adjacency-list directed graph.
//! * [`scc`] — Tarjan's and Kosaraju's strongly connected component
//!   algorithms (both, so they can cross-validate each other in tests).
//! * [`connected`] — connected components of undirected edge sets.
//! * [`HamiltonianUnion`] — the `H_d` construction together with its
//!   decomposition into exclusive-read comparison rounds.
//! * [`coloring`] — equitable and weighted equitable colorings and their
//!   validity checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod coloring;
pub mod connected;
pub mod digraph;
pub mod hamiltonian;
pub mod scc;
pub mod union_find;

pub use bitset::{coord_to_idx, BitRow, PairBitset};
pub use coloring::{EquitableColoring, WeightedEquitableColoring};
pub use connected::{components_as_bitrows, connected_components};
pub use digraph::DiGraph;
pub use hamiltonian::{Fragments, HamiltonianUnion};
pub use scc::{component_labels, kosaraju_scc, scc_as_bitrows, tarjan_scc};
pub use union_find::UnionFind;
