//! Strongly connected components.
//!
//! Theorem 3 of the paper (from Goodrich's fault-diagnosis work) guarantees
//! that the union of `d` random Hamiltonian cycles induces, inside every large
//! enough vertex subset, a *strongly connected* component of linear size. The
//! constant-round algorithm therefore needs an SCC routine over the subgraph
//! of `H_d` edges whose comparisons answered "same class". Two independent
//! implementations are provided — an iterative Tarjan and a Kosaraju — so the
//! test-suite can cross-validate them on random graphs.

use crate::bitset::BitRow;
use crate::DiGraph;

/// The shared Tarjan pass behind every SCC export of this module: assigns
/// each vertex a *canonical* component label (components are numbered by
/// first appearance when scanning vertices in ascending order, i.e. by their
/// smallest member) and returns the labels plus the component count.
/// [`tarjan_scc`], [`component_labels`], and [`scc_as_bitrows`] are all thin
/// adapters over this pass, so they agree with each other by construction.
///
/// The labels vector is the memory-light primary representation: `n` words
/// regardless of how many components exist (a 200 000-singleton graph would
/// cost quadratic memory as membership rows).
fn tarjan_labels(graph: &DiGraph) -> (Vec<usize>, usize) {
    let n = graph.num_vertices();
    const UNVISITED: u32 = u32::MAX;

    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = BitRow::new(n);
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    // Raw component ids in Tarjan emission order (reverse topological);
    // canonicalized below.
    let mut raw = vec![usize::MAX; n];
    let mut raw_count = 0usize;

    // Explicit DFS state machine: (vertex, neighbour cursor).
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }

    for root in 0..n {
        if index[root] != UNVISITED {
            continue;
        }
        let mut call_stack = vec![Frame::Enter(root)];
        while let Some(frame) = call_stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v as u32);
                    on_stack.set(v);
                    call_stack.push(Frame::Resume(v, 0));
                }
                Frame::Resume(v, mut cursor) => {
                    let neighbors = graph.neighbor_slice(v);
                    let mut descended = false;
                    while cursor < neighbors.len() {
                        let w = neighbors[cursor] as usize;
                        cursor += 1;
                        if index[w] == UNVISITED {
                            call_stack.push(Frame::Resume(v, cursor));
                            call_stack.push(Frame::Enter(w));
                            descended = true;
                            break;
                        } else if on_stack.test(w) {
                            lowlink[v] = lowlink[v].min(index[w]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    // All neighbours processed: maybe emit a component.
                    if lowlink[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow") as usize;
                            on_stack.clear(w);
                            raw[w] = raw_count;
                            if w == v {
                                break;
                            }
                        }
                        raw_count += 1;
                    }
                    // Propagate lowlink to the parent frame, if any.
                    if let Some(Frame::Resume(parent, _)) = call_stack.last() {
                        let parent = *parent;
                        lowlink[parent] = lowlink[parent].min(lowlink[v]);
                    }
                }
            }
        }
    }

    // Canonicalize: renumber components by their smallest vertex.
    let mut canon = vec![usize::MAX; raw_count];
    let mut labels = vec![0usize; n];
    let mut next = 0usize;
    for v in 0..n {
        let r = raw[v];
        if canon[r] == usize::MAX {
            canon[r] = next;
            next += 1;
        }
        labels[v] = canon[r];
    }
    (labels, raw_count)
}

/// Computes strongly connected components with an iterative Tarjan algorithm.
///
/// Returns the components as vectors of vertex indices; within a component the
/// vertices are sorted, and components are ordered by their smallest vertex.
/// The classic Tarjan emits components in reverse topological order, but the
/// callers in this workspace treat components as unordered sets, so a
/// deterministic canonical order is more useful. A thin adapter over the
/// internal label pass shared with [`component_labels`] and
/// [`scc_as_bitrows`].
pub fn tarjan_scc(graph: &DiGraph) -> Vec<Vec<usize>> {
    let (labels, count) = tarjan_labels(graph);
    let mut components = vec![Vec::new(); count];
    for (v, &label) in labels.iter().enumerate() {
        components[label].push(v);
    }
    components
}

/// The components of [`tarjan_scc`] as one packed [`BitRow`] membership mask
/// per component, in the same canonical order (row `c` has bit `v` set iff
/// `v` is in component `c`).
///
/// Costs `num_components × n` bits — on graphs that may decompose into very
/// many small components, prefer [`component_labels`], which is `n` words no
/// matter what.
pub fn scc_as_bitrows(graph: &DiGraph) -> Vec<BitRow> {
    let n = graph.num_vertices();
    let (labels, count) = tarjan_labels(graph);
    let mut rows: Vec<BitRow> = (0..count).map(|_| BitRow::new(n)).collect();
    for (v, &label) in labels.iter().enumerate() {
        rows[label].set(v);
    }
    rows
}

/// Computes strongly connected components with Kosaraju's two-pass algorithm.
///
/// Output format matches [`tarjan_scc`].
pub fn kosaraju_scc(graph: &DiGraph) -> Vec<Vec<usize>> {
    let n = graph.num_vertices();
    // First pass: iterative DFS on the original graph recording finish order.
    let mut visited = BitRow::new(n);
    let mut finish_order: Vec<usize> = Vec::with_capacity(n);
    for root in 0..n {
        if visited.test(root) {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
        visited.set(root);
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            let neighbors = graph.neighbor_slice(v);
            if *cursor < neighbors.len() {
                let w = neighbors[*cursor] as usize;
                *cursor += 1;
                if !visited.test(w) {
                    visited.set(w);
                    stack.push((w, 0));
                }
            } else {
                finish_order.push(v);
                stack.pop();
            }
        }
    }

    // Second pass: DFS on the transpose in reverse finish order.
    let transpose = graph.reversed();
    let mut component_of = vec![usize::MAX; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for &root in finish_order.iter().rev() {
        if component_of[root] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut stack = vec![root];
        component_of[root] = id;
        while let Some(v) = stack.pop() {
            members.push(v);
            for w in transpose.neighbors(v) {
                if component_of[w] == usize::MAX {
                    component_of[w] = id;
                    stack.push(w);
                }
            }
        }
        members.sort_unstable();
        components.push(members);
    }

    components.sort_by_key(|c| c[0]);
    components
}

/// Returns, for each vertex, the index of its component in the output of
/// [`tarjan_scc`] — straight from the shared label pass, without
/// materializing any membership lists.
pub fn component_labels(graph: &DiGraph) -> Vec<usize> {
    tarjan_labels(graph).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn canon(mut sccs: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        for c in &mut sccs {
            c.sort_unstable();
        }
        sccs.sort();
        sccs
    }

    #[test]
    fn empty_graph_has_no_components() {
        let g = DiGraph::new(0);
        assert!(tarjan_scc(&g).is_empty());
        assert!(kosaraju_scc(&g).is_empty());
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = DiGraph::new(4);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 4);
        assert!(sccs.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn directed_cycle_is_one_component() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn directed_path_is_all_singletons() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 4);
    }

    #[test]
    fn two_cycles_joined_by_one_way_edge() {
        // 0-1-2 cycle -> 3-4 cycle, joined by edge 2 -> 3 only.
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (2, 3)]);
        let sccs = canon(tarjan_scc(&g));
        assert_eq!(sccs, vec![vec![0, 1, 2], vec![3, 4]]);
    }

    #[test]
    fn self_loop_is_a_singleton_component() {
        let g = DiGraph::from_edges(2, &[(0, 0)]);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 2);
    }

    #[test]
    fn kosaraju_matches_on_known_graph() {
        let g = DiGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 0),
                (3, 1),
                (3, 2),
                (3, 4),
                (4, 3),
                (4, 5),
                (5, 2),
                (5, 6),
                (6, 5),
                (7, 4),
                (7, 6),
                (7, 7),
            ],
        );
        assert_eq!(canon(tarjan_scc(&g)), canon(kosaraju_scc(&g)));
    }

    #[test]
    fn labels_agree_with_components() {
        let g = DiGraph::from_edges(6, &[(0, 1), (1, 0), (2, 3), (3, 2), (4, 5)]);
        let labels = component_labels(&g);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[5]);
    }

    #[test]
    fn bitrows_agree_with_components() {
        // All three adapters over the shared label pass must describe the
        // same partition in the same canonical order.
        let g = DiGraph::from_edges(8, &[(1, 2), (2, 1), (0, 1), (4, 5), (5, 6), (6, 4), (7, 7)]);
        let components = tarjan_scc(&g);
        let rows = scc_as_bitrows(&g);
        let labels = component_labels(&g);
        assert_eq!(rows.len(), components.len());
        for (id, (component, row)) in components.iter().zip(&rows).enumerate() {
            assert_eq!(row.len(), g.num_vertices());
            assert_eq!(row.count_ones(), component.len());
            for (v, &label) in labels.iter().enumerate() {
                assert_eq!(row.test(v), component.contains(&v));
                assert_eq!(row.test(v), label == id);
            }
        }
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-vertex path: a recursive Tarjan would blow the stack here.
        let n = 200_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = DiGraph::from_edges(n, &edges);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), n);
    }

    #[test]
    fn long_cycle_does_not_overflow_stack() {
        let n = 100_000;
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let g = DiGraph::from_edges(n, &edges);
        let sccs = tarjan_scc(&g);
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs[0].len(), n);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tarjan_equals_kosaraju_on_random_graphs(
            n in 1usize..40,
            raw_edges in proptest::collection::vec((0usize..40, 0usize..40), 0..200)
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let g = DiGraph::from_edges(n, &edges);
            prop_assert_eq!(canon(tarjan_scc(&g)), canon(kosaraju_scc(&g)));
        }

        #[test]
        fn components_partition_the_vertices(
            n in 1usize..40,
            raw_edges in proptest::collection::vec((0usize..40, 0usize..40), 0..200)
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let g = DiGraph::from_edges(n, &edges);
            let sccs = tarjan_scc(&g);
            let mut all: Vec<usize> = sccs.iter().flatten().copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..n).collect::<Vec<_>>());
        }

        #[test]
        fn bitrows_match_component_lists_on_random_graphs(
            n in 1usize..40,
            raw_edges in proptest::collection::vec((0usize..40, 0usize..40), 0..200)
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let g = DiGraph::from_edges(n, &edges);
            let components = tarjan_scc(&g);
            let rows = scc_as_bitrows(&g);
            prop_assert_eq!(rows.len(), components.len());
            for (component, row) in components.iter().zip(&rows) {
                let members: Vec<usize> = (0..n).filter(|&v| row.test(v)).collect();
                prop_assert_eq!(&members, component);
            }
        }

        #[test]
        fn mutual_reachability_iff_same_component(
            n in 2usize..20,
            raw_edges in proptest::collection::vec((0usize..20, 0usize..20), 0..80),
            a in 0usize..20,
            b in 0usize..20,
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let a = a % n;
            let b = b % n;
            let g = DiGraph::from_edges(n, &edges);
            let labels = component_labels(&g);
            let mutual = g.reachable_from(a)[b] && g.reachable_from(b)[a];
            prop_assert_eq!(labels[a] == labels[b], mutual);
        }
    }
}
