//! Disjoint-set union (union-find) with union by size and path compression.
//!
//! The parent array is packed (`Vec<u32>`), `find` is iterative path halving
//! with no allocation on any path (pinned by the workspace test
//! `tests/union_find_alloc.rs`), and the partition exports
//! ([`UnionFind::groups`], [`UnionFind::labels`],
//! [`UnionFind::classes_as_bitrows`]) run on flat sentinel vectors instead of
//! hash maps.

use crate::bitset::BitRow;

/// A disjoint-set forest over elements `0..n`.
///
/// Supports near-constant-time `find` / `union`, tracks the number and sizes
/// of sets, and can export the partition as explicit groups — which is exactly
/// the bookkeeping an equivalence class sorting algorithm does for free in
/// Valiant's model between comparison rounds.
///
/// # Example
///
/// ```
/// use ecs_graph::UnionFind;
///
/// let mut uf = UnionFind::new(5);
/// uf.union(0, 1);
/// uf.union(3, 4);
/// assert!(uf.same_set(0, 1));
/// assert!(!uf.same_set(1, 2));
/// assert_eq!(uf.num_sets(), 3);
/// assert_eq!(uf.set_size(4), 2);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(
            n <= u32::MAX as usize,
            "UnionFind supports up to u32::MAX elements"
        );
        Self {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            num_sets: n,
        }
    }

    /// Number of elements in the universe.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Returns the canonical representative of `x`'s set.
    ///
    /// Uses iterative path halving, so deep chains flatten over time without
    /// recursion.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Read-only find (no path compression); useful when only a shared
    /// reference is available.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Returns `true` if `a` and `b` are currently in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Merges the sets containing `a` and `b`.
    ///
    /// Returns `true` if a merge happened, `false` if they were already
    /// together.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let mut ra = self.find(a);
        let mut rb = self.find(b);
        if ra == rb {
            return false;
        }
        // Union by size: attach the smaller tree beneath the larger.
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.num_sets -= 1;
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }

    /// Exports the partition as a list of groups (each a sorted list of
    /// element indices). Groups are ordered by their smallest element.
    ///
    /// Two flat passes over a sentinel label vector — elements arrive in
    /// ascending order, so each group comes out sorted and groups are born
    /// ordered by smallest member; no hashing, no sorting.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let labels = self.labels();
        let mut sizes = vec![0usize; self.num_sets];
        for &l in &labels {
            sizes[l] += 1;
        }
        let mut groups: Vec<Vec<usize>> = sizes.iter().map(|&s| Vec::with_capacity(s)).collect();
        for (x, &l) in labels.iter().enumerate() {
            groups[l].push(x);
        }
        groups
    }

    /// Returns, for every element, a dense group label in `0..num_sets`,
    /// numbered by order of each group's smallest element.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut label_of_root = vec![usize::MAX; n];
        let mut labels = vec![usize::MAX; n];
        let mut next = 0usize;
        for (x, slot) in labels.iter_mut().enumerate() {
            let r = self.find(x);
            if label_of_root[r] == usize::MAX {
                label_of_root[r] = next;
                next += 1;
            }
            *slot = label_of_root[r];
        }
        labels
    }

    /// The partition as one [`BitRow`] per set: row `l` has bit `x` set iff
    /// element `x` carries label `l` (labels as in [`UnionFind::labels`]).
    ///
    /// This is the packed view shared by the graph consumers — a class
    /// membership test is a word load, and whole-class filters (coloring
    /// candidate masks, SCC seed sets, Hamiltonian occupancy) intersect
    /// against a row 64 elements per instruction instead of walking a
    /// `Vec<usize>` member list.
    pub fn classes_as_bitrows(&mut self) -> Vec<BitRow> {
        let labels = self.labels();
        let mut rows = vec![BitRow::new(self.len()); self.num_sets];
        for (x, &l) in labels.iter().enumerate() {
            rows[l].set(x);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_sets(), 4);
        for i in 0..4 {
            assert_eq!(uf.find(i), i);
            assert_eq!(uf.set_size(i), 1);
        }
    }

    #[test]
    fn empty_universe() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert_eq!(uf.num_sets(), 4);
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.same_set(0, 2));
        assert!(!uf.same_set(0, 3));
    }

    #[test]
    fn groups_are_sorted_partition() {
        let mut uf = UnionFind::new(7);
        uf.union(0, 3);
        uf.union(3, 5);
        uf.union(1, 6);
        let groups = uf.groups();
        assert_eq!(groups, vec![vec![0, 3, 5], vec![1, 6], vec![2], vec![4]]);
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let mut uf = UnionFind::new(5);
        uf.union(2, 4);
        uf.union(0, 1);
        let labels = uf.labels();
        assert_eq!(labels.len(), 5);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[4]);
        assert_ne!(labels[0], labels[2]);
        let max = *labels.iter().max().unwrap();
        assert_eq!(max + 1, uf.num_sets());
    }

    #[test]
    fn bitrows_mirror_groups() {
        let mut uf = UnionFind::new(10);
        uf.union(0, 4);
        uf.union(4, 8);
        uf.union(1, 9);
        let rows = uf.classes_as_bitrows();
        let groups = uf.groups();
        assert_eq!(rows.len(), groups.len());
        for (row, group) in rows.iter().zip(&groups) {
            assert_eq!(row.ones(), *group);
            assert_eq!(row.count_ones(), group.len());
        }
        // Rows are disjoint and cover every element.
        let total: usize = rows.iter().map(|r| r.count_ones()).sum();
        assert_eq!(total, 10);
        for (i, a) in rows.iter().enumerate() {
            for b in rows.iter().skip(i + 1) {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn find_immutable_agrees_with_find() {
        let mut uf = UnionFind::new(32);
        for i in 0..31 {
            uf.union(i, i + 1);
        }
        let from_immutable: Vec<usize> = (0..32).map(|i| uf.find_immutable(i)).collect();
        let from_mutable: Vec<usize> = (0..32).map(|i| uf.find(i)).collect();
        assert_eq!(from_immutable, from_mutable);
    }

    #[test]
    fn long_chain_flattens() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert_eq!(uf.set_size(0), n);
        // After finds, the tree should be shallow: every parent points at the root.
        let root = uf.find(n - 1);
        for i in 0..n {
            let _ = uf.find(i);
        }
        for i in 0..n {
            assert_eq!(uf.parent[uf.parent[i] as usize] as usize, root);
        }
    }

    /// Reference implementation: naive label propagation.
    fn naive_partition(n: usize, unions: &[(usize, usize)]) -> Vec<usize> {
        let mut label: Vec<usize> = (0..n).collect();
        for &(a, b) in unions {
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        // Canonicalise: renumber by first occurrence.
        let mut canon = std::collections::HashMap::new();
        let mut next = 0usize;
        label
            .iter()
            .map(|&l| {
                *canon.entry(l).or_insert_with(|| {
                    let v = next;
                    next += 1;
                    v
                })
            })
            .collect()
    }

    proptest! {
        #[test]
        fn matches_naive_partition(
            n in 1usize..60,
            ops in proptest::collection::vec((0usize..60, 0usize..60), 0..120)
        ) {
            let ops: Vec<(usize, usize)> = ops
                .into_iter()
                .map(|(a, b)| (a % n, b % n))
                .collect();
            let mut uf = UnionFind::new(n);
            for &(a, b) in &ops {
                uf.union(a, b);
            }
            let expected = naive_partition(n, &ops);
            let got = uf.labels();
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn sizes_sum_to_n(
            n in 1usize..80,
            ops in proptest::collection::vec((0usize..80, 0usize..80), 0..200)
        ) {
            let mut uf = UnionFind::new(n);
            for (a, b) in ops {
                uf.union(a % n, b % n);
            }
            let groups = uf.groups();
            prop_assert_eq!(groups.len(), uf.num_sets());
            let total: usize = groups.iter().map(|g| g.len()).sum();
            prop_assert_eq!(total, n);
            for g in &groups {
                let mut uf2 = uf.clone();
                prop_assert_eq!(uf2.set_size(g[0]), g.len());
            }
        }
    }
}
