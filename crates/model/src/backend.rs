//! Execution backends: how a round's comparisons are physically evaluated.
//!
//! The comparison *model* (rounds, processor budgets, metrics) is charged
//! identically regardless of backend; the backend only decides which OS
//! threads perform the oracle calls. Answers are always collected in
//! submission order, so for pure oracles (anything answering from a fixed
//! partition, like [`crate::InstanceOracle`]) partitions, comparison counts
//! and round counts are **bit-identical** across backends and thread counts.
//!
//! Adaptive oracles whose answers depend on the *temporal order* of queries
//! (e.g. the lower-bound adversaries) participate through the session's
//! round-boundary hooks ([`crate::EquivalenceOracle::round_opened`] /
//! [`crate::EquivalenceOracle::round_closed`]): all queries of one round are
//! answered against the state committed at round start and the deferred
//! effects are applied in one deterministic commit when the round closes, so
//! they too are bit-identical across backends, wave sizes, and thread counts.

use crate::calibrate::{CalibrationHandle, CalibrationLog, PinnedKnobs, TuningDecision};
use crate::oracle::EquivalenceOracle;
use rayon::prelude::*;
use rayon::{ThreadPool, ThreadPoolBuilder};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Smallest number of items a single pool task will process when a round is
/// sharded, keeping chunks cache-friendly instead of pair-at-a-time.
const MIN_CHUNK: usize = 1024;

/// Where a [`crate::ComparisonSession`] evaluates each round's comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionBackend {
    /// Evaluate every comparison on the calling thread.
    #[default]
    Sequential,
    /// Evaluate large rounds on a work-stealing pool of OS threads.
    Threaded {
        /// Number of worker threads (values `<= 1` behave sequentially).
        threads: usize,
        /// Minimum round size dispatched to the pool; smaller rounds are
        /// evaluated inline because per-task overhead would dwarf the array
        /// lookups. Defaults to
        /// [`ExecutionBackend::DEFAULT_PARALLEL_THRESHOLD`].
        threshold: usize,
    },
    /// Evaluate each round on the calling thread as one or few
    /// [`EquivalenceOracle::same_batch`] request waves instead of per-pair
    /// `same` calls.
    ///
    /// For in-memory oracles this amortizes batch validation; for oracles
    /// whose `same_batch` override answers a wave in one round trip (service
    /// calls, disk-resident partitions), it turns a round of `m` comparisons
    /// into `⌈m / wave⌉` requests. Waves are submitted in pair order and
    /// answers collected in submission order, so partitions and
    /// [`crate::Metrics`] are bit-identical to [`ExecutionBackend::Sequential`]
    /// (charging happens before evaluation and is backend-independent).
    Batched {
        /// Maximum number of pairs per `same_batch` wave; `0` submits the
        /// whole round as a single wave. Defaults to
        /// [`ExecutionBackend::DEFAULT_BATCH_WAVE`] via
        /// [`ExecutionBackend::batched`].
        wave: usize,
    },
    /// Self-tuning: each round is lowered to concrete `Threaded` / `Batched`
    /// parameters by a [`CalibrationHandle`] — a startup micro-probe plus
    /// observed per-round latency feedback, with every decision recorded so
    /// a run replays bit-identically from its [`CalibrationLog`]. Outputs
    /// (partitions, [`crate::Metrics`], CSVs) are identical to
    /// [`ExecutionBackend::Sequential`] regardless: charging precedes
    /// evaluation and answers are collected in submission order, so tuning
    /// can only move *where and in what waves* the oracle calls happen.
    Auto {
        /// Ticket into the calibration registry (recording or replaying).
        calibration: CalibrationHandle,
    },
}

impl ExecutionBackend {
    /// The default minimum round size evaluated on the pool. Below this the
    /// fixed cost of queueing and waking workers exceeds the comparison work
    /// itself (each comparison is two array reads).
    pub const DEFAULT_PARALLEL_THRESHOLD: usize = 4096;

    /// The default wave size of [`ExecutionBackend::Batched`]: large enough
    /// to amortize a per-wave fixed cost (validation, a request round trip)
    /// over hundreds of pairs, small enough that a wave of replies stays
    /// cache-resident.
    pub const DEFAULT_BATCH_WAVE: usize = 256;

    /// A threaded backend with the default parallel threshold.
    pub fn threaded(threads: usize) -> Self {
        ExecutionBackend::Threaded {
            threads,
            threshold: Self::DEFAULT_PARALLEL_THRESHOLD,
        }
    }

    /// A batched backend submitting waves of `wave` pairs (`0` = the whole
    /// round as a single wave).
    pub fn batched(wave: usize) -> Self {
        ExecutionBackend::Batched { wave }
    }

    /// A fresh self-tuning backend: probes the process (cached), then adapts
    /// threshold/wave from observed round latency, recording every decision.
    pub fn auto() -> Self {
        Self::auto_pinned(PinnedKnobs::default())
    }

    /// A self-tuning backend with explicitly pinned knobs: a pinned knob
    /// (`--threads`, `--batch`) is lowered verbatim into every decision and
    /// excluded from adaptation; the remaining knobs stay adaptive.
    pub fn auto_pinned(pins: PinnedKnobs) -> Self {
        ExecutionBackend::Auto {
            calibration: CalibrationHandle::record(pins),
        }
    }

    /// A self-tuning backend that replays a recorded [`CalibrationLog`]
    /// verbatim: the decision schedule — and therefore every output — is
    /// bit-identical to the recording run.
    pub fn auto_replay(log: &CalibrationLog) -> Self {
        ExecutionBackend::Auto {
            calibration: CalibrationHandle::replay(log),
        }
    }

    /// The calibration handle, when this is an [`ExecutionBackend::Auto`].
    pub fn calibration(&self) -> Option<CalibrationHandle> {
        match *self {
            ExecutionBackend::Auto { calibration } => Some(calibration),
            _ => None,
        }
    }

    /// Maps a thread-count knob (e.g. a `--threads` flag) onto a backend:
    /// `0` and `1` mean sequential, anything larger a threaded pool of that
    /// size with the default threshold.
    pub fn from_threads(threads: usize) -> Self {
        if threads > 1 {
            Self::threaded(threads)
        } else {
            ExecutionBackend::Sequential
        }
    }

    /// Reads the backend from the `ECS_THREADS` environment variable: unset,
    /// unparsable and `1` select [`ExecutionBackend::Sequential`]; `0` is not
    /// a usable worker count and clamps to the machine's available
    /// parallelism with a warning (it used to be possible for a zero count to
    /// reach the pool builder as a degenerate request). This is what
    /// [`crate::ComparisonSession::new`] uses, so exporting `ECS_THREADS=4`
    /// routes every session in the process through the pool.
    ///
    /// The variable is read once and cached: sessions are created per
    /// algorithm run (sometimes from several pool workers at once), and
    /// `std::env::var` takes a process-global lock.
    pub fn from_env() -> Self {
        static FROM_ENV: OnceLock<ExecutionBackend> = OnceLock::new();
        *FROM_ENV.get_or_init(|| match std::env::var("ECS_THREADS") {
            Ok(value) => Self::from_env_value(&value),
            Err(_) => ExecutionBackend::Sequential,
        })
    }

    /// Maps one `ECS_THREADS` value onto a backend (the uncached parsing
    /// behind [`ExecutionBackend::from_env`]).
    fn from_env_value(value: &str) -> Self {
        match value.trim().parse::<usize>() {
            Ok(0) => {
                let available = available_parallelism();
                eprintln!(
                    "warning: ECS_THREADS=0 is not a usable worker count; \
                     clamping to available parallelism ({available})"
                );
                Self::from_threads(available)
            }
            Ok(threads) => Self::from_threads(threads),
            Err(_) => ExecutionBackend::Sequential,
        }
    }

    /// The planning-time [`TuningDecision`] of this backend: what pool
    /// sizing, labels, and throughput planning consume instead of reading
    /// variant fields. For [`ExecutionBackend::Auto`] this previews the
    /// calibration **without** touching the recorded trace, so planning
    /// questions never desynchronize record from replay.
    pub fn worker_decision(&self) -> TuningDecision {
        match *self {
            ExecutionBackend::Sequential => TuningDecision::sequential(),
            ExecutionBackend::Threaded { threads, threshold } => TuningDecision {
                threads: threads.max(1),
                threshold: threshold.max(1),
                wave: None,
            },
            ExecutionBackend::Batched { wave } => TuningDecision {
                threads: 1,
                threshold: usize::MAX,
                wave: Some(wave),
            },
            ExecutionBackend::Auto { calibration } => calibration.preview(),
        }
    }

    /// The per-round [`TuningDecision`] for a round of `len` pairs. For
    /// [`ExecutionBackend::Auto`] this is the recording/replaying step — it
    /// advances the decision trace — so only [`ExecutionBackend::evaluate`]
    /// calls it, exactly once per evaluated round.
    fn tuning(&self, len: usize) -> TuningDecision {
        match *self {
            ExecutionBackend::Auto { calibration } => calibration.decide(len),
            _ => self.worker_decision(),
        }
    }

    /// The number of OS threads this backend evaluates on.
    pub fn threads(&self) -> usize {
        match *self {
            ExecutionBackend::Sequential | ExecutionBackend::Batched { .. } => 1,
            ExecutionBackend::Threaded { threads, .. } => threads.max(1),
            ExecutionBackend::Auto { .. } => {
                let decision = self.worker_decision();
                if decision.wave.is_some() {
                    1
                } else {
                    decision.threads
                }
            }
        }
    }

    /// Whether rounds can be evaluated on more than one OS thread.
    pub fn is_parallel(&self) -> bool {
        self.threads() > 1
    }

    /// A short human-readable label (`"sequential"`, `"threaded(4)"`,
    /// `"batched(256)"`, `"auto"`, `"auto(replay)"`) for benchmark tables
    /// and CLI banners.
    pub fn label(&self) -> String {
        match *self {
            ExecutionBackend::Sequential => "sequential".to_string(),
            ExecutionBackend::Threaded { threads, .. } => format!("threaded({threads})"),
            ExecutionBackend::Batched { wave: 0 } => "batched(all)".to_string(),
            ExecutionBackend::Batched { wave } => format!("batched({wave})"),
            ExecutionBackend::Auto { calibration } => {
                if calibration.is_replay() {
                    "auto(replay)".to_string()
                } else {
                    "auto".to_string()
                }
            }
        }
    }

    /// Runs `op` with this backend's pool installed as the current rayon
    /// pool, so bare `par_iter()` calls inside `op` (e.g. trial-level
    /// parallelism in the analysis crate) use this backend's thread count.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        shared_pool(self.threads()).install(op)
    }

    /// Evaluates one round of comparisons against the oracle, returning one
    /// answer per pair in submission order.
    ///
    /// Every variant lowers through the same [`TuningDecision`] seam; the
    /// fixed-parameter variants just lower to a constant decision. For
    /// [`ExecutionBackend::Auto`], non-empty rounds additionally feed their
    /// observed wall-clock back into the calibration (recording mode only).
    pub fn evaluate<O: EquivalenceOracle + ?Sized>(
        &self,
        oracle: &O,
        pairs: &[(usize, usize)],
    ) -> Vec<bool> {
        if pairs.is_empty() {
            return Vec::new();
        }
        match *self {
            ExecutionBackend::Auto { calibration } => {
                let decision = calibration.decide(pairs.len());
                let start = Instant::now();
                let answers = Self::evaluate_decision(oracle, pairs, decision);
                calibration.observe(pairs.len(), start.elapsed());
                answers
            }
            _ => Self::evaluate_decision(oracle, pairs, self.tuning(pairs.len())),
        }
    }

    /// Evaluates one non-empty round under one concrete decision. This is
    /// the single lowering every backend variant funnels through: the
    /// batched wave path when `wave` is set, the pool path when the round
    /// clears the threshold, the inline scalar loop otherwise.
    fn evaluate_decision<O: EquivalenceOracle + ?Sized>(
        oracle: &O,
        pairs: &[(usize, usize)],
        decision: TuningDecision,
    ) -> Vec<bool> {
        if let Some(wave) = decision.wave {
            return if wave == 0 || wave >= pairs.len() {
                oracle.same_batch(pairs)
            } else {
                // Waves are cut in pair order, so concatenating their
                // answers reproduces the scalar answer vector exactly.
                let mut answers = Vec::with_capacity(pairs.len());
                for wave_pairs in pairs.chunks(wave) {
                    answers.extend(oracle.same_batch(wave_pairs));
                }
                answers
            };
        }
        let threshold = decision.threshold.max(1);
        if decision.threads > 1 && pairs.len() >= threshold {
            shared_pool(decision.threads).install(|| {
                pairs
                    .par_iter()
                    .with_min_len(MIN_CHUNK.min(threshold))
                    .map(|&(a, b)| oracle.same(a, b))
                    .collect()
            })
        } else {
            pairs.iter().map(|&(a, b)| oracle.same(a, b)).collect()
        }
    }
}

/// The machine's available parallelism, clamped to at least one — the target
/// that degenerate zero worker-count knobs (`--threads 0`, `--jobs 0`,
/// `ECS_THREADS=0`) are corrected to.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Process-wide pool cache, one pool per distinct thread count. Sessions are
/// created per algorithm run, so building (and tearing down) a pool per
/// session would dominate; instead pools are built once and leaked — the
/// number of distinct thread counts in a process is tiny.
pub(crate) fn shared_pool(threads: usize) -> &'static ThreadPool {
    static POOLS: OnceLock<Mutex<HashMap<usize, &'static ThreadPool>>> = OnceLock::new();
    let mut pools = POOLS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    pools.entry(threads).or_insert_with(|| {
        Box::leak(Box::new(
            ThreadPoolBuilder::new()
                .num_threads(threads.max(1))
                .build()
                .expect("cannot spawn execution backend thread pool"),
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::LabelOracle;

    #[test]
    fn default_is_sequential() {
        assert_eq!(ExecutionBackend::default(), ExecutionBackend::Sequential);
        assert_eq!(ExecutionBackend::Sequential.threads(), 1);
        assert!(!ExecutionBackend::Sequential.is_parallel());
    }

    #[test]
    fn threaded_constructor_uses_default_threshold() {
        let backend = ExecutionBackend::threaded(4);
        assert_eq!(
            backend,
            ExecutionBackend::Threaded {
                threads: 4,
                threshold: ExecutionBackend::DEFAULT_PARALLEL_THRESHOLD,
            }
        );
        assert_eq!(backend.threads(), 4);
        assert!(backend.is_parallel());
        assert_eq!(backend.label(), "threaded(4)");
    }

    #[test]
    fn from_threads_maps_low_counts_to_sequential() {
        assert_eq!(
            ExecutionBackend::from_threads(0),
            ExecutionBackend::Sequential
        );
        assert_eq!(
            ExecutionBackend::from_threads(1),
            ExecutionBackend::Sequential
        );
        assert_eq!(ExecutionBackend::from_threads(2).threads(), 2);
    }

    #[test]
    fn evaluate_matches_sequential_for_every_backend() {
        let labels: Vec<u32> = (0..10_000u32).map(|i| i % 7).collect();
        let oracle = LabelOracle::new(labels);
        let pairs: Vec<(usize, usize)> = (0..5_000).map(|i| (i, i + 5_000)).collect();
        let reference = ExecutionBackend::Sequential.evaluate(&oracle, &pairs);
        for threads in [2, 4, 8] {
            let backend = ExecutionBackend::Threaded {
                threads,
                threshold: 1,
            };
            assert_eq!(
                backend.evaluate(&oracle, &pairs),
                reference,
                "threaded({threads}) diverged from sequential"
            );
        }
    }

    #[test]
    fn small_rounds_stay_below_threshold() {
        // Below the threshold the threaded backend must still answer
        // correctly (inline), not drop to the pool.
        let oracle = LabelOracle::new(vec![0, 0, 1, 1]);
        let backend = ExecutionBackend::threaded(4);
        assert_eq!(
            backend.evaluate(&oracle, &[(0, 1), (1, 2), (2, 3)]),
            vec![true, false, true]
        );
    }

    #[test]
    fn labels_render() {
        assert_eq!(ExecutionBackend::Sequential.label(), "sequential");
        assert_eq!(ExecutionBackend::threaded(8).label(), "threaded(8)");
        assert_eq!(ExecutionBackend::batched(64).label(), "batched(64)");
        assert_eq!(ExecutionBackend::batched(0).label(), "batched(all)");
    }

    #[test]
    fn batched_backend_is_single_threaded() {
        let backend = ExecutionBackend::batched(64);
        assert_eq!(backend, ExecutionBackend::Batched { wave: 64 });
        assert_eq!(backend.threads(), 1);
        assert!(!backend.is_parallel());
    }

    #[test]
    fn batched_evaluation_matches_sequential_for_every_wave() {
        let labels: Vec<u32> = (0..2_000u32).map(|i| i % 5).collect();
        let oracle = LabelOracle::new(labels);
        let pairs: Vec<(usize, usize)> = (0..1_000).map(|i| (i, i + 1_000)).collect();
        let reference = ExecutionBackend::Sequential.evaluate(&oracle, &pairs);
        // Waves that divide the round, waves that leave a remainder, a wave
        // of one (scalar), a wave larger than the round, and the whole-round
        // wave must all concatenate back to the scalar answers.
        for wave in [0, 1, 7, 64, 1_000, 5_000] {
            assert_eq!(
                ExecutionBackend::batched(wave).evaluate(&oracle, &pairs),
                reference,
                "batched({wave}) diverged from sequential"
            );
        }
        assert!(ExecutionBackend::batched(8)
            .evaluate(&oracle, &[])
            .is_empty());
    }

    #[test]
    fn auto_matches_sequential_and_replays_its_own_log() {
        use crate::calibrate::PinnedKnobs;
        let labels: Vec<u32> = (0..6_000u32).map(|i| i % 11).collect();
        let oracle = LabelOracle::new(labels);
        let rounds: Vec<Vec<(usize, usize)>> = vec![
            (0..3_000).map(|i| (i, i + 3_000)).collect(),
            (0..10).map(|i| (i, i + 1)).collect(),
            Vec::new(),
            // `6i ≡ -1 (mod 6000)` has no solution, so no self-comparison.
            (0..5_000).map(|i| (i, (i * 7 + 1) % 6_000)).collect(),
        ];
        let reference: Vec<Vec<bool>> = rounds
            .iter()
            .map(|round| ExecutionBackend::Sequential.evaluate(&oracle, round))
            .collect();

        let auto = ExecutionBackend::auto();
        let recorded: Vec<Vec<bool>> = rounds
            .iter()
            .map(|round| auto.evaluate(&oracle, round))
            .collect();
        assert_eq!(recorded, reference, "auto diverged from sequential");

        let log = auto.calibration().expect("auto carries a handle").log();
        // Empty rounds are never evaluated, so they record no decision.
        assert_eq!(log.decisions.len(), 3);
        let replay = ExecutionBackend::auto_replay(&log);
        assert_eq!(replay.label(), "auto(replay)");
        let replayed: Vec<Vec<bool>> = rounds
            .iter()
            .map(|round| replay.evaluate(&oracle, round))
            .collect();
        assert_eq!(replayed, reference);
        assert_eq!(
            replay.calibration().unwrap().log(),
            log,
            "the replayed schedule must equal the recording"
        );

        // Pinned knobs flow through to the lowered decisions.
        let pinned = ExecutionBackend::auto_pinned(PinnedKnobs {
            threads: Some(2),
            wave: None,
        });
        assert_eq!(pinned.worker_decision().threads, 2);
        assert_eq!(pinned.evaluate(&oracle, &rounds[0]), reference[0]);
    }

    #[test]
    fn auto_handles_are_identity_distinct() {
        let a = ExecutionBackend::auto();
        let b = ExecutionBackend::auto();
        assert_ne!(a, b, "two recordings are distinct backends");
        assert_eq!(a, a);
        assert!(a.label() == "auto");
    }

    #[test]
    fn env_value_zero_clamps_to_available_parallelism() {
        // `ECS_THREADS=0` must never select a degenerate zero-worker pool:
        // it clamps to the machine's available parallelism (sequential on a
        // one-core machine, threaded otherwise).
        assert_eq!(
            ExecutionBackend::from_env_value("0"),
            ExecutionBackend::from_threads(available_parallelism())
        );
        assert_eq!(
            ExecutionBackend::from_env_value(" 1 "),
            ExecutionBackend::Sequential
        );
        assert_eq!(
            ExecutionBackend::from_env_value("junk"),
            ExecutionBackend::Sequential
        );
        assert_eq!(
            ExecutionBackend::from_env_value("4"),
            ExecutionBackend::threaded(4)
        );
        assert!(available_parallelism() >= 1);
    }
}
