//! Coalescing concurrent scalar oracle queries into batch waves.
//!
//! [`crate::ExecutionBackend::Batched`] batches within one session: a round
//! arrives as a slice and is cut into [`EquivalenceOracle::same_batch`]
//! waves. [`crate::ThroughputPool`] workloads are the opposite shape — many
//! concurrent jobs, each issuing *scalar* [`EquivalenceOracle::same`] calls
//! against a shared oracle. For an oracle whose cost is dominated by a
//! per-request fixed cost (a service round trip, a seek into a disk-resident
//! partition), those scalar calls are exactly the `m` blocking round trips
//! the paper's query-charged cost model warns about.
//!
//! [`BatchingOracle`] closes that gap: it wraps any oracle and coalesces
//! concurrent `same` calls into `same_batch` waves. Callers enqueue their
//! pair under a mutex; the wave is flushed by whichever caller fills it, by
//! *any* parked contributor once the wave's shared linger deadline fires (so
//! a lone caller is never blocked on peers that will not arrive, and no wave
//! depends on one specific thread being schedulable), or explicitly via
//! [`BatchingOracle::flush_pending`] by a driver that knows no further
//! queries are coming. While parked on an in-flight wave, a pool worker does
//! not sleep its OS thread: it *helps* — draining other pending pool tasks
//! through the rayon shim's `try_help` — so slow oracles never stall pool
//! workers, and peers queued behind the parked worker get to run and join
//! the very wave it is waiting on. Waves are evaluated one at a time in
//! formation order
//! (condvar-gated, under the state lock), and pairs keep their arrival order
//! within a wave, so the inner oracle observes a deterministic wave
//! discipline: a serial caller sees exactly the scalar call sequence, and
//! every caller always receives the answer the scalar path would have given
//! — which is what keeps partitions and [`crate::Metrics`] bit-identical to
//! unbatched runs (each job's session charges its own metrics before its
//! queries ever reach the adapter).
//!
//! A panic inside the inner oracle during a flush (e.g. one caller's
//! out-of-range pair tripping the batch validation) resumes on the flushing
//! caller; the wave is published as poisoned first, so every other
//! contributor of that wave panics with a clear message instead of hanging
//! on the condvar or collecting answers that were never produced.

use crate::oracle::EquivalenceOracle;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// How long a partial wave is held open for peers before being flushed.
/// Long enough for concurrently-running pool workers to join the wave, short
/// enough to be invisible next to the per-request cost that motivates
/// batching in the first place. Overridable per adapter with
/// [`BatchingOracle::with_linger`] and from the CLI with `--linger-us`.
pub const DEFAULT_LINGER: Duration = Duration::from_micros(200);

/// An adapter that coalesces concurrent [`EquivalenceOracle::same`] calls
/// into [`EquivalenceOracle::same_batch`] waves.
///
/// # Example
///
/// ```
/// use ecs_model::{BatchingOracle, EquivalenceOracle, LabelOracle};
///
/// let inner = LabelOracle::new(vec![0, 0, 1, 1]);
/// let oracle = BatchingOracle::new(inner, 4);
/// assert!(oracle.same(0, 1));
/// assert!(!oracle.same(1, 2));
/// assert_eq!(oracle.waves_flushed(), 2); // lone callers flush after linger
/// ```
pub struct BatchingOracle<O> {
    inner: O,
    wave: usize,
    linger: Duration,
    state: Mutex<WaveState>,
    flushed: Condvar,
    waves: AtomicU64,
    queries: AtomicU64,
    coalesced: AtomicU64,
}

/// The wave currently forming plus the answers of flushed waves that still
/// have uncollected contributors.
struct WaveState {
    /// Identifier of the wave currently forming; bumped at every flush.
    generation: u64,
    /// Pairs of the forming wave, in arrival order.
    pending: Vec<(usize, usize)>,
    /// When the forming wave must be flushed even partially filled. Set by
    /// the wave's opener; *any* contributor that reaches it flushes — the
    /// flush duty is shared, so a wave never depends on one specific thread
    /// being schedulable (the opener may itself be parked helping the pool
    /// run other tasks).
    deadline: Option<Instant>,
    /// Answers of flushed generations, retained until every contributor has
    /// collected its slot.
    completed: HashMap<u64, WaveAnswers>,
}

struct WaveAnswers {
    /// `None` when the wave's evaluation panicked in the inner oracle (e.g.
    /// an out-of-range pair tripping the batch validation): contributors
    /// must observe the failure instead of hanging or reading answers that
    /// were never produced.
    answers: Option<Vec<bool>>,
    uncollected: usize,
}

impl<O: EquivalenceOracle> BatchingOracle<O> {
    /// Wraps `inner`, coalescing up to `wave` concurrent queries per
    /// `same_batch` call, with the default leader linger. As with
    /// [`crate::ExecutionBackend::Batched`], `wave: 0` means *unbounded*
    /// batching — a wave closes only when the leader's linger fires, so it
    /// coalesces everything that arrives within one linger window; `wave: 1`
    /// is scalar passthrough.
    pub fn new(inner: O, wave: usize) -> Self {
        Self::with_linger(inner, wave, DEFAULT_LINGER)
    }

    /// Wraps `inner` with the wave width lowered from a calibration
    /// [`TuningDecision`](crate::TuningDecision): `wave: Some(w)` batches in
    /// waves of `w` (with `Some(0)` unbounded, as everywhere else), while
    /// `wave: None` — a decision that chose the threaded or inline route —
    /// degrades to scalar passthrough (`wave: 1`) so the adapter stays
    /// transparent.
    pub fn with_tuning(inner: O, decision: crate::TuningDecision, linger: Duration) -> Self {
        Self::with_linger(inner, decision.wave.unwrap_or(1), linger)
    }

    /// Wraps `inner` with an explicit leader linger — how long the opener of
    /// a wave waits for peers before flushing it partially filled. `linger`
    /// only bounds *added latency*; correctness never depends on it (except
    /// with `wave: 0`, where the linger is the only thing that closes a
    /// wave — a zero linger then degrades to scalar passthrough).
    pub fn with_linger(inner: O, wave: usize, linger: Duration) -> Self {
        Self {
            inner,
            wave,
            linger,
            state: Mutex::new(WaveState {
                generation: 0,
                pending: Vec::new(),
                deadline: None,
                completed: HashMap::new(),
            }),
            flushed: Condvar::new(),
            waves: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Consumes the adapter and returns the wrapped oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// The configured maximum wave size (`0` = unbounded, waves close on the
    /// linger alone).
    pub fn wave(&self) -> usize {
        self.wave
    }

    /// The configured linger: how long a partial wave is held open for peers
    /// before being flushed.
    pub fn linger(&self) -> Duration {
        self.linger
    }

    /// Number of queries currently parked in the forming wave.
    pub fn pending_queries(&self) -> usize {
        self.lock().pending.len()
    }

    /// Explicitly flushes the forming wave, releasing its parked callers
    /// without waiting for the linger to fire or the wave to fill. Returns
    /// whether a wave was flushed (`false` when nothing was pending).
    ///
    /// This is the event-driven alternative to the wall-clock linger — a
    /// driver that knows no further queries are coming (end of a round, a
    /// drained queue) flushes deterministically instead of paying (and
    /// timing tests against) the linger. A panic in the inner oracle during
    /// the flush resumes on this caller after the wave is published as
    /// poisoned.
    pub fn flush_pending(&self) -> bool {
        let mut state = self.lock();
        if state.pending.is_empty() {
            return false;
        }
        self.flush(&mut state, false);
        true
    }

    /// Number of `same_batch` waves submitted to the inner oracle so far
    /// (including the single-pair waves of lone callers).
    pub fn waves_flushed(&self) -> u64 {
        self.waves.load(Ordering::Relaxed)
    }

    /// Total scalar queries answered through the adapter so far.
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Number of queries answered as part of a multi-pair wave — the saved
    /// round trips.
    pub fn coalesced_queries(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, WaveState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Evaluates the forming wave against the inner oracle and publishes its
    /// answers. Called with the state lock held, which is what serializes
    /// waves into formation order.
    ///
    /// A panic inside the inner oracle (e.g. an out-of-range pair tripping
    /// the batch validation) is caught, the wave is published as *poisoned*
    /// — generation bumped, followers woken, so they fail loudly in
    /// [`Self::collect`] instead of hanging forever on the condvar or later
    /// collecting a reused generation's answers — and then resumed on the
    /// flushing caller. `flusher_has_slot` records whether the flusher is
    /// itself a contributor of the wave (every in-`same` flush) or an
    /// external driver ([`Self::flush_pending`]) — a poisoned wave must not
    /// wait on a slot its flusher will never collect.
    fn flush(&self, state: &mut WaveState, flusher_has_slot: bool) {
        let pairs = std::mem::take(&mut state.pending);
        state.deadline = None;
        debug_assert!(!pairs.is_empty(), "flushing an empty wave");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.inner.same_batch(&pairs)
        }));
        let (answers, panic_payload) = match outcome {
            Ok(answers) => {
                debug_assert_eq!(answers.len(), pairs.len());
                self.waves.fetch_add(1, Ordering::Relaxed);
                if pairs.len() > 1 {
                    self.coalesced
                        .fetch_add(pairs.len() as u64, Ordering::Relaxed);
                }
                (Some(answers), None)
            }
            Err(payload) => (None, Some(payload)),
        };
        // A contributing flusher that panics unwinds out of `same` without
        // collecting its slot — account for it here so a poisoned wave's
        // storage is still freed once the followers have observed the
        // failure. An external flusher (`flush_pending`) holds no slot.
        let uncollected = if panic_payload.is_some() && flusher_has_slot {
            pairs.len() - 1
        } else {
            pairs.len()
        };
        if uncollected > 0 {
            state.completed.insert(
                state.generation,
                WaveAnswers {
                    answers,
                    uncollected,
                },
            );
        }
        state.generation += 1;
        self.flushed.notify_all();
        if let Some(payload) = panic_payload {
            std::panic::resume_unwind(payload);
        }
    }

    /// Takes this caller's answer out of a flushed wave, releasing the
    /// wave's storage once every contributor has collected.
    ///
    /// # Panics
    ///
    /// If the wave's evaluation panicked in its flusher, every other
    /// contributor panics here — the query genuinely has no answer.
    fn collect(&self, state: &mut WaveState, generation: u64, index: usize) -> bool {
        let slot = state
            .completed
            .get_mut(&generation)
            .expect("a flushed wave retains its answers until collected");
        let answer = slot.answers.as_ref().map(|answers| answers[index]);
        slot.uncollected -= 1;
        if slot.uncollected == 0 {
            state.completed.remove(&generation);
        }
        answer.expect("batched oracle wave evaluation panicked in another caller")
    }
}

impl<O: EquivalenceOracle> EquivalenceOracle for BatchingOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut state = self.lock();
        let generation = state.generation;
        let index = state.pending.len();
        state.pending.push((a, b));
        if index == 0 {
            // Wave opener: start the linger clock. The deadline lives in the
            // shared state so *any* contributor can flush when it fires.
            state.deadline = Some(Instant::now() + self.linger);
        }

        if self.wave != 0 && state.pending.len() >= self.wave {
            // This caller filled the wave: flush immediately. (`wave: 0` is
            // unbounded — waves close only when the linger fires or the
            // driver flushes explicitly.)
            self.flush(&mut state, true);
        } else {
            // Parked contributor (opener or follower alike): the wave is in
            // flight and this query has no answer yet. Instead of sleeping
            // the OS thread for the whole wait, a pool worker first *helps*
            // — drains pending pool tasks via `rayon::try_help` with the
            // state lock released — so peers queued behind it can run, join
            // (and possibly fill) this very wave. Whoever reaches the shared
            // deadline flushes; a filling peer flushes early; an explicit
            // `flush_pending` releases everyone. A helped task may re-enter
            // this adapter and even flush a wave it joins — generations keep
            // each caller's answer addressable regardless of who flushed.
            let deadline = state
                .deadline
                .expect("a forming wave always has a deadline");
            while state.generation == generation {
                if Instant::now() >= deadline {
                    self.flush(&mut state, true);
                    break;
                }
                drop(state);
                let helped = rayon::try_help();
                state = self.lock();
                if helped || state.generation != generation {
                    continue;
                }
                let now = Instant::now();
                if now >= deadline {
                    continue;
                }
                state = self
                    .flushed
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .0;
            }
        }
        self.collect(&mut state, generation, index)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        // A pre-assembled round needs no coalescing: hand it straight to the
        // inner oracle as one wave (still counted in the stats). The state
        // lock is held across the call so direct batches serialize with
        // scalar-wave flushes — the inner oracle never sees two waves at
        // once, preserving the one-wave-at-a-time discipline even for
        // order-adaptive inner oracles.
        let _waves_serialized = self.lock();
        self.queries
            .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        self.waves.fetch_add(1, Ordering::Relaxed);
        if pairs.len() > 1 {
            self.coalesced
                .fetch_add(pairs.len() as u64, Ordering::Relaxed);
        }
        self.inner.same_batch(pairs)
    }

    fn round_opened(&self, pairs: &[(usize, usize)]) {
        // Round boundaries belong to the adapter's single driving session;
        // forward them so an order-adaptive inner oracle can run its commit
        // protocol. (Coalescing across *several* sessions is only sound for
        // order-independent inner oracles, which ignore the hooks anyway.)
        self.inner.round_opened(pairs);
    }

    fn round_closed(&self) {
        self.inner.round_closed();
    }
}

impl<O: std::fmt::Debug> std::fmt::Debug for BatchingOracle<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchingOracle")
            .field("inner", &self.inner)
            .field("wave", &self.wave)
            .field("linger", &self.linger)
            .field("waves_flushed", &self.waves.load(Ordering::Relaxed))
            .field("queries", &self.queries.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::LabelOracle;

    fn labels(n: usize, k: u32) -> Vec<u32> {
        (0..n as u32).map(|i| i % k).collect()
    }

    #[test]
    fn scalar_passthrough_answers_correctly() {
        let oracle = BatchingOracle::with_linger(
            LabelOracle::new(labels(16, 3)),
            1,
            Duration::from_millis(10),
        );
        assert_eq!(oracle.n(), 16);
        for a in 0..16 {
            for b in 0..16 {
                if a != b {
                    assert_eq!(oracle.same(a, b), (a as u32 % 3) == (b as u32 % 3));
                }
            }
        }
        // Wave size 1: every query is its own wave, nothing coalesces.
        assert_eq!(oracle.waves_flushed(), oracle.queries());
        assert_eq!(oracle.coalesced_queries(), 0);
    }

    #[test]
    fn lone_caller_is_released_by_the_linger() {
        // One caller, wave size 8: without the leader linger this would
        // deadlock waiting for seven peers that never arrive.
        let oracle = BatchingOracle::with_linger(
            LabelOracle::new(labels(4, 2)),
            8,
            Duration::from_micros(50),
        );
        assert!(oracle.same(0, 2));
        assert!(!oracle.same(0, 1));
        assert_eq!(oracle.waves_flushed(), 2);
    }

    #[test]
    fn concurrent_callers_coalesce_and_answer_correctly() {
        let n = 64;
        let workers = 4;
        let per_worker = 200;
        let oracle = BatchingOracle::with_linger(
            LabelOracle::new(labels(n, 5)),
            4,
            Duration::from_millis(5),
        );
        let reference = LabelOracle::new(labels(n, 5));
        std::thread::scope(|scope| {
            for w in 0..workers {
                let oracle = &oracle;
                let reference = &reference;
                scope.spawn(move || {
                    for i in 0..per_worker {
                        let a = (w * per_worker + i) % n;
                        let b = (a + 1 + i % (n - 1)) % n;
                        if a != b {
                            assert_eq!(
                                oracle.same(a, b),
                                reference.same(a, b),
                                "coalesced answer diverged for ({a}, {b})"
                            );
                        }
                    }
                });
            }
        });
        // Every query is accounted for and flushed in some wave.
        assert!(oracle.queries() > 0);
        assert!(oracle.waves_flushed() <= oracle.queries());
    }

    #[test]
    fn same_batch_bypasses_coalescing() {
        let oracle = BatchingOracle::new(LabelOracle::new(labels(8, 2)), 4);
        assert_eq!(oracle.same_batch(&[(0, 2), (0, 1)]), vec![true, false]);
        assert_eq!(oracle.waves_flushed(), 1);
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.coalesced_queries(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flusher_panic_propagates_to_the_flushing_caller() {
        let oracle = BatchingOracle::with_linger(LabelOracle::new(vec![0, 1]), 4, Duration::ZERO);
        let _ = oracle.same(0, 7);
    }

    #[test]
    fn followers_of_a_poisoned_wave_fail_instead_of_hanging() {
        // Thread A submits an out-of-range pair and thread B a valid one
        // into the same two-pair wave (the 5s linger guarantees they
        // coalesce; the wave fills long before it fires). Whichever caller
        // flushes panics in the inner batch validation; the *other* must
        // panic too — never hang on the condvar, never read a reused
        // generation's answers.
        let oracle =
            BatchingOracle::with_linger(LabelOracle::new(labels(4, 2)), 2, Duration::from_secs(5));
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for &(a, b) in &[(0usize, 99usize), (0, 1)] {
                let oracle = &oracle;
                let tx = tx.clone();
                scope.spawn(move || {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        oracle.same(a, b)
                    }));
                    tx.send((b, outcome.is_err())).unwrap();
                });
            }
            drop(tx);
            let mut outcomes = Vec::new();
            for _ in 0..2 {
                outcomes.push(
                    rx.recv_timeout(Duration::from_secs(30))
                        .expect("a wave contributor hung instead of observing the panic"),
                );
            }
            assert!(
                outcomes
                    .iter()
                    .find(|&&(b, _)| b == 99)
                    .expect("bad-pair caller terminated")
                    .1,
                "the out-of-range query must observe the panic"
            );
        });
    }

    #[test]
    fn accessors_expose_configuration_and_inner() {
        let oracle = BatchingOracle::new(LabelOracle::new(labels(4, 2)), 0);
        assert_eq!(oracle.wave(), 0, "wave 0 means unbounded, as in Batched");
        assert_eq!(oracle.inner().n(), 4);
        assert_eq!(oracle.into_inner().n(), 4);
    }

    #[test]
    fn unbounded_wave_is_released_by_an_explicit_flush() {
        // `wave: 0` matches `ExecutionBackend::Batched { wave: 0 }` in
        // spirit: maximum batching, bounded only by the linger window or an
        // explicit flush. The event-driven path: with a linger far beyond
        // the test timeout, only `flush_pending` can release the parked
        // caller — so a correct answer proves the explicit flush works
        // without timing anything against the wall clock.
        let oracle = BatchingOracle::with_linger(
            LabelOracle::new(labels(6, 3)),
            0,
            Duration::from_secs(600),
        );
        std::thread::scope(|scope| {
            let caller = scope.spawn(|| oracle.same(0, 3));
            while oracle.pending_queries() < 1 {
                std::thread::yield_now();
            }
            assert!(oracle.flush_pending());
            assert!(caller.join().expect("parked caller released"));
        });
        assert!(!oracle.flush_pending(), "nothing left pending");
        assert_eq!(oracle.waves_flushed(), 1);
        assert_eq!(oracle.queries(), 1);
        assert_eq!(oracle.linger(), Duration::from_secs(600));
    }

    #[test]
    fn explicit_flush_releases_a_coalesced_pair_of_callers() {
        // Two callers join one unbounded wave; the driver flushes once both
        // are parked. Event-driven: no linger expiry is involved.
        let oracle = BatchingOracle::with_linger(
            LabelOracle::new(labels(6, 3)),
            0,
            Duration::from_secs(600),
        );
        std::thread::scope(|scope| {
            let first = scope.spawn(|| oracle.same(0, 3));
            let second = scope.spawn(|| oracle.same(0, 1));
            while oracle.pending_queries() < 2 {
                std::thread::yield_now();
            }
            assert!(oracle.flush_pending());
            assert!(first.join().expect("first caller released"));
            assert!(!second.join().expect("second caller released"));
        });
        assert_eq!(oracle.waves_flushed(), 1, "both queries shared one wave");
        assert_eq!(oracle.coalesced_queries(), 2);
    }

    #[test]
    fn a_parked_pool_worker_helps_run_the_peer_that_fills_its_wave() {
        // One-worker pool, wave size 2, linger far beyond the test timeout:
        // job 1 parks its query in a half-full wave; without help-first the
        // only worker would sleep and job 2 (the peer that fills the wave)
        // could never run. With `try_help`, the parked worker runs job 2
        // itself, the wave fills, flushes, and both jobs complete — so mere
        // completion (plus a single coalesced wave) proves the non-blocking
        // wave-park works.
        use std::sync::mpsc;
        use std::sync::Arc;
        let oracle = Arc::new(BatchingOracle::with_linger(
            LabelOracle::new(labels(4, 2)),
            2,
            Duration::from_secs(600),
        ));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .expect("pool builds");
        let (result_tx, result_rx) = mpsc::channel();
        let (ready_tx, ready_rx) = mpsc::channel::<()>();
        {
            let oracle = Arc::clone(&oracle);
            let result_tx = result_tx.clone();
            pool.spawn_fifo(move || {
                // Wait until job 2 is queued, so the help path is the only
                // way it can ever run.
                ready_rx.recv().unwrap();
                result_tx.send(("first", oracle.same(0, 2))).unwrap();
            });
        }
        {
            let oracle = Arc::clone(&oracle);
            let result_tx = result_tx.clone();
            pool.spawn_fifo(move || {
                result_tx.send(("second", oracle.same(0, 1))).unwrap();
            });
        }
        ready_tx.send(()).unwrap();
        drop(result_tx);
        let mut answers: Vec<(&str, bool)> = Vec::new();
        for _ in 0..2 {
            answers.push(
                result_rx
                    .recv_timeout(Duration::from_secs(30))
                    .expect("a parked worker failed to help its peer"),
            );
        }
        answers.sort_unstable();
        assert_eq!(answers, vec![("first", true), ("second", false)]);
        assert_eq!(oracle.waves_flushed(), 1, "the two queries coalesced");
        assert_eq!(oracle.coalesced_queries(), 2);
    }
}
