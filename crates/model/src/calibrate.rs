//! Online calibration for [`crate::ExecutionBackend::Auto`]: measure, decide,
//! record, replay.
//!
//! The model's determinism story makes self-tuning safe: comparison charging
//! happens *before* a round is evaluated and answers are collected in
//! submission order, so partitions, [`crate::Metrics`], and CSVs never depend
//! on the thread count, parallel threshold, or wave size a round happens to
//! run with. Calibration therefore only has to make the *decision schedule*
//! reproducible, not the outputs — and it does, via a recorded
//! [`CalibrationLog`]:
//!
//! * **Probe.** At first use the process measures two synthetic
//!   micro-benchmarks ([`CalibrationProbe`]): the cost of one in-memory label
//!   comparison (`pair_ns`) and the cost of one cross-thread dispatch
//!   (`dispatch_ns`, a mutex-guarded queue handoff — the same shape as a pool
//!   chunk handoff). The probe never touches an [`crate::EquivalenceOracle`]:
//!   a probe query would bypass the session's round-commit protocol and
//!   corrupt adaptive (adversary) oracles, so oracle latency is learned only
//!   from *observed* rounds.
//! * **Decide.** Each evaluated round asks its [`CalibrationHandle`] for a
//!   [`TuningDecision`] — concrete `threads` / `threshold` / `wave`
//!   parameters lowered from the probe, the pinned knobs, and an EWMA of
//!   observed per-pair latency. Recording handles append every decision to
//!   their trace.
//! * **Replay.** A handle built from a recorded [`CalibrationLog`] serves the
//!   recorded decisions verbatim (no clock reads at all), so a replayed run
//!   makes bit-identical scheduling choices — and, by the charging argument
//!   above, bit-identical outputs.
//!
//! The trace is bounded by [`DECISION_TRACE_LIMIT`]. Past the bound *both*
//! recording and replay switch to the frozen pure policy (probe + pins only,
//! no latency feedback), so a replayed schedule still matches its recording
//! exactly on arbitrarily long runs.

use crate::backend::available_parallelism;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Maximum number of per-round decisions a recording handle keeps (and a
/// replay handle consumes). Beyond this, decisions come from the frozen
/// policy on both sides, keeping record and replay aligned without unbounded
/// memory.
pub const DECISION_TRACE_LIMIT: usize = 4096;

/// Observed per-pair latency (EWMA) above which Auto lowers to the batched
/// backend: when one comparison costs microseconds the oracle is
/// latency-dominated (round trips, disk), and coalescing waves beats
/// sharding threads.
const BATCH_LATENCY_NS: f64 = 2_000.0;

/// EWMA smoothing factor for observed per-pair latency.
const EWMA_ALPHA: f64 = 0.2;

/// How many pairs' worth of work one chunk dispatch must amortize before
/// sharding a round pays; multiplied by the thread count to get the adaptive
/// parallel threshold.
const DISPATCH_AMORTIZATION: usize = 8;

/// Bounds on the adaptive parallel threshold.
const MIN_AUTO_THRESHOLD: usize = 64;
const MAX_AUTO_THRESHOLD: usize = 1 << 20;

/// The concrete per-round execution parameters an [`crate::ExecutionBackend`]
/// lowers to: the one seam through which sessions, pools, and batching
/// oracles consume tuning instead of reading backend fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuningDecision {
    /// OS threads the round may shard across (`1` = inline).
    pub threads: usize,
    /// Minimum round size dispatched to the pool when sharding.
    pub threshold: usize,
    /// `Some(w)`: evaluate as `same_batch` waves of `w` pairs (`0` = one
    /// wave); `None`: per-pair `same` calls (inline or sharded).
    pub wave: Option<usize>,
}

impl TuningDecision {
    /// A decision that evaluates everything inline on the calling thread.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            threshold: usize::MAX,
            wave: None,
        }
    }

    /// Renders as `threads:threshold:wave` with `-` for "no wave", the form
    /// used inside [`CalibrationLog`] lines and the service `status` verb.
    pub fn render(&self) -> String {
        let wave = self.wave.map_or_else(|| "-".to_string(), |w| w.to_string());
        format!("{}:{}:{}", self.threads, self.threshold, wave)
    }

    /// Parses the [`TuningDecision::render`] form.
    pub fn parse(text: &str) -> Option<Self> {
        let mut parts = text.split(':');
        let threads = parts.next()?.parse().ok()?;
        let threshold = parts.next()?.parse().ok()?;
        let wave = match parts.next()? {
            "-" => None,
            w => Some(w.parse().ok()?),
        };
        if parts.next().is_some() {
            return None;
        }
        Some(Self {
            threads,
            threshold,
            wave,
        })
    }
}

/// The startup micro-probe: synthetic costs measured once per process (no
/// oracle involvement, see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationProbe {
    /// Nanoseconds per in-memory label comparison.
    pub pair_ns: u64,
    /// Nanoseconds per cross-thread dispatch (mutex-guarded queue handoff).
    pub dispatch_ns: u64,
}

impl CalibrationProbe {
    /// The process-wide probe, measured on first use and cached: every
    /// recording handle starts from the same numbers, so two Auto runs in
    /// one process differ only through their observed-latency feedback.
    pub fn measure() -> Self {
        static PROBE: OnceLock<CalibrationProbe> = OnceLock::new();
        *PROBE.get_or_init(Self::measure_uncached)
    }

    fn measure_uncached() -> Self {
        // Pair cost: the InstanceOracle hot path in miniature — two array
        // reads and a compare, over an access pattern the prefetcher cannot
        // trivialize.
        const PROBE_N: usize = 4096;
        const PAIR_ITERS: u32 = 20_000;
        let labels: Vec<u32> = (0..PROBE_N)
            .map(|i| (i as u32).wrapping_mul(2_654_435_761) % 7)
            .collect();
        let start = Instant::now();
        let mut acc = 0usize;
        for i in 0..PAIR_ITERS as usize {
            let a = (i * 31) % PROBE_N;
            let b = (i * 17 + 1) % PROBE_N;
            acc += usize::from(labels[a] == labels[b]);
        }
        std::hint::black_box(acc);
        let pair_ns = (start.elapsed().as_nanos() / u128::from(PAIR_ITERS)).max(1) as u64;

        // Dispatch cost: one lock + queue push + pop, the per-chunk handoff
        // shape of the work-stealing pool (without spawning threads — the
        // probe must stay cheap enough to run at every pool startup).
        const DISPATCH_ITERS: u32 = 4_000;
        let queue: Mutex<std::collections::VecDeque<usize>> =
            Mutex::new(std::collections::VecDeque::new());
        let start = Instant::now();
        for i in 0..DISPATCH_ITERS as usize {
            let mut q = queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q.push_back(i);
            std::hint::black_box(q.pop_front());
        }
        let dispatch_ns = (start.elapsed().as_nanos() / u128::from(DISPATCH_ITERS)).max(1) as u64;

        Self {
            pair_ns,
            dispatch_ns,
        }
    }
}

/// Knobs the user pinned explicitly (`--threads` / `--batch` next to
/// `--backend auto`): a pinned knob is excluded from adaptation and lowered
/// verbatim into every decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PinnedKnobs {
    /// Pinned worker count, if any.
    pub threads: Option<usize>,
    /// Pinned wave size, if any (forces the batched lowering).
    pub wave: Option<usize>,
}

/// The recorded schedule of one Auto run: everything needed to replay its
/// decisions bit-identically — the probe it started from, the pins it ran
/// under, and every per-round decision in order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CalibrationLog {
    /// The probe the run started from.
    pub probe: Option<CalibrationProbe>,
    /// The pinned knobs the run ran under.
    pub pins: PinnedKnobs,
    /// `(round_len, decision)` per evaluated round, in round order, capped
    /// at [`DECISION_TRACE_LIMIT`].
    pub decisions: Vec<(usize, TuningDecision)>,
}

impl CalibrationLog {
    /// Renders the log as one line:
    /// `probe=<pair>:<dispatch> pins=<threads|->:<wave|-> trace=<len>:<decision>;...`
    pub fn render_line(&self) -> String {
        let probe = self.probe.map_or_else(
            || "-".to_string(),
            |p| format!("{}:{}", p.pair_ns, p.dispatch_ns),
        );
        let pin = |knob: Option<usize>| knob.map_or_else(|| "-".to_string(), |v| v.to_string());
        let trace: Vec<String> = self
            .decisions
            .iter()
            .map(|(len, decision)| format!("{len}:{}", decision.render()))
            .collect();
        format!(
            "probe={probe} pins={}:{} trace={}",
            pin(self.pins.threads),
            pin(self.pins.wave),
            trace.join(";")
        )
    }

    /// Parses a [`CalibrationLog::render_line`] line. Unknown fields are
    /// ignored and missing fields default (tolerant, like the service status
    /// parser), so old logs stay readable as the format grows.
    pub fn parse_line(line: &str) -> Option<Self> {
        let mut log = CalibrationLog::default();
        for field in line.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "probe" if value != "-" => {
                    let (pair, dispatch) = value.split_once(':')?;
                    log.probe = Some(CalibrationProbe {
                        pair_ns: pair.parse().ok()?,
                        dispatch_ns: dispatch.parse().ok()?,
                    });
                }
                "pins" => {
                    let (threads, wave) = value.split_once(':')?;
                    let knob = |text: &str| -> Option<Option<usize>> {
                        match text {
                            "-" => Some(None),
                            v => v.parse().ok().map(Some),
                        }
                    };
                    log.pins.threads = knob(threads)?;
                    log.pins.wave = knob(wave)?;
                }
                "trace" => {
                    for entry in value.split(';').filter(|e| !e.is_empty()) {
                        let (len, decision) = entry.split_once(':')?;
                        log.decisions
                            .push((len.parse().ok()?, TuningDecision::parse(decision)?));
                    }
                }
                _ => {}
            }
        }
        Some(log)
    }
}

/// The frozen pure policy: lowers probe + pins to a decision with no latency
/// feedback. Used directly past the trace cap (on both record and replay
/// sides) and as the base the EWMA feedback perturbs.
fn policy(probe: CalibrationProbe, pins: PinnedKnobs, observed_pair_ns: f64) -> TuningDecision {
    let threads = pins.threads.unwrap_or_else(available_parallelism).max(1);
    // A pinned wave forces the batched lowering; otherwise batching is
    // chosen only when the observed oracle is latency-dominated.
    let wave = pins.wave.or_else(|| {
        (observed_pair_ns >= BATCH_LATENCY_NS)
            .then_some(crate::ExecutionBackend::DEFAULT_BATCH_WAVE)
    });
    // The round size where sharding starts to pay: each of the pool's chunk
    // dispatches must amortize over enough pairs that the handoff cost
    // disappears into the comparison work.
    let dispatch_pairs =
        (probe.dispatch_ns as f64 / (observed_pair_ns.max(1.0))) * DISPATCH_AMORTIZATION as f64;
    let threshold =
        ((threads as f64 * dispatch_pairs) as usize).clamp(MIN_AUTO_THRESHOLD, MAX_AUTO_THRESHOLD);
    TuningDecision {
        threads,
        threshold,
        wave,
    }
}

enum Mode {
    /// Live calibration: decisions computed from feedback and appended.
    Record,
    /// Serving a recorded trace; `cursor` is the next decision to serve.
    Replay { cursor: usize },
}

struct CalibrationState {
    probe: CalibrationProbe,
    pins: PinnedKnobs,
    mode: Mode,
    decisions: Vec<(usize, TuningDecision)>,
    /// EWMA of observed per-pair round latency (recording mode only);
    /// seeded from the probe's synthetic pair cost.
    observed_pair_ns: f64,
}

impl CalibrationState {
    fn decide(&mut self, len: usize) -> TuningDecision {
        match self.mode {
            Mode::Record => {
                if self.decisions.len() >= DECISION_TRACE_LIMIT {
                    // Frozen tail: no feedback, so replay (which also runs
                    // the frozen policy past the cap) stays aligned.
                    return policy(self.probe, self.pins, self.probe.pair_ns as f64);
                }
                let decision = policy(self.probe, self.pins, self.observed_pair_ns);
                self.decisions.push((len, decision));
                decision
            }
            Mode::Replay { ref mut cursor } => {
                if let Some(&(_, decision)) = self.decisions.get(*cursor) {
                    *cursor += 1;
                    decision
                } else {
                    policy(self.probe, self.pins, self.probe.pair_ns as f64)
                }
            }
        }
    }

    fn preview(&self) -> TuningDecision {
        let estimate = match self.mode {
            Mode::Record => self.observed_pair_ns,
            Mode::Replay { .. } => self.probe.pair_ns as f64,
        };
        policy(self.probe, self.pins, estimate)
    }

    fn observe(&mut self, len: usize, elapsed: Duration) {
        if len == 0 || !matches!(self.mode, Mode::Record) {
            return;
        }
        let per_pair = elapsed.as_nanos() as f64 / len as f64;
        self.observed_pair_ns = EWMA_ALPHA * per_pair + (1.0 - EWMA_ALPHA) * self.observed_pair_ns;
    }

    fn log(&self) -> CalibrationLog {
        let decisions = match self.mode {
            Mode::Record => self.decisions.clone(),
            // A replay handle reports only what it actually served, so a
            // record → replay round trip on the same run yields the same
            // trace (and a shorter replayed run yields its prefix).
            Mode::Replay { cursor } => self.decisions[..cursor].to_vec(),
        };
        CalibrationLog {
            probe: Some(self.probe),
            pins: self.pins,
            decisions,
        }
    }
}

/// Process-wide registry of calibration states, addressed by
/// [`CalibrationHandle`] index. Keeping the state out-of-line is what lets
/// [`crate::ExecutionBackend`] stay `Copy + Eq`: the handle is a `u32`, and
/// handle equality is identity (two recordings are distinct backends even if
/// their parameters coincide).
fn registry() -> &'static Mutex<Vec<Arc<Mutex<CalibrationState>>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Arc<Mutex<CalibrationState>>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// A `Copy` ticket into the calibration registry — the only thing an
/// [`crate::ExecutionBackend::Auto`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalibrationHandle(u32);

impl CalibrationHandle {
    fn register(state: CalibrationState) -> Self {
        let mut slots = registry()
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let index = u32::try_from(slots.len()).expect("calibration registry overflow");
        slots.push(Arc::new(Mutex::new(state)));
        CalibrationHandle(index)
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut CalibrationState) -> R) -> R {
        let slot = {
            let slots = registry()
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            Arc::clone(&slots[self.0 as usize])
        };
        let mut state = slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        f(&mut state)
    }

    /// A fresh recording handle: probes the process (cached) and adapts from
    /// observed round latency, subject to `pins`.
    pub fn record(pins: PinnedKnobs) -> Self {
        let probe = CalibrationProbe::measure();
        Self::register(CalibrationState {
            probe,
            pins,
            mode: Mode::Record,
            decisions: Vec::new(),
            observed_pair_ns: probe.pair_ns as f64,
        })
    }

    /// A replay handle serving `log`'s decisions verbatim: no clock is ever
    /// read, so the decision schedule is bit-identical to the recording.
    pub fn replay(log: &CalibrationLog) -> Self {
        let probe = log.probe.unwrap_or_else(CalibrationProbe::measure);
        Self::register(CalibrationState {
            probe,
            pins: log.pins,
            mode: Mode::Replay { cursor: 0 },
            decisions: log.decisions.clone(),
            observed_pair_ns: probe.pair_ns as f64,
        })
    }

    /// Whether this handle replays a recorded log (vs. recording live).
    pub fn is_replay(&self) -> bool {
        self.with_state(|state| matches!(state.mode, Mode::Replay { .. }))
    }

    /// The pinned knobs this handle runs under.
    pub fn pins(&self) -> PinnedKnobs {
        self.with_state(|state| state.pins)
    }

    /// Snapshot of the decision trace so far (recording: everything
    /// recorded; replay: everything served).
    pub fn log(&self) -> CalibrationLog {
        self.with_state(|state| state.log())
    }

    /// Like [`CalibrationHandle::log`], but also drops the stored trace to
    /// free memory — for callers done with the run (e.g. the service daemon
    /// persisting one trace per finished job).
    pub fn finish(&self) -> CalibrationLog {
        self.with_state(|state| {
            let log = state.log();
            state.decisions = Vec::new();
            if let Mode::Replay { ref mut cursor } = state.mode {
                *cursor = 0;
            }
            log
        })
    }

    /// The decision for the next evaluated round of `len` pairs (recording
    /// appends to the trace; replay consumes it).
    pub(crate) fn decide(&self, len: usize) -> TuningDecision {
        self.with_state(|state| state.decide(len))
    }

    /// A decision preview that does **not** touch the trace — what pool
    /// sizing, labels, and `is_parallel` queries use, so planning questions
    /// never desynchronize the recorded schedule from the evaluated rounds.
    pub(crate) fn preview(&self) -> TuningDecision {
        self.with_state(|state| state.preview())
    }

    /// Feeds one observed round back into the EWMA (recording mode only; a
    /// replay handle never reads clocks).
    pub(crate) fn observe(&self, len: usize, elapsed: Duration) {
        self.with_state(|state| state.observe(len, elapsed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_cached_and_nonzero() {
        let first = CalibrationProbe::measure();
        let second = CalibrationProbe::measure();
        assert_eq!(first, second, "the probe must be measured once");
        assert!(first.pair_ns >= 1);
        assert!(first.dispatch_ns >= 1);
    }

    #[test]
    fn decision_render_round_trips() {
        for decision in [
            TuningDecision::sequential(),
            TuningDecision {
                threads: 4,
                threshold: 512,
                wave: None,
            },
            TuningDecision {
                threads: 1,
                threshold: 64,
                wave: Some(0),
            },
            TuningDecision {
                threads: 2,
                threshold: usize::MAX,
                wave: Some(256),
            },
        ] {
            assert_eq!(TuningDecision::parse(&decision.render()), Some(decision));
        }
        assert_eq!(TuningDecision::parse("4:512"), None);
        assert_eq!(TuningDecision::parse("4:512:-:9"), None);
        assert_eq!(TuningDecision::parse("x:512:-"), None);
    }

    #[test]
    fn log_line_round_trips() {
        let log = CalibrationLog {
            probe: Some(CalibrationProbe {
                pair_ns: 12,
                dispatch_ns: 340,
            }),
            pins: PinnedKnobs {
                threads: Some(4),
                wave: None,
            },
            decisions: vec![
                (
                    128,
                    TuningDecision {
                        threads: 4,
                        threshold: 512,
                        wave: None,
                    },
                ),
                (
                    9,
                    TuningDecision {
                        threads: 4,
                        threshold: 512,
                        wave: Some(64),
                    },
                ),
            ],
        };
        let line = log.render_line();
        assert_eq!(CalibrationLog::parse_line(&line), Some(log));
        // An empty trace and an absent probe survive the trip too.
        let empty = CalibrationLog::default();
        assert_eq!(
            CalibrationLog::parse_line(&empty.render_line()),
            Some(empty)
        );
        // Unknown fields are tolerated (old client / new server).
        let tolerant = CalibrationLog::parse_line("probe=1:2 pins=-:- trace= future=stuff");
        assert_eq!(tolerant.unwrap().probe.unwrap().pair_ns, 1);
    }

    #[test]
    fn recording_then_replaying_serves_the_identical_schedule() {
        let recorder = CalibrationHandle::record(PinnedKnobs::default());
        let lens = [100usize, 2_000, 50, 9_000, 1];
        let recorded: Vec<TuningDecision> = lens
            .iter()
            .map(|&len| {
                let decision = recorder.decide(len);
                // Feed wildly varying latencies — replay must be immune.
                recorder.observe(len, Duration::from_micros((len as u64).max(5)));
                decision
            })
            .collect();
        let log = recorder.log();
        assert_eq!(log.decisions.len(), lens.len());

        let replayer = CalibrationHandle::replay(&log);
        assert!(replayer.is_replay());
        let replayed: Vec<TuningDecision> = lens
            .iter()
            .map(|&len| {
                let decision = replayer.decide(len);
                replayer.observe(len, Duration::from_millis(3));
                decision
            })
            .collect();
        assert_eq!(recorded, replayed);
        // The served trace equals the recorded trace, including round sizes.
        assert_eq!(replayer.log(), log);
        // Round-tripping the log through its line form changes nothing.
        let reparsed = CalibrationLog::parse_line(&log.render_line()).expect("parses");
        let replayer2 = CalibrationHandle::replay(&reparsed);
        let again: Vec<TuningDecision> = lens.iter().map(|&len| replayer2.decide(len)).collect();
        assert_eq!(recorded, again);
    }

    #[test]
    fn pins_are_lowered_verbatim_and_disable_adaptation_of_that_knob() {
        let pinned = CalibrationHandle::record(PinnedKnobs {
            threads: Some(3),
            wave: Some(64),
        });
        let decision = pinned.decide(1_000);
        assert_eq!(decision.threads, 3);
        assert_eq!(decision.wave, Some(64));
        // Huge observed latency cannot move a pinned wave.
        pinned.observe(1_000, Duration::from_secs(1));
        assert_eq!(pinned.decide(1_000).wave, Some(64));
    }

    #[test]
    fn slow_oracles_flip_an_unpinned_run_to_batched_waves() {
        let handle = CalibrationHandle::record(PinnedKnobs::default());
        // The synthetic probe sees nanosecond pairs: no batching.
        assert_eq!(handle.decide(100).wave, None);
        // Sustained multi-microsecond pairs drive the EWMA over the
        // latency threshold: the next decisions lower to batched waves.
        for _ in 0..40 {
            handle.observe(100, Duration::from_millis(2));
        }
        assert_eq!(
            handle.decide(100).wave,
            Some(crate::ExecutionBackend::DEFAULT_BATCH_WAVE)
        );
    }

    #[test]
    fn preview_never_consumes_the_trace() {
        let recorder = CalibrationHandle::record(PinnedKnobs::default());
        let preview = recorder.preview();
        assert!(preview.threads >= 1);
        assert!(recorder.log().decisions.is_empty());
        let replayer = CalibrationHandle::replay(&CalibrationLog {
            probe: None,
            pins: PinnedKnobs::default(),
            decisions: vec![(7, TuningDecision::sequential())],
        });
        let _ = replayer.preview();
        assert_eq!(replayer.decide(7), TuningDecision::sequential());
    }

    #[test]
    fn past_the_cap_record_and_replay_agree_via_the_frozen_policy() {
        let recorder = CalibrationHandle::record(PinnedKnobs {
            threads: Some(2),
            wave: None,
        });
        let total = DECISION_TRACE_LIMIT + 8;
        let recorded: Vec<TuningDecision> = (0..total)
            .map(|i| {
                let decision = recorder.decide(i + 1);
                recorder.observe(i + 1, Duration::from_micros(50));
                decision
            })
            .collect();
        let log = recorder.log();
        assert_eq!(log.decisions.len(), DECISION_TRACE_LIMIT);
        let replayer = CalibrationHandle::replay(&log);
        let replayed: Vec<TuningDecision> = (0..total).map(|i| replayer.decide(i + 1)).collect();
        assert_eq!(recorded, replayed, "the frozen tail must align");
    }

    #[test]
    fn finish_snapshots_then_drops_the_trace() {
        let recorder = CalibrationHandle::record(PinnedKnobs::default());
        recorder.decide(10);
        recorder.decide(20);
        let log = recorder.finish();
        assert_eq!(log.decisions.len(), 2);
        assert!(recorder.log().decisions.is_empty());
    }
}
