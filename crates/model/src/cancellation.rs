//! Cooperative cancellation for in-flight equivalence-sort jobs.
//!
//! Algorithms own their [`crate::ComparisonSession`]s internally, so a
//! service cannot reach into a running sort to stop it. What every algorithm
//! *does* do is query its oracle — so cancellation is delivered through the
//! oracle: [`CancellableOracle`] wraps any [`EquivalenceOracle`] and checks a
//! shared [`CancellationToken`] at every round boundary and query, panicking
//! with the typed [`Cancelled`] payload the moment the token trips. A job
//! runner that executes the sort under `catch_unwind` (e.g.
//! [`crate::ThroughputPool::try_run`]) downcasts the payload to distinguish
//! "cancelled on request" from a genuine failure.
//!
//! Checks happen at the same points on every backend (round open, then each
//! query), so a cancelled job stops promptly whether its rounds run
//! sequentially, sharded on the pool, or as batch waves — and a job that is
//! *not* cancelled is observationally untouched: the wrapper forwards every
//! call verbatim, keeping partitions and [`crate::Metrics`] bit-identical to
//! the unwrapped oracle.

use crate::oracle::EquivalenceOracle;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clonable cancellation flag. Cloning is cheap (an `Arc` bump);
/// all clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken {
    cancelled: Arc<AtomicBool>,
}

impl CancellationToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Trips the token: every [`CancellableOracle`] sharing it will panic
    /// with [`Cancelled`] at its next check. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// The panic payload of a cancelled job. Job runners downcast unwind
/// payloads to this type to report "cancelled" instead of "failed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job cancelled")
    }
}

/// Whether an unwind payload (from `catch_unwind`) is a cooperative
/// cancellation rather than a genuine panic.
pub fn is_cancellation(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<Cancelled>()
}

/// An oracle wrapper that aborts the surrounding sort (by panicking with
/// [`Cancelled`]) once its token trips.
///
/// # Example
///
/// ```
/// use ecs_model::{CancellableOracle, CancellationToken, EquivalenceOracle, LabelOracle};
///
/// let token = CancellationToken::new();
/// let oracle = CancellableOracle::new(LabelOracle::new(vec![0, 0, 1]), token.clone());
/// assert!(oracle.same(0, 1)); // not cancelled: answers flow through
/// token.cancel();
/// let unwound = std::panic::catch_unwind(|| oracle.same(0, 1));
/// assert!(ecs_model::cancellation::is_cancellation(&*unwound.unwrap_err()));
/// ```
#[derive(Debug)]
pub struct CancellableOracle<O> {
    inner: O,
    token: CancellationToken,
}

impl<O: EquivalenceOracle> CancellableOracle<O> {
    /// Wraps `inner`, aborting queries once `token` is cancelled.
    pub fn new(inner: O, token: CancellationToken) -> Self {
        Self { inner, token }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The token this wrapper observes.
    pub fn token(&self) -> &CancellationToken {
        &self.token
    }

    fn check(&self) {
        if self.token.is_cancelled() {
            std::panic::panic_any(Cancelled);
        }
    }
}

impl<O: EquivalenceOracle> EquivalenceOracle for CancellableOracle<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        self.check();
        self.inner.same(a, b)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        self.check();
        self.inner.same_batch(pairs)
    }

    fn round_opened(&self, pairs: &[(usize, usize)]) {
        self.check();
        self.inner.round_opened(pairs);
    }

    fn round_closed(&self) {
        self.inner.round_closed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::LabelOracle;

    #[test]
    fn token_state_is_shared_between_clones() {
        let token = CancellationToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(clone.is_cancelled());
    }

    #[test]
    fn untripped_token_is_fully_transparent() {
        let inner = LabelOracle::new(vec![0, 0, 1, 1]);
        let wrapped =
            CancellableOracle::new(LabelOracle::new(vec![0, 0, 1, 1]), CancellationToken::new());
        assert_eq!(wrapped.n(), 4);
        for a in 0..4 {
            for b in 0..4 {
                if a != b {
                    assert_eq!(wrapped.same(a, b), inner.same(a, b));
                }
            }
        }
        let pairs = [(0usize, 1usize), (1, 2), (2, 3)];
        assert_eq!(wrapped.same_batch(&pairs), inner.same_batch(&pairs));
    }

    #[test]
    fn tripped_token_aborts_every_query_path() {
        let token = CancellationToken::new();
        let oracle = CancellableOracle::new(LabelOracle::new(vec![0, 1]), token.clone());
        token.cancel();
        for outcome in [
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = oracle.same(0, 1);
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = oracle.same_batch(&[(0, 1)]);
            })),
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                oracle.round_opened(&[(0, 1)]);
            })),
        ] {
            let payload = outcome.expect_err("a cancelled oracle must abort");
            assert!(is_cancellation(&*payload), "payload must be Cancelled");
        }
    }

    #[test]
    fn cancellation_payload_is_distinguishable_from_panics() {
        let unwound = std::panic::catch_unwind(|| panic!("ordinary failure")).unwrap_err();
        assert!(!is_cancellation(&*unwound));
    }
}
