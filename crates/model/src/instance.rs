//! Problem instances: hidden assignments of elements to equivalence classes.

use crate::partition::Partition;
use ecs_distributions::{sample_labels, ClassDistribution};
use ecs_rng::EcsRng;

/// A hidden ground-truth assignment of `n` elements to equivalence classes.
///
/// Algorithms never see the labels directly — they interrogate an
/// [`crate::InstanceOracle`] built on top of the instance — but experiment
/// code uses the instance to verify outputs and to report workload statistics
/// (class count `k`, smallest class size `ℓ`, …).
#[derive(Debug, Clone)]
pub struct Instance {
    truth: Partition,
}

impl Instance {
    /// Builds an instance from explicit per-element class labels.
    pub fn from_labels<L: Copy + Eq + std::hash::Hash>(labels: &[L]) -> Self {
        Self {
            truth: Partition::from_labels(labels),
        }
    }

    /// Builds an instance with the given class sizes, assigning classes to
    /// element positions uniformly at random.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn from_class_sizes<R: EcsRng + ?Sized>(sizes: &[usize], rng: &mut R) -> Self {
        assert!(sizes.iter().all(|&s| s > 0), "class sizes must be positive");
        let mut labels = Vec::with_capacity(sizes.iter().sum());
        for (class, &size) in sizes.iter().enumerate() {
            labels.extend(std::iter::repeat_n(class, size));
        }
        rng.shuffle(&mut labels);
        Self::from_labels(&labels)
    }

    /// Builds an instance of `n` elements split into `k` classes whose sizes
    /// differ by at most one (the "equal size" regime of Theorem 5 when
    /// `k | n`), randomly placed.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn balanced<R: EcsRng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k > 0 && k <= n, "need 1 <= k <= n, got k={k}, n={n}");
        let base = n / k;
        let extra = n % k;
        let sizes: Vec<usize> = (0..k).map(|c| base + usize::from(c < extra)).collect();
        Self::from_class_sizes(&sizes, rng)
    }

    /// Builds an instance whose element classes are drawn i.i.d. from a class
    /// distribution (the Section 4 / Section 5 workload).
    pub fn from_distribution<D: ClassDistribution, R: EcsRng + ?Sized>(
        dist: &D,
        n: usize,
        rng: &mut R,
    ) -> Self {
        Self::from_labels(&sample_labels(dist, n, rng))
    }

    /// Number of elements.
    pub fn n(&self) -> usize {
        self.truth.len()
    }

    /// Number of equivalence classes (`k` in the paper).
    pub fn num_classes(&self) -> usize {
        self.truth.num_classes()
    }

    /// Size of the smallest equivalence class (`ℓ` in the paper).
    pub fn smallest_class_size(&self) -> usize {
        self.truth.smallest_class_size()
    }

    /// Size of the largest equivalence class.
    pub fn largest_class_size(&self) -> usize {
        self.truth.largest_class_size()
    }

    /// All class sizes.
    pub fn class_sizes(&self) -> Vec<usize> {
        self.truth.class_sizes()
    }

    /// The hidden ground-truth partition. Experiment code uses this to verify
    /// algorithm output; algorithms themselves must only use the oracle.
    pub fn ground_truth(&self) -> &Partition {
        &self.truth
    }

    /// Whether two elements truly share a class (the oracle's answer source).
    pub fn same_class(&self, a: usize, b: usize) -> bool {
        self.truth.same_class(a, b)
    }

    /// Checks a claimed classification against the ground truth.
    pub fn verify(&self, claimed: &Partition) -> bool {
        claimed == &self.truth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_distributions::UniformClasses;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
    use proptest::prelude::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn from_labels_basics() {
        let inst = Instance::from_labels(&[5, 5, 2, 2, 2, 9]);
        assert_eq!(inst.n(), 6);
        assert_eq!(inst.num_classes(), 3);
        assert_eq!(inst.smallest_class_size(), 1);
        assert_eq!(inst.largest_class_size(), 3);
        assert!(inst.same_class(0, 1));
        assert!(!inst.same_class(0, 2));
    }

    #[test]
    fn from_class_sizes_respects_sizes() {
        let mut r = rng(1);
        let inst = Instance::from_class_sizes(&[3, 5, 2], &mut r);
        assert_eq!(inst.n(), 10);
        assert_eq!(inst.num_classes(), 3);
        let mut sizes = inst.class_sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_class_size_rejected() {
        let mut r = rng(2);
        let _ = Instance::from_class_sizes(&[3, 0], &mut r);
    }

    #[test]
    fn balanced_sizes_differ_by_at_most_one() {
        let mut r = rng(3);
        for &(n, k) in &[(10usize, 3usize), (100, 7), (12, 12), (5, 1)] {
            let inst = Instance::balanced(n, k, &mut r);
            assert_eq!(inst.n(), n);
            assert_eq!(inst.num_classes(), k);
            let sizes = inst.class_sizes();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k <= n")]
    fn balanced_rejects_k_larger_than_n() {
        let mut r = rng(4);
        let _ = Instance::balanced(3, 4, &mut r);
    }

    #[test]
    fn from_distribution_has_plausible_class_count() {
        let mut r = rng(5);
        let inst = Instance::from_distribution(&UniformClasses::new(10), 5000, &mut r);
        assert_eq!(inst.n(), 5000);
        assert_eq!(
            inst.num_classes(),
            10,
            "all 10 classes should be hit at n=5000"
        );
    }

    #[test]
    fn verify_accepts_truth_and_rejects_others() {
        let inst = Instance::from_labels(&[0, 1, 0, 1]);
        assert!(inst.verify(inst.ground_truth()));
        assert!(inst.verify(&Partition::from_labels(&[9, 4, 9, 4])));
        assert!(!inst.verify(&Partition::from_labels(&[0, 0, 1, 1])));
        assert!(!inst.verify(&Partition::singletons(4)));
    }

    proptest! {
        #[test]
        fn shuffling_does_not_change_class_size_multiset(
            sizes in proptest::collection::vec(1usize..8, 1..10),
            seed in 0u64..500,
        ) {
            let mut r = rng(seed);
            let inst = Instance::from_class_sizes(&sizes, &mut r);
            let mut expected = sizes.clone();
            expected.sort_unstable();
            let mut got = inst.class_sizes();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
