//! The Valiant parallel comparison model for equivalence class sorting.
//!
//! The paper measures algorithms in Valiant's parallel comparison model: an
//! algorithm proceeds in synchronous rounds, each round performs at most `p`
//! pairwise equivalence tests (`p = n` processors throughout the paper), and
//! *only comparisons are charged* — all bookkeeping between rounds is free.
//! Two read disciplines are studied:
//!
//! * **exclusive-read (ER)** — an element may take part in at most one
//!   comparison per round (the agents themselves shake hands);
//! * **concurrent-read (CR)** — an element may appear in any number of
//!   comparisons per round.
//!
//! This crate supplies everything an algorithm needs to be charged correctly:
//!
//! * [`Instance`] — a hidden ground-truth assignment of elements to classes,
//!   generated from explicit sizes, a target class count, or one of the
//!   distributions of Section 4.
//! * [`Partition`] — the canonical representation of a (claimed or true)
//!   classification, with equality testing.
//! * [`EquivalenceOracle`] — the only window an algorithm has onto the truth,
//!   with a batched [`EquivalenceOracle::same_batch`] request-wave path for
//!   oracles whose cost is dominated by per-request overhead.
//! * [`ExecutionBackend`] — where comparisons physically run: sequentially
//!   on the calling thread, sharded across a work-stealing pool of OS
//!   threads, submitted as `same_batch` waves
//!   ([`ExecutionBackend::Batched`]), or self-tuned per round
//!   ([`ExecutionBackend::Auto`], lowering through the [`calibrate`]
//!   module's deterministic-replayable [`CalibrationLog`]), with answers
//!   always collected in submission order.
//! * [`BatchingOracle`] — an adapter coalescing concurrent scalar `same`
//!   calls (e.g. from [`ThroughputPool`] job workers) into batch waves.
//! * [`ComparisonSession`] — counts comparisons and rounds, enforces the ER /
//!   CR disciplines and the processor budget, and evaluates large comparison
//!   batches through the selected [`ExecutionBackend`].
//! * [`ThroughputPool`] — multi-session throughput mode: many independent
//!   `(instance, algorithm, backend)` jobs drained through the one shared
//!   pool with round-robin fairness across sessions, per-job metrics
//!   isolation, and results bit-identical to the serial loop; the `try_run`
//!   paths add per-job fault isolation and `spawn` feeds detached daemon
//!   jobs into the same FIFO discipline.
//! * [`CancellableOracle`] / [`CancellationToken`] — cooperative
//!   cancellation delivered through the oracle, checked at round boundaries
//!   and queries on every backend.
//! * [`schedule`] — helpers that decompose arbitrary comparison sets into
//!   legal ER rounds (greedy edge colouring).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod batching;
pub mod calibrate;
pub mod cancellation;
pub mod instance;
pub mod metrics;
pub mod oracle;
pub mod partition;
pub mod schedule;
pub mod session;
pub mod throughput;
pub mod transcript;

pub use backend::ExecutionBackend;
pub use batching::BatchingOracle;
pub use calibrate::{
    CalibrationHandle, CalibrationLog, CalibrationProbe, PinnedKnobs, TuningDecision,
};
pub use cancellation::{CancellableOracle, CancellationToken, Cancelled};
pub use instance::Instance;
pub use metrics::{Metrics, PlanStats, RoundSizeHistogram};
pub use oracle::{EquivalenceOracle, InstanceOracle, LabelOracle};
pub use partition::Partition;
pub use session::{ComparisonSession, ReadMode};
pub use throughput::ThroughputPool;
pub use transcript::{RecordingOracle, Transcript};
