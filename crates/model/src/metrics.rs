//! Cost accounting in Valiant's parallel comparison model.

/// Number of power-of-two buckets in [`RoundSizeHistogram`]: bucket 0 holds
/// empty rounds, bucket 1 holds single-comparison rounds, and bucket `i >= 2`
/// holds sizes in `(2^(i-2), 2^(i-1)]`, so every `usize` has a bucket.
const HISTOGRAM_BUCKETS: usize = usize::BITS as usize + 2;

/// The default number of rounds for which [`Metrics`] keeps an exact
/// per-round size trace before falling back to the histogram alone. A
/// sequential Θ(n²) run charges one round per comparison, so an unbounded
/// trace would store O(n²) entries; this cap bounds it while keeping the
/// exact trace available for every realistically-inspected run.
pub const DEFAULT_ROUND_TRACE_LIMIT: usize = 4096;

/// Replay-count witness of an incremental round planner.
///
/// An order-adaptive oracle that plans comparison rounds against committed
/// state (the adversaries' round-commit protocol) reports here how much
/// planning work each strategy actually did. These counters are *planner
/// diagnostics*, deliberately kept out of [`Metrics`]: the charged cost of a
/// run must stay bit-identical whether plans were cached or fully replayed,
/// and `Metrics` equality is part of that contract.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PlanStats {
    /// Pair occurrences replayed through the planning case analysis (each
    /// call into the underlying state's `answer`).
    pub replayed: u64,
    /// Queries served straight from a still-valid cache entry — an earlier
    /// round's answer, or a repeat already planned this round — without a
    /// fresh replay of their own pair.
    pub cached: u64,
    /// Cache entries dropped because an endpoint's knowledge epoch advanced
    /// at a commit (the packed plan counts these eagerly at the commit; a
    /// spilled plan validates lazily and counts an entry when a fresh replay
    /// overwrites it).
    pub invalidated: u64,
}

impl PlanStats {
    /// The difference `self - earlier`, counter-wise: the planning work done
    /// since `earlier` was sampled.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not component-wise `<= self`.
    pub fn since(&self, earlier: &PlanStats) -> PlanStats {
        PlanStats {
            replayed: self
                .replayed
                .checked_sub(earlier.replayed)
                .expect("earlier sample has more replays"),
            cached: self
                .cached
                .checked_sub(earlier.cached)
                .expect("earlier sample has more cache hits"),
            invalidated: self
                .invalidated
                .checked_sub(earlier.invalidated)
                .expect("earlier sample has more invalidations"),
        }
    }
}

/// A bounded summary of per-round comparison counts: rounds are bucketed by
/// power-of-two size ranges (0, 1, 2, 3–4, 5–8, 9–16, ...), so the memory
/// footprint is constant no matter how many rounds are charged.
///
/// Each power of two is the **inclusive top edge** of its bucket: a round of
/// exactly `2^k` comparisons lands in the bucket capped at `2^k` rather than
/// opening the next one. Parallel rounds in this workspace are overwhelmingly
/// exact powers of two (perfect matchings of `2^k` pairs, binary merge
/// waves), and the old bit-width bucketing filed such a round as the
/// *smallest* member of the next bucket — a maximal `4096`-pair round shared
/// a bucket with everything up to `8191` while being split from the
/// `4095`-pair round one comparison below it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSizeHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
}

impl Default for RoundSizeHistogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl RoundSizeHistogram {
    /// The bucket index for a round of `size` comparisons: `0` for empty
    /// rounds, else `bit_width(size - 1) + 1`, which makes every power of two
    /// the inclusive top edge of its bucket.
    fn bucket(size: usize) -> usize {
        match size {
            0 => 0,
            _ => (usize::BITS - (size - 1).leading_zeros()) as usize + 1,
        }
    }

    /// Counts one value into its power-of-two bucket. [`Metrics`] feeds
    /// round sizes through this; other consumers (e.g. the service daemon's
    /// per-tenant job-latency histograms) may count any `usize`-valued
    /// quantity — the bucket boundaries are pure powers of two either way.
    pub fn record(&mut self, size: usize) {
        self.counts[Self::bucket(size)] += 1;
    }

    fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Total number of rounds recorded (across all buckets).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of recorded rounds whose size falls in the same power-of-two
    /// bucket as `size` (bucket 0 is exactly the empty rounds, bucket 1 the
    /// single-comparison rounds; bucket `i >= 2` is sizes in
    /// `(2^(i-2), 2^(i-1)]` — each power of two is the inclusive top edge of
    /// its bucket).
    pub fn count_for_size(&self, size: usize) -> u64 {
        self.counts[Self::bucket(size)]
    }

    /// The non-empty buckets as `(smallest size in bucket, largest size in
    /// bucket, rounds)` triples, smallest sizes first.
    pub fn nonzero_buckets(&self) -> Vec<(usize, usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(bucket, &count)| match bucket {
                0 => (0, 0, count),
                1 => (1, 1, count),
                _ => (
                    (1usize << (bucket - 2)) + 1,
                    if bucket == HISTOGRAM_BUCKETS - 1 {
                        // The top bucket's nominal edge, 2^usize::BITS, does
                        // not fit in a usize; its largest representable
                        // member is usize::MAX.
                        usize::MAX
                    } else {
                        1usize << (bucket - 1)
                    },
                    count,
                ),
            })
            .collect()
    }
}

/// The costs charged to an algorithm: total comparisons (work) and parallel
/// comparison rounds (depth), together with enough per-round detail to sanity
/// check processor utilisation.
///
/// Per-round sizes are kept in two forms: a constant-size
/// [`RoundSizeHistogram`] that never grows, and an exact in-order trace that
/// is retained only up to a configurable limit
/// ([`DEFAULT_ROUND_TRACE_LIMIT`] rounds by default, see
/// [`Metrics::with_trace_limit`]). Once a run charges more rounds than the
/// limit, the trace is discarded ([`Metrics::round_sizes`] returns `None`)
/// and only the bounded summaries keep growing — a sequential Θ(n²) run
/// therefore stores O(1) size data instead of O(n²).
#[derive(Debug, Clone)]
pub struct Metrics {
    comparisons: u64,
    rounds: u64,
    max_round_size: usize,
    histogram: RoundSizeHistogram,
    /// Exact per-round sizes while `rounds <= trace_limit`; emptied and
    /// abandoned once the limit is crossed.
    trace: Vec<usize>,
    trace_limit: usize,
    trace_complete: bool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::with_trace_limit(DEFAULT_ROUND_TRACE_LIMIT)
    }
}

/// Equality compares the *charged* cost state — comparisons, rounds,
/// maximum round size, and the round-size histogram. A run that kept its
/// exact trace and a histogram-only run (a lower trace limit, or a merge
/// that crossed it) of the same workload therefore compare equal: the trace
/// is a diagnostic refinement of the bounded summaries, and its presence is
/// a configuration artifact, not a cost difference. Comparing the trace
/// itself only when both sides happened to retain it would make equality
/// non-transitive (a traceless run would bridge two differently-ordered
/// traced runs), so callers that care about exact per-round *order* —
/// the determinism suites do — must compare [`Metrics::round_sizes`]
/// explicitly alongside `==`.
impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.comparisons == other.comparisons
            && self.rounds == other.rounds
            && self.max_round_size == other.max_round_size
            && self.histogram == other.histogram
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// Fresh, zeroed metrics with the default round-trace limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh, zeroed metrics that keep the exact per-round size trace for up
    /// to `limit` rounds (`0` disables the trace entirely; `usize::MAX`
    /// restores the old unbounded behaviour for small diagnostic runs).
    pub fn with_trace_limit(limit: usize) -> Self {
        Self {
            comparisons: 0,
            rounds: 0,
            max_round_size: 0,
            histogram: RoundSizeHistogram::default(),
            trace: Vec::new(),
            trace_limit: limit,
            trace_complete: true,
        }
    }

    /// Total number of equivalence tests performed.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of parallel comparison rounds charged.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The largest number of comparisons charged to a single round.
    pub fn max_round_size(&self) -> usize {
        self.max_round_size
    }

    /// The number of comparisons in each charged round, in order — `None`
    /// once the run outgrew the trace limit (use [`Metrics::histogram`] for
    /// the always-available bounded summary).
    pub fn round_sizes(&self) -> Option<&[usize]> {
        if self.trace_complete {
            Some(&self.trace)
        } else {
            None
        }
    }

    /// The bounded per-round size summary (power-of-two buckets); available
    /// for runs of any length.
    pub fn histogram(&self) -> &RoundSizeHistogram {
        &self.histogram
    }

    /// Average processor utilisation, `comparisons / (rounds × processors)`,
    /// in `[0, 1]` — how full the rounds were relative to the machine width.
    pub fn utilisation(&self, processors: usize) -> f64 {
        if self.rounds == 0 || processors == 0 {
            return 0.0;
        }
        self.comparisons as f64 / (self.rounds as f64 * processors as f64)
    }

    /// Records one round containing `size` comparisons.
    pub fn record_round(&mut self, size: usize) {
        self.comparisons += size as u64;
        self.rounds += 1;
        self.max_round_size = self.max_round_size.max(size);
        self.histogram.record(size);
        self.push_trace(size);
    }

    /// Records a single comparison performed outside any round structure
    /// (sequential algorithms). Each such comparison is its own round — in
    /// Valiant's model a sequential algorithm has depth equal to its work.
    pub fn record_single(&mut self) {
        self.record_round(1);
    }

    /// Merges another metrics object into this one (summing work and depth);
    /// used when an algorithm runs subphases with separate sessions. The
    /// exact trace survives only if both sides retained theirs and the
    /// combination still fits this object's limit.
    pub fn absorb(&mut self, other: &Metrics) {
        self.comparisons += other.comparisons;
        self.rounds += other.rounds;
        self.max_round_size = self.max_round_size.max(other.max_round_size);
        self.histogram.merge(&other.histogram);
        match other.round_sizes() {
            Some(sizes)
                if self.trace_complete && self.trace.len() + sizes.len() <= self.trace_limit =>
            {
                self.trace.extend_from_slice(sizes);
            }
            _ => self.drop_trace(),
        }
    }

    fn push_trace(&mut self, size: usize) {
        if !self.trace_complete {
            return;
        }
        if self.trace.len() < self.trace_limit {
            self.trace.push(size);
        } else {
            self.drop_trace();
        }
    }

    /// Abandons the exact trace and releases its memory.
    fn drop_trace(&mut self) {
        self.trace_complete = false;
        self.trace = Vec::new();
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} comparisons over {} rounds (max round {})",
            self.comparisons, self.rounds, self.max_round_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_at_start() {
        let m = Metrics::new();
        assert_eq!(m.comparisons(), 0);
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.max_round_size(), 0);
        assert_eq!(m.utilisation(16), 0.0);
        assert_eq!(m.round_sizes(), Some(&[][..]));
        assert_eq!(m.histogram().total(), 0);
    }

    #[test]
    fn record_round_accumulates() {
        let mut m = Metrics::new();
        m.record_round(10);
        m.record_round(4);
        m.record_round(0);
        assert_eq!(m.comparisons(), 14);
        assert_eq!(m.rounds(), 3);
        assert_eq!(m.max_round_size(), 10);
        assert_eq!(m.round_sizes(), Some(&[10, 4, 0][..]));
        assert_eq!(m.histogram().total(), 3);
        assert_eq!(m.histogram().count_for_size(0), 1);
        assert_eq!(m.histogram().count_for_size(4), 1);
        assert_eq!(m.histogram().count_for_size(10), 1);
    }

    #[test]
    fn singles_are_one_per_round() {
        let mut m = Metrics::new();
        for _ in 0..5 {
            m.record_single();
        }
        assert_eq!(m.comparisons(), 5);
        assert_eq!(m.rounds(), 5);
        assert_eq!(m.max_round_size(), 1);
        assert_eq!(m.histogram().count_for_size(1), 5);
    }

    #[test]
    fn trace_is_bounded_but_counters_keep_going() {
        let mut m = Metrics::with_trace_limit(8);
        for _ in 0..100 {
            m.record_single();
        }
        assert_eq!(m.rounds(), 100);
        assert_eq!(m.comparisons(), 100);
        assert_eq!(
            m.round_sizes(),
            None,
            "trace must be dropped past the limit"
        );
        assert_eq!(m.histogram().total(), 100);
        assert_eq!(m.histogram().count_for_size(1), 100);
        // The dropped trace releases its memory.
        assert_eq!(m.trace.capacity(), 0);
    }

    #[test]
    fn trace_limit_zero_disables_tracing() {
        let mut m = Metrics::with_trace_limit(0);
        assert_eq!(
            m.round_sizes(),
            Some(&[][..]),
            "no rounds yet: trivially complete"
        );
        m.record_round(3);
        assert_eq!(m.round_sizes(), None);
        assert_eq!(m.histogram().count_for_size(3), 1);
    }

    #[test]
    fn utilisation_is_work_over_width_times_depth() {
        let mut m = Metrics::new();
        m.record_round(8);
        m.record_round(8);
        assert!((m.utilisation(16) - 0.5).abs() < 1e-12);
        assert!((m.utilisation(8) - 1.0).abs() < 1e-12);
        assert_eq!(m.utilisation(0), 0.0);
    }

    #[test]
    fn absorb_sums_both() {
        let mut a = Metrics::new();
        a.record_round(3);
        let mut b = Metrics::new();
        b.record_round(7);
        b.record_round(2);
        a.absorb(&b);
        assert_eq!(a.comparisons(), 12);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.max_round_size(), 7);
        assert_eq!(a.round_sizes(), Some(&[3, 7, 2][..]));
        assert_eq!(a.histogram().total(), 3);
    }

    #[test]
    fn absorb_drops_trace_when_either_side_overflowed() {
        let mut big = Metrics::with_trace_limit(2);
        for _ in 0..5 {
            big.record_single();
        }
        assert_eq!(big.round_sizes(), None);
        let mut a = Metrics::new();
        a.record_round(3);
        a.absorb(&big);
        assert_eq!(a.round_sizes(), None);
        assert_eq!(a.rounds(), 6);
        assert_eq!(a.histogram().total(), 6);
    }

    #[test]
    fn equality_ignores_the_trace_configuration() {
        let mut a = Metrics::with_trace_limit(100);
        let mut b = Metrics::with_trace_limit(200);
        for m in [&mut a, &mut b] {
            m.record_round(4);
            m.record_round(9);
        }
        assert_eq!(a, b, "same charges, both traces retained");
        // Regression: a capped-trace run and a histogram-only run of the
        // same workload must agree — the trace's absence is a configuration
        // artifact, not a cost difference.
        let mut c = Metrics::with_trace_limit(1);
        c.record_round(4);
        c.record_round(9);
        assert_eq!(a, c, "same workload, c merely dropped its trace");
        assert_eq!(c, a, "equality must stay symmetric");
        // Equality is over the charged summaries, so it is transitive even
        // through a traceless middle term; exact per-round *order* is the
        // explicit `round_sizes()` check the determinism suites add.
        let mut d = Metrics::new();
        d.record_round(9);
        d.record_round(4);
        assert_eq!(a, d, "same charges in a different order: equal summaries");
        assert_ne!(
            a.round_sizes(),
            d.round_sizes(),
            "order divergence is visible through round_sizes()"
        );
        // A genuinely different workload never compares equal.
        let mut e = Metrics::with_trace_limit(1);
        e.record_round(4);
        e.record_round(10);
        assert_ne!(a, e);
    }

    #[test]
    fn merged_histogram_only_metrics_agree_with_a_capped_trace_run() {
        // Accumulate the same workload twice: once directly with a trace,
        // once by absorbing a histogram-only part (which drops the trace).
        let mut traced = Metrics::new();
        let mut merged = Metrics::new();
        let mut histogram_only = Metrics::with_trace_limit(0);
        for size in [3, 8, 1, 5] {
            traced.record_round(size);
            histogram_only.record_round(size);
        }
        merged.absorb(&histogram_only);
        assert_eq!(merged.round_sizes(), None);
        assert_eq!(
            traced, merged,
            "merge result must agree with the traced run"
        );
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut m = Metrics::new();
        for size in [0, 1, 2, 3, 4, 7, 8, 1024] {
            m.record_round(size);
        }
        let buckets = m.histogram().nonzero_buckets();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 2, 1),
                (3, 4, 2),
                (5, 8, 2),
                (513, 1024, 1),
            ]
        );
    }

    #[test]
    fn exact_powers_of_two_top_their_bucket() {
        // Regression: a round of exactly 2^k comparisons must land in the
        // bucket whose inclusive top edge is 2^k — together with the sizes
        // just below it, not with the sizes up to 2^(k+1) - 1 above it.
        let mut m = Metrics::new();
        for size in [4096, 4095, 4097, 2049] {
            m.record_round(size);
        }
        assert_eq!(
            m.histogram().count_for_size(4096),
            3,
            "4095..=4096 and 2049 share (2048, 4096]"
        );
        assert_eq!(
            m.histogram().count_for_size(4097),
            1,
            "4097 opens (4096, 8192]"
        );
        assert_eq!(
            m.histogram().nonzero_buckets(),
            vec![(2049, 4096, 3), (4097, 8192, 1)]
        );
        // The extremes stay in range: the top bucket's edge saturates.
        let mut top = Metrics::new();
        top.record_round(usize::MAX);
        assert_eq!(top.histogram().count_for_size(usize::MAX), 1);
        assert_eq!(
            top.histogram().nonzero_buckets(),
            vec![((1usize << (usize::BITS - 1)) + 1, usize::MAX, 1)]
        );
        let mut edge = Metrics::new();
        edge.record_round(1usize << (usize::BITS - 1));
        assert_eq!(
            edge.histogram()
                .nonzero_buckets()
                .last()
                .map(|&(_, high, _)| high),
            Some(1usize << (usize::BITS - 1)),
            "an exact power of two tops its bucket even at the extreme"
        );
    }

    #[test]
    fn display_is_human_readable() {
        let mut m = Metrics::new();
        m.record_round(2);
        let s = m.to_string();
        assert!(s.contains("2 comparisons"));
        assert!(s.contains("1 rounds"));
    }
}
