//! Cost accounting in Valiant's parallel comparison model.

/// The costs charged to an algorithm: total comparisons (work) and parallel
/// comparison rounds (depth), together with enough per-round detail to sanity
/// check processor utilisation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    comparisons: u64,
    rounds: u64,
    max_round_size: usize,
    round_sizes: Vec<usize>,
}

impl Metrics {
    /// Fresh, zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of equivalence tests performed.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of parallel comparison rounds charged.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The largest number of comparisons charged to a single round.
    pub fn max_round_size(&self) -> usize {
        self.max_round_size
    }

    /// The number of comparisons in each charged round, in order.
    pub fn round_sizes(&self) -> &[usize] {
        &self.round_sizes
    }

    /// Average processor utilisation, `comparisons / (rounds × processors)`,
    /// in `[0, 1]` — how full the rounds were relative to the machine width.
    pub fn utilisation(&self, processors: usize) -> f64 {
        if self.rounds == 0 || processors == 0 {
            return 0.0;
        }
        self.comparisons as f64 / (self.rounds as f64 * processors as f64)
    }

    /// Records one round containing `size` comparisons.
    pub fn record_round(&mut self, size: usize) {
        self.comparisons += size as u64;
        self.rounds += 1;
        self.max_round_size = self.max_round_size.max(size);
        self.round_sizes.push(size);
    }

    /// Records a single comparison performed outside any round structure
    /// (sequential algorithms). Each such comparison is its own round — in
    /// Valiant's model a sequential algorithm has depth equal to its work.
    pub fn record_single(&mut self) {
        self.record_round(1);
    }

    /// Merges another metrics object into this one (summing work and depth);
    /// used when an algorithm runs subphases with separate sessions.
    pub fn absorb(&mut self, other: &Metrics) {
        self.comparisons += other.comparisons;
        self.rounds += other.rounds;
        self.max_round_size = self.max_round_size.max(other.max_round_size);
        self.round_sizes.extend_from_slice(&other.round_sizes);
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} comparisons over {} rounds (max round {})",
            self.comparisons, self.rounds, self.max_round_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_at_start() {
        let m = Metrics::new();
        assert_eq!(m.comparisons(), 0);
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.max_round_size(), 0);
        assert_eq!(m.utilisation(16), 0.0);
    }

    #[test]
    fn record_round_accumulates() {
        let mut m = Metrics::new();
        m.record_round(10);
        m.record_round(4);
        m.record_round(0);
        assert_eq!(m.comparisons(), 14);
        assert_eq!(m.rounds(), 3);
        assert_eq!(m.max_round_size(), 10);
        assert_eq!(m.round_sizes(), &[10, 4, 0]);
    }

    #[test]
    fn singles_are_one_per_round() {
        let mut m = Metrics::new();
        for _ in 0..5 {
            m.record_single();
        }
        assert_eq!(m.comparisons(), 5);
        assert_eq!(m.rounds(), 5);
        assert_eq!(m.max_round_size(), 1);
    }

    #[test]
    fn utilisation_is_work_over_width_times_depth() {
        let mut m = Metrics::new();
        m.record_round(8);
        m.record_round(8);
        assert!((m.utilisation(16) - 0.5).abs() < 1e-12);
        assert!((m.utilisation(8) - 1.0).abs() < 1e-12);
        assert_eq!(m.utilisation(0), 0.0);
    }

    #[test]
    fn absorb_sums_both() {
        let mut a = Metrics::new();
        a.record_round(3);
        let mut b = Metrics::new();
        b.record_round(7);
        b.record_round(2);
        a.absorb(&b);
        assert_eq!(a.comparisons(), 12);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.max_round_size(), 7);
    }

    #[test]
    fn display_is_human_readable() {
        let mut m = Metrics::new();
        m.record_round(2);
        let s = m.to_string();
        assert!(s.contains("2 comparisons"));
        assert!(s.contains("1 rounds"));
    }
}
