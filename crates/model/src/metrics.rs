//! Cost accounting in Valiant's parallel comparison model.

/// Number of power-of-two buckets in [`RoundSizeHistogram`]: bucket 0 holds
/// empty rounds, bucket `i >= 1` holds sizes with bit-width `i`, so every
/// `usize` has a bucket.
const HISTOGRAM_BUCKETS: usize = usize::BITS as usize + 1;

/// The default number of rounds for which [`Metrics`] keeps an exact
/// per-round size trace before falling back to the histogram alone. A
/// sequential Θ(n²) run charges one round per comparison, so an unbounded
/// trace would store O(n²) entries; this cap bounds it while keeping the
/// exact trace available for every realistically-inspected run.
pub const DEFAULT_ROUND_TRACE_LIMIT: usize = 4096;

/// A bounded summary of per-round comparison counts: rounds are bucketed by
/// the bit-width of their size (0, 1, 2–3, 4–7, 8–15, ...), so the memory
/// footprint is constant no matter how many rounds are charged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundSizeHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
}

impl Default for RoundSizeHistogram {
    fn default() -> Self {
        Self {
            counts: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl RoundSizeHistogram {
    /// The bucket index for a round of `size` comparisons.
    fn bucket(size: usize) -> usize {
        (usize::BITS - size.leading_zeros()) as usize
    }

    fn record(&mut self, size: usize) {
        self.counts[Self::bucket(size)] += 1;
    }

    fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// Total number of rounds recorded (across all buckets).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of recorded rounds whose size falls in the same power-of-two
    /// bucket as `size` (bucket 0 is exactly the empty rounds; bucket `i` is
    /// sizes in `[2^(i-1), 2^i - 1]`).
    pub fn count_for_size(&self, size: usize) -> u64 {
        self.counts[Self::bucket(size)]
    }

    /// The non-empty buckets as `(smallest size in bucket, largest size in
    /// bucket, rounds)` triples, smallest sizes first.
    pub fn nonzero_buckets(&self) -> Vec<(usize, usize, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(bucket, &count)| match bucket {
                0 => (0, 0, count),
                _ => (
                    1usize << (bucket - 1),
                    if bucket == HISTOGRAM_BUCKETS - 1 {
                        usize::MAX
                    } else {
                        (1usize << bucket) - 1
                    },
                    count,
                ),
            })
            .collect()
    }
}

/// The costs charged to an algorithm: total comparisons (work) and parallel
/// comparison rounds (depth), together with enough per-round detail to sanity
/// check processor utilisation.
///
/// Per-round sizes are kept in two forms: a constant-size
/// [`RoundSizeHistogram`] that never grows, and an exact in-order trace that
/// is retained only up to a configurable limit
/// ([`DEFAULT_ROUND_TRACE_LIMIT`] rounds by default, see
/// [`Metrics::with_trace_limit`]). Once a run charges more rounds than the
/// limit, the trace is discarded ([`Metrics::round_sizes`] returns `None`)
/// and only the bounded summaries keep growing — a sequential Θ(n²) run
/// therefore stores O(1) size data instead of O(n²).
#[derive(Debug, Clone)]
pub struct Metrics {
    comparisons: u64,
    rounds: u64,
    max_round_size: usize,
    histogram: RoundSizeHistogram,
    /// Exact per-round sizes while `rounds <= trace_limit`; emptied and
    /// abandoned once the limit is crossed.
    trace: Vec<usize>,
    trace_limit: usize,
    trace_complete: bool,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::with_trace_limit(DEFAULT_ROUND_TRACE_LIMIT)
    }
}

/// Equality compares the *observable* cost state — comparisons, rounds,
/// maximum round size, histogram, and the exact trace (or its absence) — so
/// two runs charged identically compare equal even if their trace limits were
/// configured differently but both retained (or both dropped) the trace.
impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        self.comparisons == other.comparisons
            && self.rounds == other.rounds
            && self.max_round_size == other.max_round_size
            && self.histogram == other.histogram
            && self.round_sizes() == other.round_sizes()
    }
}

impl Eq for Metrics {}

impl Metrics {
    /// Fresh, zeroed metrics with the default round-trace limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fresh, zeroed metrics that keep the exact per-round size trace for up
    /// to `limit` rounds (`0` disables the trace entirely; `usize::MAX`
    /// restores the old unbounded behaviour for small diagnostic runs).
    pub fn with_trace_limit(limit: usize) -> Self {
        Self {
            comparisons: 0,
            rounds: 0,
            max_round_size: 0,
            histogram: RoundSizeHistogram::default(),
            trace: Vec::new(),
            trace_limit: limit,
            trace_complete: true,
        }
    }

    /// Total number of equivalence tests performed.
    pub fn comparisons(&self) -> u64 {
        self.comparisons
    }

    /// Number of parallel comparison rounds charged.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The largest number of comparisons charged to a single round.
    pub fn max_round_size(&self) -> usize {
        self.max_round_size
    }

    /// The number of comparisons in each charged round, in order — `None`
    /// once the run outgrew the trace limit (use [`Metrics::histogram`] for
    /// the always-available bounded summary).
    pub fn round_sizes(&self) -> Option<&[usize]> {
        if self.trace_complete {
            Some(&self.trace)
        } else {
            None
        }
    }

    /// The bounded per-round size summary (power-of-two buckets); available
    /// for runs of any length.
    pub fn histogram(&self) -> &RoundSizeHistogram {
        &self.histogram
    }

    /// Average processor utilisation, `comparisons / (rounds × processors)`,
    /// in `[0, 1]` — how full the rounds were relative to the machine width.
    pub fn utilisation(&self, processors: usize) -> f64 {
        if self.rounds == 0 || processors == 0 {
            return 0.0;
        }
        self.comparisons as f64 / (self.rounds as f64 * processors as f64)
    }

    /// Records one round containing `size` comparisons.
    pub fn record_round(&mut self, size: usize) {
        self.comparisons += size as u64;
        self.rounds += 1;
        self.max_round_size = self.max_round_size.max(size);
        self.histogram.record(size);
        self.push_trace(size);
    }

    /// Records a single comparison performed outside any round structure
    /// (sequential algorithms). Each such comparison is its own round — in
    /// Valiant's model a sequential algorithm has depth equal to its work.
    pub fn record_single(&mut self) {
        self.record_round(1);
    }

    /// Merges another metrics object into this one (summing work and depth);
    /// used when an algorithm runs subphases with separate sessions. The
    /// exact trace survives only if both sides retained theirs and the
    /// combination still fits this object's limit.
    pub fn absorb(&mut self, other: &Metrics) {
        self.comparisons += other.comparisons;
        self.rounds += other.rounds;
        self.max_round_size = self.max_round_size.max(other.max_round_size);
        self.histogram.merge(&other.histogram);
        match other.round_sizes() {
            Some(sizes)
                if self.trace_complete && self.trace.len() + sizes.len() <= self.trace_limit =>
            {
                self.trace.extend_from_slice(sizes);
            }
            _ => self.drop_trace(),
        }
    }

    fn push_trace(&mut self, size: usize) {
        if !self.trace_complete {
            return;
        }
        if self.trace.len() < self.trace_limit {
            self.trace.push(size);
        } else {
            self.drop_trace();
        }
    }

    /// Abandons the exact trace and releases its memory.
    fn drop_trace(&mut self) {
        self.trace_complete = false;
        self.trace = Vec::new();
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} comparisons over {} rounds (max round {})",
            self.comparisons, self.rounds, self.max_round_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_at_start() {
        let m = Metrics::new();
        assert_eq!(m.comparisons(), 0);
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.max_round_size(), 0);
        assert_eq!(m.utilisation(16), 0.0);
        assert_eq!(m.round_sizes(), Some(&[][..]));
        assert_eq!(m.histogram().total(), 0);
    }

    #[test]
    fn record_round_accumulates() {
        let mut m = Metrics::new();
        m.record_round(10);
        m.record_round(4);
        m.record_round(0);
        assert_eq!(m.comparisons(), 14);
        assert_eq!(m.rounds(), 3);
        assert_eq!(m.max_round_size(), 10);
        assert_eq!(m.round_sizes(), Some(&[10, 4, 0][..]));
        assert_eq!(m.histogram().total(), 3);
        assert_eq!(m.histogram().count_for_size(0), 1);
        assert_eq!(m.histogram().count_for_size(4), 1);
        assert_eq!(m.histogram().count_for_size(10), 1);
    }

    #[test]
    fn singles_are_one_per_round() {
        let mut m = Metrics::new();
        for _ in 0..5 {
            m.record_single();
        }
        assert_eq!(m.comparisons(), 5);
        assert_eq!(m.rounds(), 5);
        assert_eq!(m.max_round_size(), 1);
        assert_eq!(m.histogram().count_for_size(1), 5);
    }

    #[test]
    fn trace_is_bounded_but_counters_keep_going() {
        let mut m = Metrics::with_trace_limit(8);
        for _ in 0..100 {
            m.record_single();
        }
        assert_eq!(m.rounds(), 100);
        assert_eq!(m.comparisons(), 100);
        assert_eq!(
            m.round_sizes(),
            None,
            "trace must be dropped past the limit"
        );
        assert_eq!(m.histogram().total(), 100);
        assert_eq!(m.histogram().count_for_size(1), 100);
        // The dropped trace releases its memory.
        assert_eq!(m.trace.capacity(), 0);
    }

    #[test]
    fn trace_limit_zero_disables_tracing() {
        let mut m = Metrics::with_trace_limit(0);
        assert_eq!(
            m.round_sizes(),
            Some(&[][..]),
            "no rounds yet: trivially complete"
        );
        m.record_round(3);
        assert_eq!(m.round_sizes(), None);
        assert_eq!(m.histogram().count_for_size(3), 1);
    }

    #[test]
    fn utilisation_is_work_over_width_times_depth() {
        let mut m = Metrics::new();
        m.record_round(8);
        m.record_round(8);
        assert!((m.utilisation(16) - 0.5).abs() < 1e-12);
        assert!((m.utilisation(8) - 1.0).abs() < 1e-12);
        assert_eq!(m.utilisation(0), 0.0);
    }

    #[test]
    fn absorb_sums_both() {
        let mut a = Metrics::new();
        a.record_round(3);
        let mut b = Metrics::new();
        b.record_round(7);
        b.record_round(2);
        a.absorb(&b);
        assert_eq!(a.comparisons(), 12);
        assert_eq!(a.rounds(), 3);
        assert_eq!(a.max_round_size(), 7);
        assert_eq!(a.round_sizes(), Some(&[3, 7, 2][..]));
        assert_eq!(a.histogram().total(), 3);
    }

    #[test]
    fn absorb_drops_trace_when_either_side_overflowed() {
        let mut big = Metrics::with_trace_limit(2);
        for _ in 0..5 {
            big.record_single();
        }
        assert_eq!(big.round_sizes(), None);
        let mut a = Metrics::new();
        a.record_round(3);
        a.absorb(&big);
        assert_eq!(a.round_sizes(), None);
        assert_eq!(a.rounds(), 6);
        assert_eq!(a.histogram().total(), 6);
    }

    #[test]
    fn equality_ignores_the_configured_limit_until_it_bites() {
        let mut a = Metrics::with_trace_limit(100);
        let mut b = Metrics::with_trace_limit(200);
        for m in [&mut a, &mut b] {
            m.record_round(4);
            m.record_round(9);
        }
        assert_eq!(a, b, "same charges, both traces retained");
        let mut c = Metrics::with_trace_limit(1);
        c.record_round(4);
        c.record_round(9);
        assert_ne!(a, c, "c dropped its trace, a kept it");
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        let mut m = Metrics::new();
        for size in [0, 1, 2, 3, 4, 7, 8, 1024] {
            m.record_round(size);
        }
        let buckets = m.histogram().nonzero_buckets();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (1024, 2047, 1),
            ]
        );
    }

    #[test]
    fn display_is_human_readable() {
        let mut m = Metrics::new();
        m.record_round(2);
        let s = m.to_string();
        assert!(s.contains("2 comparisons"));
        assert!(s.contains("1 rounds"));
    }
}
