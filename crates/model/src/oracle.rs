//! Equivalence oracles: the only window an algorithm has onto the hidden
//! classes.

use crate::instance::Instance;

/// Answers pairwise equivalence tests.
///
/// `Sync` is required so a [`crate::ComparisonSession`] can fan a round's
/// comparisons out across the worker threads of a
/// [`crate::ExecutionBackend::Threaded`] backend, which calls
/// [`EquivalenceOracle::same`] concurrently from several OS threads.
/// Implementations answering from fixed data (like [`InstanceOracle`]) are
/// naturally order-independent and give bit-identical results on every
/// backend; implementations must in any case be
/// *consistent*: answers must be realizable by some fixed partition (the
/// ground-truth oracle trivially is; the lower-bound adversary in
/// `ecs-adversary` maintains consistency explicitly).
pub trait EquivalenceOracle: Sync {
    /// Number of elements in the instance.
    fn n(&self) -> usize;

    /// Returns `true` if elements `a` and `b` belong to the same equivalence
    /// class.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `a` or `b` is out of range or `a == b`
    /// (self-comparisons are never useful and usually indicate an algorithm
    /// bug).
    fn same(&self, a: usize, b: usize) -> bool;
}

/// The straightforward oracle that answers from an [`Instance`]'s ground
/// truth.
#[derive(Debug, Clone)]
pub struct InstanceOracle<'a> {
    instance: &'a Instance,
}

impl<'a> InstanceOracle<'a> {
    /// Wraps an instance.
    pub fn new(instance: &'a Instance) -> Self {
        Self { instance }
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }
}

impl EquivalenceOracle for InstanceOracle<'_> {
    fn n(&self) -> usize {
        self.instance.n()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        assert!(
            a < self.instance.n() && b < self.instance.n(),
            "comparison ({a}, {b}) out of range for n = {}",
            self.instance.n()
        );
        debug_assert_ne!(a, b, "self-comparison requested");
        self.instance.same_class(a, b)
    }
}

/// An oracle defined by an explicit label vector — convenient in tests where
/// constructing a full [`Instance`] is overkill. Enforces the same
/// bounds/self-comparison contract as [`InstanceOracle`]: out-of-range
/// indices fail with a diagnostic message, and self-comparisons are rejected
/// in debug builds.
#[derive(Debug, Clone)]
pub struct LabelOracle {
    labels: Vec<u32>,
}

impl LabelOracle {
    /// Builds the oracle from raw labels.
    pub fn new(labels: Vec<u32>) -> Self {
        Self { labels }
    }
}

impl EquivalenceOracle for LabelOracle {
    fn n(&self) -> usize {
        self.labels.len()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        assert!(
            a < self.labels.len() && b < self.labels.len(),
            "comparison ({a}, {b}) out of range for n = {}",
            self.labels.len()
        );
        debug_assert_ne!(a, b, "self-comparison requested");
        self.labels[a] == self.labels[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn instance_oracle_answers_from_truth() {
        let inst = Instance::from_labels(&[1, 1, 2, 2, 3]);
        let oracle = InstanceOracle::new(&inst);
        assert_eq!(oracle.n(), 5);
        assert!(oracle.same(0, 1));
        assert!(oracle.same(2, 3));
        assert!(!oracle.same(0, 2));
        assert!(!oracle.same(4, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_oracle_rejects_out_of_range() {
        let inst = Instance::from_labels(&[1, 2]);
        let oracle = InstanceOracle::new(&inst);
        let _ = oracle.same(0, 2);
    }

    #[test]
    fn label_oracle_matches_instance_oracle() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let inst = Instance::balanced(40, 5, &mut rng);
        let labels: Vec<u32> = inst.ground_truth().labels().to_vec();
        let a = InstanceOracle::new(&inst);
        let b = LabelOracle::new(labels);
        for i in 0..40 {
            for j in 0..40 {
                if i != j {
                    assert_eq!(a.same(i, j), b.same(i, j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_oracle_rejects_out_of_range() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same(0, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "self-comparison")]
    fn label_oracle_rejects_self_comparison_in_debug() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same(1, 1);
    }

    #[test]
    fn oracles_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<InstanceOracle<'_>>();
        assert_sync::<LabelOracle>();
    }
}
