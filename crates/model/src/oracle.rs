//! Equivalence oracles: the only window an algorithm has onto the hidden
//! classes.
//!
//! The ground-truth oracles answer `same_batch` waves **word-parallel** when
//! the class structure is small enough to pack: the partition is lowered once
//! (lazily) into one [`BitRow`] per class, and a wave that scans consecutive
//! partners against a shared left endpoint — the shape emitted by
//! representative-scan and merge-style algorithms — is answered 64 pairs per
//! word fetch instead of one label compare per pair.

use crate::instance::Instance;
use crate::partition::Partition;
use ecs_graph::BitRow;
use std::sync::OnceLock;

/// Answers pairwise equivalence tests.
///
/// `Sync` is required so a [`crate::ComparisonSession`] can fan a round's
/// comparisons out across the worker threads of a
/// [`crate::ExecutionBackend::Threaded`] backend, which calls
/// [`EquivalenceOracle::same`] concurrently from several OS threads.
/// Implementations answering from fixed data (like [`InstanceOracle`]) are
/// naturally order-independent and give bit-identical results on every
/// backend; implementations must in any case be
/// *consistent*: answers must be realizable by some fixed partition (the
/// ground-truth oracle trivially is; the lower-bound adversary in
/// `ecs-adversary` maintains consistency explicitly).
pub trait EquivalenceOracle: Sync {
    /// Number of elements in the instance.
    fn n(&self) -> usize;

    /// Returns `true` if elements `a` and `b` belong to the same equivalence
    /// class.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `a` or `b` is out of range or `a == b`
    /// (self-comparisons are never useful and usually indicate an algorithm
    /// bug).
    fn same(&self, a: usize, b: usize) -> bool;

    /// Answers a whole batch of equivalence tests, one answer per pair **in
    /// pair order** — the request-wave primitive behind
    /// [`crate::ExecutionBackend::Batched`] and [`crate::BatchingOracle`].
    ///
    /// The default implementation is a scalar loop over [`Self::same`], so
    /// every oracle batches correctly out of the box. Implementations backed
    /// by I/O or per-call fixed costs (a service round trip, a disk-resident
    /// partition, batch-wide validation) should override it to answer the
    /// wave in one pass; overrides must agree *pairwise* with `same` on every
    /// batch — `same_batch(pairs)[i] == same(pairs[i].0, pairs[i].1)` — which
    /// is what keeps batched evaluation bit-identical to the scalar path
    /// (enforced by the `oracle_batching` suite).
    ///
    /// Order-adaptive oracles (the lower-bound adversaries) implement the
    /// round-commit protocol on top of this: between [`Self::round_opened`]
    /// and [`Self::round_closed`] every pair is answered against the
    /// committed state at round start, so a batch's answers do not depend on
    /// how the round was cut into waves or which thread asked first.
    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        // One exact allocation up front; the scalar loop fills it.
        let mut answers = Vec::with_capacity(pairs.len());
        answers.extend(pairs.iter().map(|&(a, b)| self.same(a, b)));
        answers
    }

    /// Round-boundary hook: a [`crate::ComparisonSession`] calls this with
    /// the round's pairs (in submission order) before evaluating them, and
    /// [`Self::round_closed`] after.
    ///
    /// Stateless oracles ignore it (the default is a no-op). Order-adaptive
    /// oracles — the `ecs-adversary` lower-bound adversaries — use the pair
    /// of hooks as their round-commit protocol: at `round_opened` they plan
    /// every pair's answer by replaying the round in its canonical pair
    /// order against the state at round start, queries between the hooks are
    /// served from that plan (in any arrival order, from any thread, in any
    /// wave cut), and `round_closed` publishes the round's merged state
    /// advance — which is what makes their answers bit-identical across
    /// `Sequential`, `Threaded`, and `Batched` execution backends. Scalar
    /// `same` calls *outside* a round (e.g.
    /// [`crate::ComparisonSession::compare`]) are legal and behave as their
    /// own single-pair round.
    ///
    /// An oracle participating in the protocol must not be shared by two
    /// concurrently-evaluating sessions: the rounds would interleave.
    fn round_opened(&self, _pairs: &[(usize, usize)]) {}

    /// Round-boundary hook: the round opened by [`Self::round_opened`] is
    /// complete and deferred effects may be committed. Default: no-op.
    fn round_closed(&self) {}
}

/// Enforces the ground-truth oracles' shared query contract for one pair:
/// indices in range (hard assert with a diagnostic) and no self-comparison
/// (debug assert — never useful, usually an algorithm bug).
#[inline]
fn validate_pair(n: usize, a: usize, b: usize) {
    assert!(
        a < n && b < n,
        "comparison ({a}, {b}) out of range for n = {n}"
    );
    debug_assert_ne!(a, b, "self-comparison requested");
}

/// [`validate_pair`] over a whole wave, so batch answers can be produced in
/// a single unchecked pass afterwards.
fn validate_pairs(n: usize, pairs: &[(usize, usize)]) {
    for &(a, b) in pairs {
        validate_pair(n, a, b);
    }
}

/// Ceiling on `num_classes * n` bits (16 MiB) for the packed class-row view;
/// partitions denser than this answer batches with the scalar label loop.
const CLASS_ROW_MAX_BITS: usize = 1 << 27;

/// The packed class-row view behind the word-parallel batch path: the
/// canonical label of every element plus one [`BitRow`] per class.
#[derive(Debug, Clone)]
struct ClassRows {
    label_of: Vec<u32>,
    rows: Vec<BitRow>,
}

impl ClassRows {
    /// Lowers a partition into the packed view, or `None` when the row
    /// matrix would exceed [`CLASS_ROW_MAX_BITS`].
    fn build(partition: &Partition) -> Option<Self> {
        if partition
            .num_classes()
            .saturating_mul(partition.len())
            .max(partition.len())
            > CLASS_ROW_MAX_BITS
        {
            return None;
        }
        Some(Self {
            label_of: partition.labels().to_vec(),
            rows: partition.class_rows(),
        })
    }

    /// Answers a wave into `out`, validating inline in the same single pass
    /// (the pair list is the dominant memory traffic of a large wave, so it
    /// is walked exactly once). Pairs are grouped into runs that share a
    /// left endpoint; within a run, maximal stretches of consecutive right
    /// endpoints are answered from single 64-bit windows of the left
    /// endpoint's class row — a whole-stretch bounds check stands in for the
    /// per-pair one. Answers are exactly `labels[a] == labels[b]` pair for
    /// pair, and out-of-range pairs panic with the same diagnostic as the
    /// scalar loop.
    fn answer_wave(&self, n: usize, pairs: &[(usize, usize)], out: &mut Vec<bool>) {
        let mut i = 0;
        while i < pairs.len() {
            let a = pairs[i].0;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == a {
                j += 1;
            }
            // Validate the run's left endpoint against its first partner, so
            // an out-of-range `a` reports the pair the scalar loop would.
            validate_pair(n, a, pairs[i].1);
            let row = &self.rows[self.label_of[a] as usize];
            let mut k = i;
            while k < j {
                let b0 = pairs[k].1;
                // Probe a full 64-wide window branchlessly first: the `&=`
                // fold has no early exit, so the consecutiveness check over
                // the common scan/merge wave shape vectorises instead of
                // comparing pair by pair.
                if j - k >= 64 && b0 < n && 64 <= n - b0 {
                    let window = &pairs[k..k + 64];
                    let mut consecutive = true;
                    for (t, p) in window.iter().enumerate() {
                        consecutive &= p.1 == b0 + t;
                    }
                    let self_free = !(b0 <= a && a < b0 + 64);
                    if consecutive && (self_free || !cfg!(debug_assertions)) {
                        let word = row.extract_word(b0);
                        out.extend((0..64u32).map(|t| (word >> t) & 1 == 1));
                        k += 64;
                        continue;
                    }
                }
                let mut m = k + 1;
                while m < j && m - k < 64 && pairs[m].1 == b0 + (m - k) {
                    m += 1;
                }
                let stretch = m - k;
                let in_bounds = b0 < n && stretch <= n - b0;
                // In debug builds a stretch containing `a` itself takes the
                // scalar path so the self-comparison debug assert fires on
                // the exact offending pair.
                let self_free = !(b0 <= a && a < b0 + stretch);
                if stretch >= 8 && in_bounds && (self_free || !cfg!(debug_assertions)) {
                    // A consecutive in-bounds stretch: one unaligned window
                    // fetch answers up to 64 partners.
                    let word = row.extract_word(b0);
                    out.extend((0..stretch).map(|t| (word >> t) & 1 == 1));
                } else {
                    for &(_, b) in &pairs[k..m] {
                        validate_pair(n, a, b);
                        out.push(row.test(b));
                    }
                }
                k = m;
            }
            i = j;
        }
    }
}

/// The straightforward oracle that answers from an [`Instance`]'s ground
/// truth.
#[derive(Debug, Clone)]
pub struct InstanceOracle<'a> {
    instance: &'a Instance,
    /// Lazily-built packed class rows (`None` inside once built = partition
    /// too large to pack; unset = not attempted yet).
    rows: OnceLock<Option<ClassRows>>,
}

impl<'a> InstanceOracle<'a> {
    /// Wraps an instance.
    pub fn new(instance: &'a Instance) -> Self {
        Self {
            instance,
            rows: OnceLock::new(),
        }
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }

    fn class_rows(&self) -> Option<&ClassRows> {
        self.rows
            .get_or_init(|| ClassRows::build(self.instance.ground_truth()))
            .as_ref()
    }
}

impl EquivalenceOracle for InstanceOracle<'_> {
    fn n(&self) -> usize {
        self.instance.n()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        validate_pair(self.instance.n(), a, b);
        self.instance.same_class(a, b)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        // Word-parallel against the packed class rows when the partition
        // fits (validation folded into the single wave pass); otherwise one
        // validation pass plus one scalar pass over the ground truth.
        let n = self.instance.n();
        let mut answers = Vec::with_capacity(pairs.len());
        match self.class_rows() {
            Some(rows) => rows.answer_wave(n, pairs, &mut answers),
            None => {
                validate_pairs(n, pairs);
                answers.extend(pairs.iter().map(|&(a, b)| self.instance.same_class(a, b)));
            }
        }
        answers
    }
}

/// An oracle defined by an explicit label vector — convenient in tests where
/// constructing a full [`Instance`] is overkill. Enforces the same
/// bounds/self-comparison contract as [`InstanceOracle`]: out-of-range
/// indices fail with a diagnostic message, and self-comparisons are rejected
/// in debug builds.
#[derive(Debug, Clone)]
pub struct LabelOracle {
    labels: Vec<u32>,
    /// Lazily-built packed class rows over the canonicalised labels (raw
    /// labels are arbitrary `u32`s, so they are compacted first).
    rows: OnceLock<Option<ClassRows>>,
}

impl LabelOracle {
    /// Builds the oracle from raw labels.
    pub fn new(labels: Vec<u32>) -> Self {
        Self {
            labels,
            rows: OnceLock::new(),
        }
    }

    fn class_rows(&self) -> Option<&ClassRows> {
        self.rows
            .get_or_init(|| ClassRows::build(&Partition::from_labels(&self.labels)))
            .as_ref()
    }
}

impl EquivalenceOracle for LabelOracle {
    fn n(&self) -> usize {
        self.labels.len()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        validate_pair(self.labels.len(), a, b);
        self.labels[a] == self.labels[b]
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        // Word-parallel against the packed class rows when they fit
        // (validation folded into the single wave pass); otherwise one
        // validation pass plus one scalar pass over the labels.
        let n = self.labels.len();
        let mut answers = Vec::with_capacity(pairs.len());
        match self.class_rows() {
            Some(rows) => rows.answer_wave(n, pairs, &mut answers),
            None => {
                validate_pairs(n, pairs);
                answers.extend(pairs.iter().map(|&(a, b)| self.labels[a] == self.labels[b]));
            }
        }
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn instance_oracle_answers_from_truth() {
        let inst = Instance::from_labels(&[1, 1, 2, 2, 3]);
        let oracle = InstanceOracle::new(&inst);
        assert_eq!(oracle.n(), 5);
        assert!(oracle.same(0, 1));
        assert!(oracle.same(2, 3));
        assert!(!oracle.same(0, 2));
        assert!(!oracle.same(4, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_oracle_rejects_out_of_range() {
        let inst = Instance::from_labels(&[1, 2]);
        let oracle = InstanceOracle::new(&inst);
        let _ = oracle.same(0, 2);
    }

    #[test]
    fn label_oracle_matches_instance_oracle() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let inst = Instance::balanced(40, 5, &mut rng);
        let labels: Vec<u32> = inst.ground_truth().labels().to_vec();
        let a = InstanceOracle::new(&inst);
        let b = LabelOracle::new(labels);
        for i in 0..40 {
            for j in 0..40 {
                if i != j {
                    assert_eq!(a.same(i, j), b.same(i, j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_oracle_rejects_out_of_range() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same(0, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "self-comparison")]
    fn label_oracle_rejects_self_comparison_in_debug() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same(1, 1);
    }

    #[test]
    fn oracles_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<InstanceOracle<'_>>();
        assert_sync::<LabelOracle>();
    }

    #[test]
    fn same_batch_agrees_pairwise_with_same() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let inst = Instance::balanced(60, 7, &mut rng);
        let labels: Vec<u32> = inst.ground_truth().labels().to_vec();
        let instance_oracle = InstanceOracle::new(&inst);
        let label_oracle = LabelOracle::new(labels);
        let pairs: Vec<(usize, usize)> = (0..59).map(|i| (i, i + 1)).collect();
        let scalar: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| instance_oracle.same(a, b))
            .collect();
        assert_eq!(instance_oracle.same_batch(&pairs), scalar);
        assert_eq!(label_oracle.same_batch(&pairs), scalar);
        assert!(instance_oracle.same_batch(&[]).is_empty());
    }

    #[test]
    fn default_same_batch_is_the_scalar_loop() {
        /// An oracle that only implements `same`, to exercise the trait's
        /// default batch path.
        struct Parity;
        impl EquivalenceOracle for Parity {
            fn n(&self) -> usize {
                10
            }
            fn same(&self, a: usize, b: usize) -> bool {
                a % 2 == b % 2
            }
        }
        assert_eq!(
            Parity.same_batch(&[(0, 2), (0, 1), (3, 5)]),
            vec![true, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn same_batch_validates_the_whole_wave() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same_batch(&[(0, 1), (0, 2)]);
    }

    #[test]
    fn word_parallel_waves_match_the_scalar_loop() {
        // Exercise every shape the run detector distinguishes: long
        // consecutive stretches (word fetches, crossing word boundaries),
        // short stretches (scalar tests), scattered partners, repeated left
        // endpoints, and descending partners.
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        let inst = Instance::balanced(300, 9, &mut rng);
        let labels: Vec<u32> = inst.ground_truth().labels().to_vec();
        let instance_oracle = InstanceOracle::new(&inst);
        let label_oracle = LabelOracle::new(labels);

        let mut pairs: Vec<(usize, usize)> = Vec::new();
        pairs.extend((1..200).map(|b| (0, b))); // long consecutive run
        pairs.extend([(0, 250), (0, 251), (0, 252)]); // short stretch
        pairs.extend([(5, 60), (5, 7), (5, 200), (5, 199), (5, 198)]); // scattered + descending
        pairs.extend((100..170).map(|b| (42, b))); // run crossing word boundaries
        pairs.extend([(7, 8), (9, 10), (7, 8)]); // repeats, changing left endpoint

        let scalar: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| instance_oracle.same(a, b))
            .collect();
        assert_eq!(instance_oracle.same_batch(&pairs), scalar);
        assert_eq!(label_oracle.same_batch(&pairs), scalar);
    }

    #[test]
    fn word_parallel_path_compacts_arbitrary_labels() {
        // Raw labels are sparse u32s; the packed rows must be built over the
        // canonicalised labels, not indexed by the raw values.
        let labels: Vec<u32> = (0..256).map(|i| 1_000_000 + (i % 5) * 7_919).collect();
        let oracle = LabelOracle::new(labels.clone());
        let pairs: Vec<(usize, usize)> = (0..255).map(|b| (0, b + 1)).collect();
        let expected: Vec<bool> = pairs.iter().map(|&(a, b)| labels[a] == labels[b]).collect();
        assert_eq!(oracle.same_batch(&pairs), expected);
    }

    #[test]
    fn oversized_partitions_fall_back_to_the_scalar_path() {
        // Force the CLASS_ROW_MAX_BITS gate: all-singleton labels make
        // num_classes * n quadratic.
        let n = 20_000usize; // 20k classes * 20k elements = 4e8 bits > 2^27
        let labels: Vec<u32> = (0..n as u32).collect();
        let oracle = LabelOracle::new(labels);
        assert!(oracle.class_rows().is_none());
        let pairs = [(0usize, 1usize), (5, 5000), (19_998, 19_999)];
        assert_eq!(oracle.same_batch(&pairs), vec![false, false, false]);
    }
}
