//! Equivalence oracles: the only window an algorithm has onto the hidden
//! classes.

use crate::instance::Instance;

/// Answers pairwise equivalence tests.
///
/// `Sync` is required so a [`crate::ComparisonSession`] can fan a round's
/// comparisons out across the worker threads of a
/// [`crate::ExecutionBackend::Threaded`] backend, which calls
/// [`EquivalenceOracle::same`] concurrently from several OS threads.
/// Implementations answering from fixed data (like [`InstanceOracle`]) are
/// naturally order-independent and give bit-identical results on every
/// backend; implementations must in any case be
/// *consistent*: answers must be realizable by some fixed partition (the
/// ground-truth oracle trivially is; the lower-bound adversary in
/// `ecs-adversary` maintains consistency explicitly).
pub trait EquivalenceOracle: Sync {
    /// Number of elements in the instance.
    fn n(&self) -> usize;

    /// Returns `true` if elements `a` and `b` belong to the same equivalence
    /// class.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `a` or `b` is out of range or `a == b`
    /// (self-comparisons are never useful and usually indicate an algorithm
    /// bug).
    fn same(&self, a: usize, b: usize) -> bool;

    /// Answers a whole batch of equivalence tests, one answer per pair **in
    /// pair order** — the request-wave primitive behind
    /// [`crate::ExecutionBackend::Batched`] and [`crate::BatchingOracle`].
    ///
    /// The default implementation is a scalar loop over [`Self::same`], so
    /// every oracle batches correctly out of the box. Implementations backed
    /// by I/O or per-call fixed costs (a service round trip, a disk-resident
    /// partition, batch-wide validation) should override it to answer the
    /// wave in one pass; overrides must agree *pairwise* with `same` on every
    /// batch — `same_batch(pairs)[i] == same(pairs[i].0, pairs[i].1)` — which
    /// is what keeps batched evaluation bit-identical to the scalar path
    /// (enforced by the `oracle_batching` suite).
    ///
    /// Order-adaptive oracles (the lower-bound adversaries) implement the
    /// round-commit protocol on top of this: between [`Self::round_opened`]
    /// and [`Self::round_closed`] every pair is answered against the
    /// committed state at round start, so a batch's answers do not depend on
    /// how the round was cut into waves or which thread asked first.
    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        pairs.iter().map(|&(a, b)| self.same(a, b)).collect()
    }

    /// Round-boundary hook: a [`crate::ComparisonSession`] calls this with
    /// the round's pairs (in submission order) before evaluating them, and
    /// [`Self::round_closed`] after.
    ///
    /// Stateless oracles ignore it (the default is a no-op). Order-adaptive
    /// oracles — the `ecs-adversary` lower-bound adversaries — use the pair
    /// of hooks as their round-commit protocol: at `round_opened` they plan
    /// every pair's answer by replaying the round in its canonical pair
    /// order against the state at round start, queries between the hooks are
    /// served from that plan (in any arrival order, from any thread, in any
    /// wave cut), and `round_closed` publishes the round's merged state
    /// advance — which is what makes their answers bit-identical across
    /// `Sequential`, `Threaded`, and `Batched` execution backends. Scalar
    /// `same` calls *outside* a round (e.g.
    /// [`crate::ComparisonSession::compare`]) are legal and behave as their
    /// own single-pair round.
    ///
    /// An oracle participating in the protocol must not be shared by two
    /// concurrently-evaluating sessions: the rounds would interleave.
    fn round_opened(&self, _pairs: &[(usize, usize)]) {}

    /// Round-boundary hook: the round opened by [`Self::round_opened`] is
    /// complete and deferred effects may be committed. Default: no-op.
    fn round_closed(&self) {}
}

/// Enforces the ground-truth oracles' shared query contract for one pair:
/// indices in range (hard assert with a diagnostic) and no self-comparison
/// (debug assert — never useful, usually an algorithm bug).
#[inline]
fn validate_pair(n: usize, a: usize, b: usize) {
    assert!(
        a < n && b < n,
        "comparison ({a}, {b}) out of range for n = {n}"
    );
    debug_assert_ne!(a, b, "self-comparison requested");
}

/// [`validate_pair`] over a whole wave, so batch answers can be produced in
/// a single unchecked pass afterwards.
fn validate_pairs(n: usize, pairs: &[(usize, usize)]) {
    for &(a, b) in pairs {
        validate_pair(n, a, b);
    }
}

/// The straightforward oracle that answers from an [`Instance`]'s ground
/// truth.
#[derive(Debug, Clone)]
pub struct InstanceOracle<'a> {
    instance: &'a Instance,
}

impl<'a> InstanceOracle<'a> {
    /// Wraps an instance.
    pub fn new(instance: &'a Instance) -> Self {
        Self { instance }
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &'a Instance {
        self.instance
    }
}

impl EquivalenceOracle for InstanceOracle<'_> {
    fn n(&self) -> usize {
        self.instance.n()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        validate_pair(self.instance.n(), a, b);
        self.instance.same_class(a, b)
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        // Validate the whole wave up front, then answer it in one unchecked
        // pass over the ground truth.
        validate_pairs(self.instance.n(), pairs);
        pairs
            .iter()
            .map(|&(a, b)| self.instance.same_class(a, b))
            .collect()
    }
}

/// An oracle defined by an explicit label vector — convenient in tests where
/// constructing a full [`Instance`] is overkill. Enforces the same
/// bounds/self-comparison contract as [`InstanceOracle`]: out-of-range
/// indices fail with a diagnostic message, and self-comparisons are rejected
/// in debug builds.
#[derive(Debug, Clone)]
pub struct LabelOracle {
    labels: Vec<u32>,
}

impl LabelOracle {
    /// Builds the oracle from raw labels.
    pub fn new(labels: Vec<u32>) -> Self {
        Self { labels }
    }
}

impl EquivalenceOracle for LabelOracle {
    fn n(&self) -> usize {
        self.labels.len()
    }

    fn same(&self, a: usize, b: usize) -> bool {
        validate_pair(self.labels.len(), a, b);
        self.labels[a] == self.labels[b]
    }

    fn same_batch(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        // One validation pass over the wave, then a straight answer pass
        // over the label vector.
        validate_pairs(self.labels.len(), pairs);
        pairs
            .iter()
            .map(|&(a, b)| self.labels[a] == self.labels[b])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    #[test]
    fn instance_oracle_answers_from_truth() {
        let inst = Instance::from_labels(&[1, 1, 2, 2, 3]);
        let oracle = InstanceOracle::new(&inst);
        assert_eq!(oracle.n(), 5);
        assert!(oracle.same(0, 1));
        assert!(oracle.same(2, 3));
        assert!(!oracle.same(0, 2));
        assert!(!oracle.same(4, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn instance_oracle_rejects_out_of_range() {
        let inst = Instance::from_labels(&[1, 2]);
        let oracle = InstanceOracle::new(&inst);
        let _ = oracle.same(0, 2);
    }

    #[test]
    fn label_oracle_matches_instance_oracle() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        let inst = Instance::balanced(40, 5, &mut rng);
        let labels: Vec<u32> = inst.ground_truth().labels().to_vec();
        let a = InstanceOracle::new(&inst);
        let b = LabelOracle::new(labels);
        for i in 0..40 {
            for j in 0..40 {
                if i != j {
                    assert_eq!(a.same(i, j), b.same(i, j));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn label_oracle_rejects_out_of_range() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same(0, 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "self-comparison")]
    fn label_oracle_rejects_self_comparison_in_debug() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same(1, 1);
    }

    #[test]
    fn oracles_are_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<InstanceOracle<'_>>();
        assert_sync::<LabelOracle>();
    }

    #[test]
    fn same_batch_agrees_pairwise_with_same() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let inst = Instance::balanced(60, 7, &mut rng);
        let labels: Vec<u32> = inst.ground_truth().labels().to_vec();
        let instance_oracle = InstanceOracle::new(&inst);
        let label_oracle = LabelOracle::new(labels);
        let pairs: Vec<(usize, usize)> = (0..59).map(|i| (i, i + 1)).collect();
        let scalar: Vec<bool> = pairs
            .iter()
            .map(|&(a, b)| instance_oracle.same(a, b))
            .collect();
        assert_eq!(instance_oracle.same_batch(&pairs), scalar);
        assert_eq!(label_oracle.same_batch(&pairs), scalar);
        assert!(instance_oracle.same_batch(&[]).is_empty());
    }

    #[test]
    fn default_same_batch_is_the_scalar_loop() {
        /// An oracle that only implements `same`, to exercise the trait's
        /// default batch path.
        struct Parity;
        impl EquivalenceOracle for Parity {
            fn n(&self) -> usize {
                10
            }
            fn same(&self, a: usize, b: usize) -> bool {
                a % 2 == b % 2
            }
        }
        assert_eq!(
            Parity.same_batch(&[(0, 2), (0, 1), (3, 5)]),
            vec![true, false, true]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn same_batch_validates_the_whole_wave() {
        let oracle = LabelOracle::new(vec![1, 2]);
        let _ = oracle.same_batch(&[(0, 1), (0, 2)]);
    }
}
