//! Canonical partitions of `0..n` into equivalence classes.

use ecs_graph::BitRow;

/// A partition of the elements `0..n` into equivalence classes, stored as a
/// dense label per element and canonicalised so that labels are numbered by
/// first occurrence (element 0 always has label 0, the first element with a
/// different class has label 1, and so on).
///
/// Canonicalisation makes equality of partitions a plain slice comparison,
/// which is how algorithm outputs are verified against the ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Partition {
    labels: Vec<u32>,
    num_classes: usize,
}

impl Partition {
    /// Builds a partition from arbitrary per-element labels (canonicalising).
    pub fn from_labels<L: Copy + Eq + std::hash::Hash>(labels: &[L]) -> Self {
        let mut canon: std::collections::HashMap<L, u32> = std::collections::HashMap::new();
        let mut out = Vec::with_capacity(labels.len());
        for &l in labels {
            let next = canon.len() as u32;
            let id = *canon.entry(l).or_insert(next);
            out.push(id);
        }
        Self {
            num_classes: canon.len(),
            labels: out,
        }
    }

    /// Builds a partition from explicit groups of element indices.
    ///
    /// # Panics
    ///
    /// Panics if the groups are not a partition of `0..n` (where `n` is the
    /// total number of listed elements).
    pub fn from_groups(groups: &[Vec<usize>]) -> Self {
        let n: usize = groups.iter().map(|g| g.len()).sum();
        let mut labels = vec![u32::MAX; n];
        for (id, group) in groups.iter().enumerate() {
            for &e in group {
                assert!(e < n, "element {e} out of range for {n} elements");
                assert_eq!(labels[e], u32::MAX, "element {e} listed in two groups");
                labels[e] = id as u32;
            }
        }
        assert!(
            labels.iter().all(|&l| l != u32::MAX),
            "groups must cover every element exactly once"
        );
        Self::from_labels(&labels)
    }

    /// The trivial partition where every element is its own class.
    pub fn singletons(n: usize) -> Self {
        Self {
            labels: (0..n as u32).collect(),
            num_classes: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` if the partition has no elements.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of equivalence classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The canonical label of an element.
    pub fn label_of(&self, element: usize) -> usize {
        self.labels[element] as usize
    }

    /// Whether two elements share a class.
    pub fn same_class(&self, a: usize, b: usize) -> bool {
        self.labels[a] == self.labels[b]
    }

    /// The classes as sorted groups of element indices, ordered by label
    /// (i.e. by first occurrence).
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.num_classes];
        for (e, &l) in self.labels.iter().enumerate() {
            groups[l as usize].push(e);
        }
        groups
    }

    /// The size of each class, ordered by label.
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_classes];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// The size of the smallest class (`ℓ` in the paper); 0 for an empty
    /// partition.
    pub fn smallest_class_size(&self) -> usize {
        self.class_sizes().into_iter().min().unwrap_or(0)
    }

    /// The size of the largest class; 0 for an empty partition.
    pub fn largest_class_size(&self) -> usize {
        self.class_sizes().into_iter().max().unwrap_or(0)
    }

    /// The canonical label slice.
    pub fn labels(&self) -> &[u32] {
        &self.labels
    }

    /// The classes as packed bit rows: row `l` has bit `e` set iff element
    /// `e` carries canonical label `l`. This is the view the word-parallel
    /// `same_batch` oracle path intersects against — membership of 64
    /// consecutive elements in a class is one word fetch.
    pub fn class_rows(&self) -> Vec<BitRow> {
        let mut rows = vec![BitRow::new(self.len()); self.num_classes];
        for (e, &l) in self.labels.iter().enumerate() {
            rows[l as usize].set(e);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonicalisation_is_order_of_first_occurrence() {
        let p = Partition::from_labels(&[7, 7, 3, 7, 9, 3]);
        assert_eq!(p.labels(), &[0, 0, 1, 0, 2, 1]);
        assert_eq!(p.num_classes(), 3);
    }

    #[test]
    fn equal_partitions_with_different_label_names() {
        let a = Partition::from_labels(&["x", "y", "x", "z"]);
        let b = Partition::from_labels(&[10usize, 20, 10, 30]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_partitions_are_unequal() {
        let a = Partition::from_labels(&[0, 0, 1, 1]);
        let b = Partition::from_labels(&[0, 1, 0, 1]);
        assert_ne!(a, b);
    }

    #[test]
    fn from_groups_round_trips() {
        let p = Partition::from_groups(&[vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(p.groups(), vec![vec![0, 2, 4], vec![1, 3]]);
        assert_eq!(p.class_sizes(), vec![3, 2]);
        assert!(p.same_class(0, 4));
        assert!(!p.same_class(0, 1));
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn overlapping_groups_rejected() {
        let _ = Partition::from_groups(&[vec![0, 1], vec![1]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn incomplete_groups_rejected() {
        // Two listed elements but index 2 referenced: not a partition of 0..2.
        let _ = Partition::from_groups(&[vec![0], vec![2]]);
    }

    #[test]
    fn singletons_and_empty() {
        let s = Partition::singletons(4);
        assert_eq!(s.num_classes(), 4);
        assert_eq!(s.smallest_class_size(), 1);
        let e = Partition::from_labels::<u32>(&[]);
        assert!(e.is_empty());
        assert_eq!(e.num_classes(), 0);
        assert_eq!(e.smallest_class_size(), 0);
        assert_eq!(e.largest_class_size(), 0);
    }

    #[test]
    fn sizes_and_extremes() {
        let p = Partition::from_labels(&[0, 0, 0, 1, 1, 2]);
        assert_eq!(p.class_sizes(), vec![3, 2, 1]);
        assert_eq!(p.smallest_class_size(), 1);
        assert_eq!(p.largest_class_size(), 3);
    }

    #[test]
    fn class_rows_mirror_groups() {
        let p = Partition::from_labels(&[0, 0, 1, 0, 2, 1, 2]);
        let rows = p.class_rows();
        assert_eq!(rows.len(), p.num_classes());
        for (row, group) in rows.iter().zip(p.groups()) {
            assert_eq!(row.ones(), group);
        }
        let total: usize = rows.iter().map(|r| r.count_ones()).sum();
        assert_eq!(total, p.len());
    }

    proptest! {
        #[test]
        fn canonical_form_is_idempotent(labels in proptest::collection::vec(0u8..10, 0..100)) {
            let once = Partition::from_labels(&labels);
            let twice = Partition::from_labels(once.labels());
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn groups_round_trip(labels in proptest::collection::vec(0u8..6, 1..80)) {
            let p = Partition::from_labels(&labels);
            let q = Partition::from_groups(&p.groups());
            prop_assert_eq!(p, q);
        }

        #[test]
        fn same_class_matches_raw_labels(labels in proptest::collection::vec(0u8..5, 2..60)) {
            let p = Partition::from_labels(&labels);
            for a in 0..labels.len() {
                for b in 0..labels.len() {
                    prop_assert_eq!(p.same_class(a, b), labels[a] == labels[b]);
                }
            }
        }
    }
}
