//! Decomposing comparison sets into legal exclusive-read rounds.
//!
//! In the ER model each element may appear in at most one comparison per
//! round, so a set of desired comparisons (a multigraph on the elements) must
//! be split into matchings. Vizing's theorem guarantees `Δ + 1` matchings
//! suffice for a simple graph of maximum degree `Δ`; the greedy edge-colouring
//! below achieves at most `2Δ − 1` colours, which is enough for every use in
//! this workspace because the paper's algorithms only ever need the bound to
//! be `O(Δ)` (e.g. Theorem 2 schedules a `k × k` bipartite comparison pattern
//! in `O(k)` rounds).

/// Greedily partitions the given comparison pairs into exclusive-read rounds.
///
/// Each returned round is a matching: no element appears twice within it.
/// Duplicate pairs are preserved (they end up in different rounds); self
/// pairs `(x, x)` are rejected.
///
/// # Panics
///
/// Panics if any pair compares an element with itself.
pub fn schedule_er(pairs: &[(usize, usize)]) -> Vec<Vec<(usize, usize)>> {
    let mut rounds: Vec<Vec<(usize, usize)>> = Vec::new();
    // For each round, the set of elements already used. A HashSet per round
    // keeps the structure sparse; rounds are expected to be few (O(Δ)).
    let mut used: Vec<std::collections::HashSet<usize>> = Vec::new();
    for &(a, b) in pairs {
        assert_ne!(a, b, "cannot schedule a self-comparison ({a}, {a})");
        let slot = (0..rounds.len())
            .find(|&r| !used[r].contains(&a) && !used[r].contains(&b))
            .unwrap_or_else(|| {
                rounds.push(Vec::new());
                used.push(std::collections::HashSet::new());
                rounds.len() - 1
            });
        rounds[slot].push((a, b));
        used[slot].insert(a);
        used[slot].insert(b);
    }
    rounds
}

/// Schedules the complete bipartite comparison pattern between `left` and
/// `right` as exclusive-read rounds using the round-robin rotation: in round
/// `r`, `left[i]` is compared with `right[(i + r) mod |right|]`.
///
/// This is the schedule behind Theorem 2's merge step: comparing one
/// representative of each of `≤ k` classes on one side with each of `≤ k`
/// classes on the other side takes at most `max(|left|, |right|)` rounds.
///
/// Elements may not appear on both sides.
pub fn bipartite_rounds(left: &[usize], right: &[usize]) -> Vec<Vec<(usize, usize)>> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    debug_assert!(
        left.iter().all(|x| !right.contains(x)),
        "bipartite schedule requires disjoint sides"
    );
    // Rotate the larger side against the smaller so every pair appears once.
    let (small, large, swapped) = if left.len() <= right.len() {
        (left, right, false)
    } else {
        (right, left, true)
    };
    let rounds_needed = large.len();
    let mut rounds = Vec::with_capacity(rounds_needed);
    for r in 0..rounds_needed {
        let mut round = Vec::with_capacity(small.len());
        for (i, &s) in small.iter().enumerate() {
            let l = large[(i + r) % large.len()];
            round.push(if swapped { (l, s) } else { (s, l) });
        }
        rounds.push(round);
    }
    rounds
}

/// The maximum multiplicity of any element in the pair list (the maximum
/// degree `Δ` of the comparison multigraph) — a lower bound on the number of
/// ER rounds any schedule needs.
pub fn max_degree(pairs: &[(usize, usize)]) -> usize {
    let mut degree: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for &(a, b) in pairs {
        *degree.entry(a).or_insert(0) += 1;
        *degree.entry(b).or_insert(0) += 1;
    }
    degree.values().copied().max().unwrap_or(0)
}

/// Splits a comparison batch into chunks of at most `processors` comparisons,
/// preserving order — the charging rule when an algorithm asks for a wider
/// round than the machine has processors.
pub fn split_by_width(pairs: &[(usize, usize)], processors: usize) -> Vec<Vec<(usize, usize)>> {
    assert!(processors > 0, "need at least one processor");
    pairs
        .chunks(processors)
        .map(|chunk| chunk.to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn is_matching(round: &[(usize, usize)]) -> bool {
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in round {
            if a == b || !seen.insert(a) || !seen.insert(b) {
                return false;
            }
        }
        true
    }

    #[test]
    fn empty_input_empty_schedule() {
        assert!(schedule_er(&[]).is_empty());
        assert_eq!(max_degree(&[]), 0);
    }

    #[test]
    fn disjoint_pairs_fit_one_round() {
        let pairs = [(0, 1), (2, 3), (4, 5)];
        let rounds = schedule_er(&pairs);
        assert_eq!(rounds.len(), 1);
        assert_eq!(rounds[0].len(), 3);
    }

    #[test]
    fn star_needs_degree_many_rounds() {
        // All pairs share element 0, so each needs its own round.
        let pairs = [(0, 1), (0, 2), (0, 3), (0, 4)];
        let rounds = schedule_er(&pairs);
        assert_eq!(rounds.len(), 4);
        assert_eq!(max_degree(&pairs), 4);
    }

    #[test]
    #[should_panic(expected = "self-comparison")]
    fn self_pairs_rejected() {
        let _ = schedule_er(&[(3, 3)]);
    }

    #[test]
    fn duplicate_pairs_go_to_separate_rounds() {
        let rounds = schedule_er(&[(0, 1), (0, 1)]);
        assert_eq!(rounds.len(), 2);
    }

    #[test]
    fn bipartite_square_pattern() {
        let left = [0, 1, 2];
        let right = [3, 4, 5];
        let rounds = bipartite_rounds(&left, &right);
        assert_eq!(rounds.len(), 3);
        for round in &rounds {
            assert!(is_matching(round));
            assert_eq!(round.len(), 3);
        }
        // All 9 pairs appear exactly once.
        let mut all: Vec<(usize, usize)> = rounds.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 9);
    }

    #[test]
    fn bipartite_rectangular_pattern() {
        let left = [0, 1];
        let right = [2, 3, 4, 5];
        let rounds = bipartite_rounds(&left, &right);
        assert_eq!(rounds.len(), 4, "rounds should equal the larger side");
        let mut all: Vec<(usize, usize)> = rounds.iter().flatten().copied().collect();
        for round in &rounds {
            assert!(is_matching(round));
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8, "every cross pair appears exactly once");
        // Pairs must keep (left, right) orientation.
        assert!(all
            .iter()
            .all(|&(a, b)| left.contains(&a) && right.contains(&b)));
    }

    #[test]
    fn bipartite_empty_side() {
        assert!(bipartite_rounds(&[], &[1, 2]).is_empty());
        assert!(bipartite_rounds(&[1, 2], &[]).is_empty());
    }

    #[test]
    fn split_by_width_chunks() {
        let pairs: Vec<(usize, usize)> = (0..10).map(|i| (2 * i, 2 * i + 1)).collect();
        let split = split_by_width(&pairs, 4);
        assert_eq!(split.len(), 3);
        assert_eq!(split[0].len(), 4);
        assert_eq!(split[2].len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn split_by_zero_width_panics() {
        let _ = split_by_width(&[(0, 1)], 0);
    }

    proptest! {
        #[test]
        fn greedy_schedule_is_valid_and_complete(
            raw in proptest::collection::vec((0usize..30, 0usize..30), 0..150)
        ) {
            let pairs: Vec<(usize, usize)> = raw
                .into_iter()
                .filter(|(a, b)| a != b)
                .collect();
            let rounds = schedule_er(&pairs);
            // Every round is a matching.
            for round in &rounds {
                prop_assert!(is_matching(round));
            }
            // All pairs are preserved as a multiset.
            let mut original = pairs.clone();
            let mut scheduled: Vec<(usize, usize)> = rounds.into_iter().flatten().collect();
            original.sort_unstable();
            scheduled.sort_unstable();
            prop_assert_eq!(original, scheduled);
        }

        #[test]
        fn greedy_round_count_is_linear_in_degree(
            raw in proptest::collection::vec((0usize..20, 0usize..20), 1..100)
        ) {
            let pairs: Vec<(usize, usize)> = raw
                .into_iter()
                .filter(|(a, b)| a != b)
                .collect();
            prop_assume!(!pairs.is_empty());
            let rounds = schedule_er(&pairs);
            let delta = max_degree(&pairs);
            prop_assert!(rounds.len() >= delta.div_ceil(2));
            prop_assert!(rounds.len() <= 2 * delta.max(1));
        }

        #[test]
        fn bipartite_covers_product(
            l in 1usize..8,
            r in 1usize..8,
        ) {
            let left: Vec<usize> = (0..l).collect();
            let right: Vec<usize> = (100..100 + r).collect();
            let rounds = bipartite_rounds(&left, &right);
            prop_assert_eq!(rounds.len(), l.max(r));
            let mut all: Vec<(usize, usize)> = rounds.iter().flatten().copied().collect();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), l * r);
            for round in &rounds {
                prop_assert!(is_matching(round));
            }
        }
    }
}
