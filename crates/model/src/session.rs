//! The comparison session: executes rounds, enforces the model, counts cost.

use crate::backend::ExecutionBackend;
use crate::metrics::Metrics;
use crate::oracle::EquivalenceOracle;

/// Which read discipline a session enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Exclusive-read: every element participates in at most one comparison
    /// per round.
    Exclusive,
    /// Concurrent-read: elements may appear in any number of comparisons per
    /// round.
    Concurrent,
}

/// A charging session in Valiant's parallel comparison model.
///
/// Algorithms submit comparison rounds (or single sequential comparisons);
/// the session validates them against the read discipline and processor
/// budget, evaluates them against the oracle through an
/// [`ExecutionBackend`] — on a work-stealing pool of OS threads for large
/// batches when a [`ExecutionBackend::Threaded`] backend is selected, or as
/// one or few [`EquivalenceOracle::same_batch`] request waves under
/// [`ExecutionBackend::Batched`] — and accumulates [`Metrics`]. Charging is
/// independent of the backend, and answers are collected in submission
/// order, so metrics and partitions are bit-identical across backends.
///
/// # Example
///
/// ```
/// use ecs_model::{ComparisonSession, Instance, InstanceOracle, ReadMode};
/// use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
///
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let instance = Instance::balanced(8, 2, &mut rng);
/// let oracle = InstanceOracle::new(&instance);
/// let mut session = ComparisonSession::new(&oracle, ReadMode::Exclusive);
///
/// let answers = session.execute_round(&[(0, 1), (2, 3), (4, 5), (6, 7)]);
/// assert_eq!(answers.len(), 4);
/// assert_eq!(session.metrics().rounds(), 1);
/// assert_eq!(session.metrics().comparisons(), 4);
/// ```
pub struct ComparisonSession<'a, O: EquivalenceOracle> {
    oracle: &'a O,
    mode: ReadMode,
    processors: usize,
    metrics: Metrics,
    backend: ExecutionBackend,
}

impl<'a, O: EquivalenceOracle> ComparisonSession<'a, O> {
    /// Creates a session with `n` processors (the paper's standing
    /// assumption) and the backend selected by the environment
    /// ([`ExecutionBackend::from_env`], i.e. the `ECS_THREADS` variable;
    /// sequential when unset).
    pub fn new(oracle: &'a O, mode: ReadMode) -> Self {
        Self::with_backend(oracle, mode, ExecutionBackend::from_env())
    }

    /// Creates a session evaluating rounds on an explicit backend, with `n`
    /// processors.
    pub fn with_backend(oracle: &'a O, mode: ReadMode, backend: ExecutionBackend) -> Self {
        Self::with_processors_and_backend(oracle, mode, oracle.n().max(1), backend)
    }

    /// Creates a session with an explicit processor budget and the backend
    /// selected by the environment ([`ExecutionBackend::from_env`]).
    pub fn with_processors(oracle: &'a O, mode: ReadMode, processors: usize) -> Self {
        Self::with_processors_and_backend(oracle, mode, processors, ExecutionBackend::from_env())
    }

    /// Creates a session with an explicit processor budget *and* an explicit
    /// backend. This is the fully-specified constructor every other one
    /// routes through; the throughput pool uses it so that a job's explicitly
    /// chosen backend is never silently overridden by `ECS_THREADS`.
    pub fn with_processors_and_backend(
        oracle: &'a O,
        mode: ReadMode,
        processors: usize,
        backend: ExecutionBackend,
    ) -> Self {
        assert!(processors > 0, "need at least one processor");
        Self {
            oracle,
            mode,
            processors,
            metrics: Metrics::new(),
            backend,
        }
    }

    /// Forces sequential evaluation (useful for deterministic profiling of
    /// the charging logic itself, and for adaptive oracles whose answers
    /// depend on query order).
    pub fn sequential_evaluation(mut self) -> Self {
        self.backend = ExecutionBackend::Sequential;
        self
    }

    /// The read discipline being enforced.
    pub fn mode(&self) -> ReadMode {
        self.mode
    }

    /// The execution backend evaluating this session's rounds.
    pub fn backend(&self) -> ExecutionBackend {
        self.backend
    }

    /// The processor budget per round.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// The number of elements in the underlying instance.
    pub fn n(&self) -> usize {
        self.oracle.n()
    }

    /// The accumulated cost so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the session and returns its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Performs a single comparison, charged as its own round (this is how
    /// sequential algorithms are accounted: depth equals work).
    pub fn compare(&mut self, a: usize, b: usize) -> bool {
        self.metrics.record_single();
        self.oracle.same(a, b)
    }

    /// Executes one parallel round of comparisons and returns one answer per
    /// pair, in order.
    ///
    /// Validation and charging:
    ///
    /// * In [`ReadMode::Exclusive`] the pairs must form a matching — an
    ///   element appearing twice panics, because it indicates a bug in the
    ///   algorithm's schedule rather than a cost-model decision.
    /// * If the batch exceeds the processor budget it is charged as
    ///   `⌈batch / processors⌉` consecutive rounds, which is exactly what a
    ///   `p`-processor machine would need.
    pub fn execute_round(&mut self, pairs: &[(usize, usize)]) -> Vec<bool> {
        if pairs.is_empty() {
            return Vec::new();
        }
        if self.mode == ReadMode::Exclusive {
            self.validate_matching(pairs);
        }
        let full_rounds = pairs.len() / self.processors;
        let remainder = pairs.len() % self.processors;
        for _ in 0..full_rounds {
            self.metrics.record_round(self.processors);
        }
        if remainder > 0 {
            self.metrics.record_round(remainder);
        }
        // One evaluation batch is one oracle round, even when the processor
        // budget charges it as several model rounds: order-adaptive oracles
        // plan the round's answers at `round_opened` (against the round-start
        // state, in the canonical pair order given here) and publish the
        // merged state advance at `round_closed`, making the answers
        // independent of the execution backend. Stateless oracles ignore
        // both hooks.
        self.oracle.round_opened(pairs);
        let answers = self.evaluate(pairs);
        self.oracle.round_closed();
        answers
    }

    /// Executes a sequence of rounds (convenience for algorithms that already
    /// produce a full ER schedule, e.g. the `H_d` decomposition).
    pub fn execute_rounds(&mut self, rounds: &[Vec<(usize, usize)>]) -> Vec<Vec<bool>> {
        rounds.iter().map(|r| self.execute_round(r)).collect()
    }

    fn validate_matching(&self, pairs: &[(usize, usize)]) {
        let mut seen = std::collections::HashSet::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            assert_ne!(a, b, "ER round contains a self-comparison ({a}, {a})");
            assert!(
                seen.insert(a),
                "ER round reuses element {a}: not a matching"
            );
            assert!(
                seen.insert(b),
                "ER round reuses element {b}: not a matching"
            );
        }
    }

    fn evaluate(&self, pairs: &[(usize, usize)]) -> Vec<bool> {
        self.backend.evaluate(self.oracle, pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::oracle::{InstanceOracle, LabelOracle};
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn single_comparisons_charge_one_round_each() {
        let oracle = LabelOracle::new(vec![0, 0, 1, 1]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Exclusive);
        assert!(s.compare(0, 1));
        assert!(!s.compare(1, 2));
        assert_eq!(s.metrics().comparisons(), 2);
        assert_eq!(s.metrics().rounds(), 2);
    }

    #[test]
    fn round_answers_match_truth() {
        let mut r = rng(1);
        let inst = Instance::balanced(100, 4, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Concurrent);
        let pairs: Vec<(usize, usize)> = (1..100).map(|i| (0, i)).collect();
        let answers = s.execute_round(&pairs);
        for (idx, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(answers[idx], inst.same_class(a, b));
        }
        assert_eq!(s.metrics().rounds(), 1);
        assert_eq!(s.metrics().comparisons(), 99);
    }

    #[test]
    #[should_panic(expected = "not a matching")]
    fn er_round_rejects_element_reuse() {
        let oracle = LabelOracle::new(vec![0, 0, 1, 1]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Exclusive);
        let _ = s.execute_round(&[(0, 1), (1, 2)]);
    }

    #[test]
    fn cr_round_allows_element_reuse() {
        let oracle = LabelOracle::new(vec![0, 0, 1, 1]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Concurrent);
        let answers = s.execute_round(&[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(answers, vec![true, false, false]);
        assert_eq!(s.metrics().rounds(), 1);
    }

    #[test]
    #[should_panic(expected = "self-comparison")]
    fn er_round_rejects_self_pairs() {
        let oracle = LabelOracle::new(vec![0, 0]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Exclusive);
        let _ = s.execute_round(&[(1, 1)]);
    }

    #[test]
    fn oversized_round_charged_as_multiple() {
        // 10 elements => 10 processors, but a CR round with 25 comparisons.
        let oracle = LabelOracle::new(vec![0; 10]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Concurrent);
        let pairs: Vec<(usize, usize)> = (0..25).map(|i| (i % 10, (i + 1) % 10)).collect();
        let _ = s.execute_round(&pairs);
        assert_eq!(
            s.metrics().rounds(),
            3,
            "25 comparisons on 10 processors = 3 rounds"
        );
        assert_eq!(s.metrics().comparisons(), 25);
        assert_eq!(s.metrics().round_sizes(), Some(&[10, 10, 5][..]));
    }

    #[test]
    fn explicit_processors_and_backend_are_both_honoured() {
        let oracle = LabelOracle::new(vec![0; 100]);
        let s = ComparisonSession::with_processors_and_backend(
            &oracle,
            ReadMode::Concurrent,
            8,
            ExecutionBackend::threaded(2),
        );
        assert_eq!(s.processors(), 8);
        assert_eq!(
            s.backend(),
            ExecutionBackend::threaded(2),
            "an explicitly chosen backend must not be overridden by ECS_THREADS"
        );
    }

    #[test]
    fn explicit_processor_budget() {
        let oracle = LabelOracle::new(vec![0; 100]);
        let mut s = ComparisonSession::with_processors(&oracle, ReadMode::Concurrent, 8);
        assert_eq!(s.processors(), 8);
        let pairs: Vec<(usize, usize)> = (0..16).map(|i| (i, (i + 1) % 100)).collect();
        let _ = s.execute_round(&pairs);
        assert_eq!(s.metrics().rounds(), 2);
    }

    #[test]
    fn empty_round_is_free() {
        let oracle = LabelOracle::new(vec![0, 1]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Exclusive);
        let answers = s.execute_round(&[]);
        assert!(answers.is_empty());
        assert_eq!(s.metrics().rounds(), 0);
    }

    #[test]
    fn large_batch_parallel_matches_sequential() {
        let mut r = rng(2);
        let inst = Instance::balanced(20_000, 7, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let pairs: Vec<(usize, usize)> = (0..10_000).map(|i| (i, i + 10_000)).collect();

        let mut parallel = ComparisonSession::with_backend(
            &oracle,
            ReadMode::Exclusive,
            ExecutionBackend::threaded(4),
        );
        let a = parallel.execute_round(&pairs);

        let mut sequential =
            ComparisonSession::new(&oracle, ReadMode::Exclusive).sequential_evaluation();
        let b = sequential.execute_round(&pairs);

        assert_eq!(a, b);
        assert_eq!(parallel.metrics(), sequential.metrics());
    }

    #[test]
    fn batched_rounds_match_sequential_answers_and_charging() {
        let mut r = rng(3);
        let inst = Instance::balanced(1_000, 5, &mut r);
        let oracle = InstanceOracle::new(&inst);
        let pairs: Vec<(usize, usize)> = (0..500).map(|i| (i, i + 500)).collect();

        let mut sequential = ComparisonSession::with_backend(
            &oracle,
            ReadMode::Exclusive,
            ExecutionBackend::Sequential,
        );
        let reference = sequential.execute_round(&pairs);

        for wave in [0, 1, 7, 64, 1_000] {
            let mut batched = ComparisonSession::with_backend(
                &oracle,
                ReadMode::Exclusive,
                ExecutionBackend::batched(wave),
            );
            assert_eq!(
                batched.execute_round(&pairs),
                reference,
                "batched({wave}) answers diverged"
            );
            assert_eq!(
                batched.metrics(),
                sequential.metrics(),
                "charging must be independent of the wave size"
            );
            assert_eq!(
                batched.metrics().round_sizes(),
                sequential.metrics().round_sizes(),
                "the exact round trace must be independent of the wave size"
            );
        }
    }

    #[test]
    fn backend_accessor_reports_selection() {
        let oracle = LabelOracle::new(vec![0, 1]);
        let s = ComparisonSession::with_backend(
            &oracle,
            ReadMode::Exclusive,
            ExecutionBackend::threaded(2),
        );
        assert_eq!(s.backend(), ExecutionBackend::threaded(2));
        let s = s.sequential_evaluation();
        assert_eq!(s.backend(), ExecutionBackend::Sequential);
    }

    #[test]
    fn execute_rounds_runs_each_round() {
        let oracle = LabelOracle::new(vec![0, 0, 1, 1]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Exclusive);
        let rounds = vec![vec![(0usize, 1usize)], vec![(2, 3)], vec![(0, 2), (1, 3)]];
        let answers = s.execute_rounds(&rounds);
        assert_eq!(answers, vec![vec![true], vec![true], vec![false, false]]);
        assert_eq!(s.metrics().rounds(), 3);
        assert_eq!(s.metrics().comparisons(), 4);
    }

    #[test]
    fn execute_round_brackets_the_oracle_with_round_hooks() {
        use std::sync::atomic::{AtomicU64, Ordering};

        /// Counts hook invocations and how many queries arrived inside an
        /// open round bracket.
        struct HookAudit {
            opened: AtomicU64,
            closed: AtomicU64,
            bracketed_queries: AtomicU64,
        }
        impl EquivalenceOracle for HookAudit {
            fn n(&self) -> usize {
                8
            }
            fn same(&self, a: usize, b: usize) -> bool {
                if self.opened.load(Ordering::SeqCst) == self.closed.load(Ordering::SeqCst) + 1 {
                    self.bracketed_queries.fetch_add(1, Ordering::SeqCst);
                }
                a % 2 == b % 2
            }
            fn round_opened(&self, pairs: &[(usize, usize)]) {
                assert!(!pairs.is_empty(), "empty rounds are never opened");
                self.opened.fetch_add(1, Ordering::SeqCst);
            }
            fn round_closed(&self) {
                self.closed.fetch_add(1, Ordering::SeqCst);
            }
        }

        let oracle = HookAudit {
            opened: AtomicU64::new(0),
            closed: AtomicU64::new(0),
            bracketed_queries: AtomicU64::new(0),
        };
        let mut s = ComparisonSession::new(&oracle, ReadMode::Exclusive);
        // An empty round is free and opens nothing.
        let _ = s.execute_round(&[]);
        assert_eq!(oracle.opened.load(Ordering::SeqCst), 0);
        // Each evaluated batch is exactly one open/close bracket, even when
        // the processor budget charges it as several model rounds.
        let _ = s.execute_round(&[(0, 2), (1, 3)]);
        let _ = s.execute_rounds(&[vec![(0, 1)], vec![(2, 4), (3, 5)]]);
        assert_eq!(oracle.opened.load(Ordering::SeqCst), 3);
        assert_eq!(oracle.closed.load(Ordering::SeqCst), 3);
        assert_eq!(
            oracle.bracketed_queries.load(Ordering::SeqCst),
            5,
            "every round query must arrive inside an open round"
        );
        // Single sequential comparisons are not bracketed: they behave as
        // their own single-pair round on the oracle side.
        let _ = s.compare(0, 2);
        assert_eq!(oracle.opened.load(Ordering::SeqCst), 3);
        assert_eq!(oracle.bracketed_queries.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn into_metrics_returns_accumulated_cost() {
        let oracle = LabelOracle::new(vec![0, 1]);
        let mut s = ComparisonSession::new(&oracle, ReadMode::Exclusive);
        let _ = s.compare(0, 1);
        let m = s.into_metrics();
        assert_eq!(m.comparisons(), 1);
    }
}
