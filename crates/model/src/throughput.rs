//! Multi-session throughput mode: many independent jobs through one pool.
//!
//! The [`crate::ExecutionBackend`] accelerates a *single*
//! [`crate::ComparisonSession`] by sharding one large round across the
//! work-stealing pool. Experiment grids are the opposite shape: hundreds of
//! small, independent `(instance, algorithm, backend)` trials whose rounds
//! are each far below the parallel threshold. Running such a grid as a
//! serial outer loop around a parallel inner loop leaves the pool idle at
//! every barrier; [`ThroughputPool`] instead submits **every trial of the
//! whole grid as one workload** and lets the pool drain them concurrently.
//!
//! Guarantees:
//!
//! * **Determinism.** Results are returned in job order, and each job runs
//!   exactly the closure the serial loop would have run — for independent
//!   jobs (no shared mutable state), the output is bit-identical to calling
//!   the jobs one after another on the current thread. Jobs that need
//!   randomness should derive it from their own coordinates (e.g.
//!   [`ecs_rng::StreamSplit::stream`] keyed by `(size, trial)`), never from
//!   shared sequential state.
//! * **Fairness.** [`ThroughputPool::run_sessions`] interleaves the jobs of
//!   all sessions round-robin (session 0 job 0, session 1 job 0, …, session
//!   0 job 1, …) and submits them to the pool's strict-FIFO injector queue,
//!   so every session makes progress from the start instead of queueing
//!   behind whole earlier sessions.
//! * **Metrics isolation.** Each job owns its session and returns its own
//!   [`crate::Metrics`]; nothing is shared between jobs, so per-trial cost
//!   accounting is exactly what the serial loop would report.
//!
//! Jobs may themselves evaluate rounds on a [`crate::ExecutionBackend`]: a
//! nested batch targeting the job worker's *own* pool runs inline (avoiding
//! self-deadlock), while one targeting a different pool dispatches to that
//! pool's workers while the job's worker blocks (see the rayon shim), so a
//! threaded inner backend composes with the pool without changing any
//! result. The no-deadlock guarantee requires the pool-nesting graph to be
//! **acyclic**: jobs on pool A may nest work onto pool B only if nothing
//! running on B (transitively) blocks on A again. One-directional nesting —
//! throughput jobs sharding rounds onto a backend pool, as every shipped
//! binary does — trivially satisfies this; mutually-recursive
//! `ThroughputPool`s with a cycle back to the outer pool could block all
//! workers of both pools on each other's latches.

use crate::backend::{shared_pool, ExecutionBackend};
use crate::cancellation::is_cancellation;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// A boxed unit of independent work submitted to a [`ThroughputPool`].
pub type Job<'a, T> = Box<dyn FnOnce() -> T + Send + 'a>;

/// Why a job submitted through [`ThroughputPool::try_run`] produced no
/// value: it panicked, or it was cooperatively cancelled (its unwind payload
/// was [`crate::cancellation::Cancelled`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    message: String,
    cancelled: bool,
}

impl JobPanic {
    /// Classifies a `catch_unwind` payload: a [`crate::Cancelled`] payload
    /// becomes a cancellation, string payloads keep their message. Public so
    /// job runners outside this module (e.g. a service daemon running
    /// detached jobs) report faults identically to [`ThroughputPool::try_run`].
    pub fn from_payload(payload: Box<dyn std::any::Any + Send>) -> Self {
        let cancelled = is_cancellation(&*payload);
        let message = if cancelled {
            "job cancelled".to_string()
        } else if let Some(text) = payload.downcast_ref::<&str>() {
            (*text).to_string()
        } else if let Some(text) = payload.downcast_ref::<String>() {
            text.clone()
        } else {
            "job panicked".to_string()
        };
        Self { message, cancelled }
    }

    /// The panic message (or `"job cancelled"` for cancellations).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Whether the job unwound because its [`crate::CancellationToken`] was
    /// tripped rather than because of a genuine failure.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The per-job outcome of the fault-isolating run paths.
pub type JobResult<T> = Result<T, JobPanic>;

/// Runs many independent jobs through the one shared work-stealing pool.
///
/// # Example
///
/// ```
/// use ecs_model::{ExecutionBackend, ThroughputPool};
///
/// let pool = ThroughputPool::new(ExecutionBackend::threaded(4));
/// let jobs: Vec<ecs_model::throughput::Job<'_, u64>> = (0..100u64)
///     .map(|i| Box::new(move || i * i) as ecs_model::throughput::Job<'_, u64>)
///     .collect();
/// let squares = pool.run(jobs);
/// assert_eq!(squares, (0..100u64).map(|i| i * i).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ThroughputPool {
    backend: ExecutionBackend,
}

impl ThroughputPool {
    /// A throughput pool running jobs on the given backend's worker threads
    /// (`Sequential` degrades to running the jobs serially in order, which is
    /// also the reference semantics of every other configuration).
    pub fn new(backend: ExecutionBackend) -> Self {
        Self { backend }
    }

    /// A throughput pool with `jobs` concurrent workers (`0`/`1` select the
    /// serial reference behaviour) — the `--jobs N` CLI knob.
    pub fn from_jobs(jobs: usize) -> Self {
        Self::new(ExecutionBackend::from_threads(jobs))
    }

    /// The backend whose shared pool executes the jobs.
    pub fn backend(&self) -> ExecutionBackend {
        self.backend
    }

    /// The number of OS threads draining the job queue. Routed through the
    /// backend's planning-time [`crate::TuningDecision`] (never the recorded
    /// trace), so an `Auto` pool's worker count is stable for the pool's
    /// lifetime and planning it cannot perturb a calibration recording.
    pub fn workers(&self) -> usize {
        let decision = self.backend.worker_decision();
        if decision.wave.is_some() {
            1
        } else {
            decision.threads
        }
    }

    /// A short label (`"serial"`, `"pooled(4)"`) for banners and benchmarks.
    pub fn label(&self) -> String {
        if self.backend.is_parallel() {
            format!("pooled({})", self.workers())
        } else {
            "serial".to_string()
        }
    }

    /// Runs independent jobs and returns their results **in job order**,
    /// bit-identical to `jobs.into_iter().map(|job| job()).collect()`.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Vec<T> {
        if !self.backend.is_parallel() || jobs.len() <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        shared_pool(self.workers()).scope(|scope| {
            for (slot, job) in slots.iter().zip(jobs) {
                scope.spawn_fifo(move |_| {
                    let value = job();
                    *slot
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("scope guarantees every job completed")
            })
            .collect()
    }

    /// Runs independent jobs like [`ThroughputPool::run`], but isolates
    /// faults: each job executes under `catch_unwind`, so a panicking or
    /// cancelled job yields an `Err(`[`JobPanic`]`)` in its own slot instead
    /// of tearing down the whole workload after the drain. Results are still
    /// returned **in job order**, and successful jobs are bit-identical to
    /// the serial loop.
    pub fn try_run<'a, T: Send + 'a>(&self, jobs: Vec<Job<'a, T>>) -> Vec<JobResult<T>> {
        let guarded: Vec<Job<'a, JobResult<T>>> = jobs
            .into_iter()
            .map(|job| {
                Box::new(move || {
                    catch_unwind(AssertUnwindSafe(job)).map_err(JobPanic::from_payload)
                }) as Job<'a, JobResult<T>>
            })
            .collect();
        self.run(guarded)
    }

    /// Runs several *sessions* of jobs with the same round-robin fairness as
    /// [`ThroughputPool::run_sessions`], but with per-job fault isolation: a
    /// session whose job panics or is cancelled loses only that job's value
    /// — its remaining jobs keep their fairness slots in the rotation and
    /// every other session completes untouched. (The strict path,
    /// `run_sessions`, resumes the first panic on the caller after the
    /// drain, which forfeits all results.)
    pub fn try_run_sessions<'a, T: Send + 'a>(
        &self,
        sessions: Vec<Vec<Job<'a, T>>>,
    ) -> Vec<Vec<JobResult<T>>> {
        let guarded: Vec<Vec<Job<'a, JobResult<T>>>> = sessions
            .into_iter()
            .map(|session| {
                session
                    .into_iter()
                    .map(|job| {
                        Box::new(move || {
                            catch_unwind(AssertUnwindSafe(job)).map_err(JobPanic::from_payload)
                        }) as Job<'a, JobResult<T>>
                    })
                    .collect()
            })
            .collect();
        self.run_sessions(guarded)
    }

    /// Submits one detached `'static` job to this pool's FIFO injector and
    /// returns immediately — the hook long-lived services use to feed a
    /// stream of jobs into the same strict-FIFO queue that `run_sessions`
    /// dispatches through, so daemon jobs and batch grids share one fairness
    /// discipline. The job always runs asynchronously on the shared pool
    /// (one worker even for a `Sequential`-backend pool), so a scheduler may
    /// call this while holding its own locks.
    ///
    /// Delivery of results, panic reporting, and completion tracking are the
    /// caller's responsibility (wrap the job body; see `ecs_service`).
    pub fn spawn<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        shared_pool(self.workers()).spawn_fifo(job);
    }

    /// Runs several *sessions* of jobs with round-robin fairness: the `r`-th
    /// job of every session is submitted before the `(r+1)`-th job of any
    /// session, so concurrently-queued sessions all make progress instead of
    /// draining in sequence. Results come back grouped by session, each
    /// group in job order — bit-identical to running every session's jobs
    /// serially.
    pub fn run_sessions<'a, T: Send>(&self, sessions: Vec<Vec<Job<'a, T>>>) -> Vec<Vec<T>> {
        let lengths: Vec<usize> = sessions.iter().map(Vec::len).collect();
        let mut remaining: Vec<std::vec::IntoIter<Job<'a, T>>> =
            sessions.into_iter().map(Vec::into_iter).collect();

        // Interleave round-robin and remember where each job came from.
        let mut order: Vec<(usize, usize)> = Vec::with_capacity(lengths.iter().sum());
        let mut interleaved: Vec<Job<'a, T>> = Vec::with_capacity(order.capacity());
        let rounds = lengths.iter().copied().max().unwrap_or(0);
        for round in 0..rounds {
            for (session, jobs) in remaining.iter_mut().enumerate() {
                if let Some(job) = jobs.next() {
                    order.push((session, round));
                    interleaved.push(job);
                }
            }
        }

        let flat = self.run(interleaved);

        let mut grouped: Vec<Vec<Option<T>>> = lengths
            .iter()
            .map(|&len| (0..len).map(|_| None).collect())
            .collect();
        for ((session, index), value) in order.into_iter().zip(flat) {
            grouped[session][index] = Some(value);
        }
        grouped
            .into_iter()
            .map(|session| {
                session
                    .into_iter()
                    .map(|slot| slot.expect("every submitted job produced a value"))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::oracle::{EquivalenceOracle, InstanceOracle};
    use crate::session::{ComparisonSession, ReadMode};
    use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};

    fn pool4() -> ThroughputPool {
        ThroughputPool::new(ExecutionBackend::threaded(4))
    }

    #[test]
    fn serial_backend_runs_in_order_on_the_caller() {
        let pool = ThroughputPool::new(ExecutionBackend::Sequential);
        assert_eq!(pool.label(), "serial");
        assert_eq!(pool.workers(), 1);
        let caller = std::thread::current().id();
        let jobs: Vec<Job<'_, std::thread::ThreadId>> = (0..4)
            .map(|_| Box::new(|| std::thread::current().id()) as Job<'_, std::thread::ThreadId>)
            .collect();
        let ids = pool.run(jobs);
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn from_jobs_maps_low_counts_to_serial() {
        assert_eq!(ThroughputPool::from_jobs(0).label(), "serial");
        assert_eq!(ThroughputPool::from_jobs(1).label(), "serial");
        assert_eq!(ThroughputPool::from_jobs(4).label(), "pooled(4)");
    }

    #[test]
    fn pooled_results_match_serial_in_order() {
        let pool = pool4();
        let jobs: Vec<Job<'_, u64>> = (0..500u64)
            .map(|i| Box::new(move || i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) as Job<'_, u64>)
            .collect();
        let pooled = pool.run(jobs);
        let serial: Vec<u64> = (0..500u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        assert_eq!(pooled, serial);
    }

    #[test]
    fn jobs_carry_isolated_sessions_and_metrics() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let instance = Instance::balanced(64, 4, &mut rng);
        let oracle = InstanceOracle::new(&instance);
        let pool = pool4();
        let jobs: Vec<Job<'_, (u64, bool)>> = (0..16usize)
            .map(|trial| {
                let oracle = &oracle;
                Box::new(move || {
                    let mut session = ComparisonSession::with_processors_and_backend(
                        oracle,
                        ReadMode::Exclusive,
                        oracle.n(),
                        ExecutionBackend::Sequential,
                    );
                    let a = 2 * (trial % 16);
                    let answer = session.compare(a, a + 1);
                    (session.metrics().comparisons(), answer)
                }) as Job<'_, (u64, bool)>
            })
            .collect();
        let results = pool.run(jobs);
        for (trial, &(comparisons, answer)) in results.iter().enumerate() {
            assert_eq!(comparisons, 1, "job {trial} leaked metrics from a sibling");
            let a = 2 * (trial % 16);
            assert_eq!(answer, instance.same_class(a, a + 1));
        }
    }

    #[test]
    fn sessions_come_back_grouped_and_ordered() {
        let pool = pool4();
        let sessions: Vec<Vec<Job<'_, String>>> = (0..3usize)
            .map(|s| {
                (0..=s + 1)
                    .map(|j| Box::new(move || format!("s{s}j{j}")) as Job<'_, String>)
                    .collect()
            })
            .collect();
        let grouped = pool.run_sessions(sessions);
        assert_eq!(grouped.len(), 3);
        for (s, session) in grouped.iter().enumerate() {
            assert_eq!(session.len(), s + 2);
            for (j, value) in session.iter().enumerate() {
                assert_eq!(value, &format!("s{s}j{j}"));
            }
        }
    }

    #[test]
    fn empty_and_uneven_sessions_are_handled() {
        let pool = pool4();
        let sessions: Vec<Vec<Job<'_, usize>>> = vec![
            vec![],
            vec![Box::new(|| 1usize) as Job<'_, usize>],
            vec![],
            (0..5usize)
                .map(|j| Box::new(move || 10 + j) as Job<'_, usize>)
                .collect(),
        ];
        let grouped = pool.run_sessions(sessions);
        assert_eq!(grouped[0], Vec::<usize>::new());
        assert_eq!(grouped[1], vec![1]);
        assert_eq!(grouped[2], Vec::<usize>::new());
        assert_eq!(grouped[3], vec![10, 11, 12, 13, 14]);
        assert!(pool.run(Vec::<Job<'_, ()>>::new()).is_empty());
    }

    #[test]
    fn a_killed_session_releases_its_fairness_slot_mid_grid() {
        // Three sessions share the rotation; every job of session 1 panics
        // (the "killed" session — e.g. a client whose oracle data vanished
        // or whose jobs were cancelled mid-grid). The other sessions must
        // complete every job with correct values, and the killed session
        // must report a per-job error rather than starving the rotation or
        // tearing the grid down.
        for workers in [1usize, 4] {
            let pool = ThroughputPool::from_jobs(workers);
            let sessions: Vec<Vec<Job<'_, usize>>> = (0..3usize)
                .map(|s| {
                    (0..5usize)
                        .map(|j| {
                            Box::new(move || {
                                if s == 1 {
                                    panic!("session 1 job {j} killed mid-grid");
                                }
                                s * 100 + j
                            }) as Job<'_, usize>
                        })
                        .collect()
                })
                .collect();
            let grouped = pool.try_run_sessions(sessions);
            assert_eq!(grouped.len(), 3);
            for (s, session) in grouped.iter().enumerate() {
                assert_eq!(
                    session.len(),
                    5,
                    "session {s} lost jobs ({workers} workers)"
                );
                for (j, outcome) in session.iter().enumerate() {
                    if s == 1 {
                        let failure = outcome.as_ref().expect_err("killed job must error");
                        assert!(failure.message().contains("killed mid-grid"));
                        assert!(!failure.is_cancelled());
                    } else {
                        assert_eq!(outcome.as_ref().copied(), Ok(s * 100 + j));
                    }
                }
            }
        }
    }

    #[test]
    fn cancelled_jobs_report_cancellation_not_failure() {
        use crate::cancellation::{CancellableOracle, CancellationToken};
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let instance = Instance::balanced(32, 4, &mut rng);
        let token = CancellationToken::new();
        token.cancel();
        let jobs: Vec<Job<'_, bool>> = vec![
            {
                let token = token.clone();
                let instance = &instance;
                Box::new(move || {
                    let oracle =
                        CancellableOracle::new(InstanceOracle::new(instance), token.clone());
                    oracle.same(0, 1)
                })
            },
            Box::new(|| true),
        ];
        let results = ThroughputPool::from_jobs(2).try_run(jobs);
        let cancelled = results[0].as_ref().expect_err("tripped token must abort");
        assert!(cancelled.is_cancelled());
        assert_eq!(cancelled.message(), "job cancelled");
        assert_eq!(results[1], Ok(true), "sibling job is untouched");
    }

    #[test]
    fn try_run_matches_run_when_nothing_panics() {
        let pool = pool4();
        let jobs: Vec<Job<'_, u64>> = (0..64u64)
            .map(|i| Box::new(move || i * 3) as Job<'_, u64>)
            .collect();
        let results = pool.try_run(jobs);
        assert_eq!(results, (0..64u64).map(|i| Ok(i * 3)).collect::<Vec<_>>());
    }

    #[test]
    fn detached_spawn_runs_jobs_asynchronously() {
        let (tx, rx) = std::sync::mpsc::channel();
        let pool = ThroughputPool::from_jobs(2);
        for i in 0..16u64 {
            let tx = tx.clone();
            pool.spawn(move || tx.send(i).unwrap());
        }
        drop(tx);
        let mut seen: Vec<u64> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_with_threaded_inner_backends_compose() {
        // A job may shard its own large rounds on a threaded backend; the
        // nested batch runs inline (same pool) or dispatches to the backend's
        // own pool (different pool) — results stay identical either way.
        let mut rng = Xoshiro256StarStar::seed_from_u64(6);
        let instance = Instance::balanced(4_000, 5, &mut rng);
        let oracle = InstanceOracle::new(&instance);
        let pairs: Vec<(usize, usize)> = (0..2_000).map(|i| (i, i + 2_000)).collect();
        let run_one = |backend: ExecutionBackend| {
            let pairs = &pairs;
            let oracle = &oracle;
            move || {
                let mut session =
                    ComparisonSession::with_backend(oracle, ReadMode::Exclusive, backend);
                let answers = session.execute_round(pairs);
                (answers, session.into_metrics())
            }
        };
        let reference = run_one(ExecutionBackend::Sequential)();
        let jobs: Vec<Job<'_, _>> = vec![
            Box::new(run_one(ExecutionBackend::Sequential)),
            Box::new(run_one(ExecutionBackend::Threaded {
                threads: 2,
                threshold: 1,
            })),
        ];
        for (answers, metrics) in pool4().run(jobs) {
            assert_eq!(answers, reference.0);
            assert_eq!(metrics, reference.1);
        }
    }
}
