//! Deterministic pseudo-random number generation substrate.
//!
//! Every experiment in this workspace must be exactly reproducible from a single
//! `u64` seed: the Hamiltonian-cycle construction of the constant-round algorithm,
//! the class-size samplers of the distribution-based analysis, and the workload
//! generators of the benchmark harness all draw their randomness from the
//! generators defined here rather than from an external crate, so that the
//! figures in `EXPERIMENTS.md` can be regenerated bit-for-bit.
//!
//! The crate provides:
//!
//! * [`SplitMix64`] — a tiny, very fast generator used for seeding and for
//!   cheap decorrelated streams.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman & Vigna's
//!   `xoshiro256**`), with `jump`/`long_jump` support for carving independent
//!   parallel streams out of one seed.
//! * The [`EcsRng`] trait — the uniform interface the rest of the workspace
//!   programs against: unbiased integer ranges, floating point in `[0, 1)`,
//!   Bernoulli draws, shuffling and sampling helpers.
//!
//! # Example
//!
//! ```
//! use ecs_rng::{EcsRng, SeedableEcsRng, Xoshiro256StarStar};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let die = rng.range_u64(1..=6);
//! assert!((1..=6).contains(&die));
//!
//! let mut items: Vec<u32> = (0..10).collect();
//! rng.shuffle(&mut items);
//! assert_eq!(items.len(), 10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod seq;
mod splitmix;
mod stream;
mod xoshiro;

pub use splitmix::SplitMix64;
pub use stream::StreamSplit;
pub use xoshiro::Xoshiro256StarStar;

use core::ops::{Bound, RangeBounds};

/// The random number generator interface used throughout the workspace.
///
/// Only [`EcsRng::next_u64`] is required; everything else is derived in a way
/// that is identical for every implementor, so swapping generators never
/// changes the *meaning* of a seed, only the underlying stream.
pub trait EcsRng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits (the high half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly random `u64` strictly below `bound` using Lemire's
    /// multiply-and-shift rejection method, which is unbiased for every bound.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below_u64 requires a positive bound");
        // Lemire's nearly-divisionless unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut low = m as u64;
        if low < bound {
            // Rejection threshold: 2^64 mod bound.
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly random `usize` strictly below `bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    fn below(&mut self, bound: usize) -> usize {
        self.below_u64(bound as u64) as usize
    }

    /// Returns a uniformly random `u64` from the given range.
    ///
    /// Both inclusive and exclusive upper bounds are supported; unbounded
    /// ranges draw from the full `u64` domain on the unbounded side.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn range_u64<R: RangeBounds<u64>>(&mut self, range: R) -> u64 {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.checked_add(1).expect("range start overflow"),
            Bound::Unbounded => 0,
        };
        let hi_inclusive = match range.end_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.checked_sub(1).expect("empty range"),
            Bound::Unbounded => u64::MAX,
        };
        assert!(lo <= hi_inclusive, "range_u64 requires a non-empty range");
        let span = hi_inclusive - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.below_u64(span + 1)
    }

    /// Returns a uniformly random `usize` from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn range_usize<R: RangeBounds<usize>>(&mut self, range: R) -> usize {
        let lo = match range.start_bound() {
            Bound::Included(&v) => v as u64,
            Bound::Excluded(&v) => (v as u64).checked_add(1).expect("range start overflow"),
            Bound::Unbounded => 0,
        };
        let hi_inclusive = match range.end_bound() {
            Bound::Included(&v) => v as u64,
            Bound::Excluded(&v) => (v as u64).checked_sub(1).expect("empty range"),
            Bound::Unbounded => usize::MAX as u64,
        };
        self.range_u64(lo..=hi_inclusive) as usize
    }

    /// Returns a uniformly random `f64` in `[0, 1)` with 53 bits of precision.
    fn f64(&mut self) -> f64 {
        // 53 high bits scaled into the unit interval; the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly random `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where `ln(0)` would be produced by a
    /// zero draw.
    fn f64_open(&mut self) -> f64 {
        loop {
            let x = self.f64();
            if x > 0.0 {
                return x;
            }
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn bernoulli(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.f64() < p
    }

    /// Fisher–Yates shuffles the slice in place.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        seq::shuffle(self, slice);
    }

    /// Returns a reference to a uniformly random element of the slice, or
    /// `None` if the slice is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        seq::choose(self, slice)
    }

    /// Samples `amount` distinct indices from `0..len` (Floyd's algorithm),
    /// returned in random order.
    ///
    /// # Panics
    ///
    /// Panics if `amount > len`.
    fn sample_indices(&mut self, len: usize, amount: usize) -> Vec<usize> {
        seq::sample_indices(self, len, amount)
    }

    /// Returns a uniformly random permutation of `0..n`.
    fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }
}

/// Generators that can be constructed deterministically from a `u64` seed.
pub trait SeedableEcsRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn below_is_in_range() {
        let mut r = rng(1);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.below_u64(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        rng(1).below_u64(0);
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = rng(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            match r.range_u64(5..=8) {
                5 => seen_lo = true,
                8 => seen_hi = true,
                v => assert!((5..=8).contains(&v)),
            }
        }
        assert!(seen_lo && seen_hi, "both endpoints should be reachable");
    }

    #[test]
    fn range_exclusive_never_hits_end() {
        let mut r = rng(3);
        for _ in 0..5_000 {
            let v = r.range_usize(0..10);
            assert!(v < 10);
        }
    }

    #[test]
    fn full_range_works() {
        let mut r = rng(4);
        // Just exercise the span == u64::MAX special case.
        let _ = r.range_u64(..);
        let _ = r.range_u64(0..=u64::MAX);
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = rng(5);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = rng(6);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng(7);
        assert!(r.bernoulli(1.0));
        assert!(r.bernoulli(1.5));
        assert!(!r.bernoulli(0.0));
        assert!(!r.bernoulli(-0.5));
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = rng(8);
        let n = 100_000;
        let hits = (0..n).filter(|_| r.bernoulli(0.25)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.25).abs() < 0.01, "freq {freq} too far from 0.25");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut r = rng(9);
        let p = r.permutation(100);
        let mut sorted = p.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng(1234);
        let mut b = rng(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng(1);
        let mut b = rng(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn below_is_roughly_uniform() {
        // Chi-squared style sanity check on 8 buckets.
        let mut r = rng(10);
        let buckets = 8usize;
        let n = 80_000;
        let mut counts = vec![0usize; buckets];
        for _ in 0..n {
            counts[r.below(buckets)] += 1;
        }
        let expected = n as f64 / buckets as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} deviates by {dev}");
        }
    }
}
