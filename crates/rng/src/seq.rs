//! Sequence helpers: shuffling, choosing, and sampling without replacement.
//!
//! These are free functions parameterised over [`EcsRng`] so that the trait's
//! default methods can delegate here without requiring `Self: Sized` bounds in
//! odd places.

use crate::EcsRng;

/// Fisher–Yates shuffle (Durstenfeld variant), uniform over all permutations.
pub fn shuffle<R: EcsRng + ?Sized, T>(rng: &mut R, slice: &mut [T]) {
    let n = slice.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.below(i + 1);
        slice.swap(i, j);
    }
}

/// Returns a uniformly random element of `slice`, or `None` if it is empty.
pub fn choose<'a, R: EcsRng + ?Sized, T>(rng: &mut R, slice: &'a [T]) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.below(slice.len())])
    }
}

/// Samples `amount` distinct indices from `0..len` using Floyd's algorithm and
/// returns them in a uniformly random order.
///
/// Floyd's algorithm performs exactly `amount` insertions regardless of `len`,
/// so sampling a handful of elements from a huge universe stays cheap.
///
/// # Panics
///
/// Panics if `amount > len`.
pub fn sample_indices<R: EcsRng + ?Sized>(rng: &mut R, len: usize, amount: usize) -> Vec<usize> {
    assert!(
        amount <= len,
        "cannot sample {amount} distinct indices from a universe of {len}"
    );
    if amount == 0 {
        return Vec::new();
    }
    // Floyd's algorithm: for j in len-amount..len, insert a random index in
    // 0..=j, replacing collisions with j itself.
    let mut chosen: Vec<usize> = Vec::with_capacity(amount);
    let mut set = std::collections::HashSet::with_capacity(amount * 2);
    for j in (len - amount)..len {
        let t = rng.below(j + 1);
        let pick = if set.contains(&t) { j } else { t };
        set.insert(pick);
        chosen.push(pick);
    }
    // Floyd's algorithm is uniform over subsets but not over orderings.
    shuffle(rng, &mut chosen);
    chosen
}

/// Reservoir-samples `amount` items from an iterator of unknown length
/// (Algorithm R). Returns fewer than `amount` items if the iterator is short.
pub fn reservoir_sample<R: EcsRng + ?Sized, T, I>(rng: &mut R, iter: I, amount: usize) -> Vec<T>
where
    I: IntoIterator<Item = T>,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(amount);
    if amount == 0 {
        return reservoir;
    }
    for (seen, item) in iter.into_iter().enumerate() {
        if seen < amount {
            reservoir.push(item);
        } else {
            let j = rng.below(seen + 1);
            if j < amount {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableEcsRng, Xoshiro256StarStar};

    fn rng(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(seed)
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut r = rng(1);
        let mut v: Vec<u32> = (0..1000).map(|i| i % 17).collect();
        let mut expected = v.clone();
        shuffle(&mut r, &mut v);
        expected.sort_unstable();
        let mut got = v.clone();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn shuffle_tiny_slices() {
        let mut r = rng(2);
        let mut empty: [u8; 0] = [];
        shuffle(&mut r, &mut empty);
        let mut one = [42];
        shuffle(&mut r, &mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn shuffle_is_roughly_uniform_on_three_elements() {
        // 3! = 6 permutations should each appear ~1/6 of the time.
        let mut r = rng(3);
        let trials = 60_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let mut v = [0u8, 1, 2];
            shuffle(&mut r, &mut v);
            *counts.entry(v).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&perm, &c) in &counts {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 1.0 / 6.0).abs() < 0.01,
                "permutation {perm:?} frequency {freq}"
            );
        }
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = rng(4);
        let empty: [u8; 0] = [];
        assert!(choose(&mut r, &empty).is_none());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut r = rng(5);
        let items = [10, 20, 30, 40];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(*choose(&mut r, &items).unwrap());
        }
        assert_eq!(seen.len(), items.len());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = rng(6);
        for &(len, amount) in &[(10usize, 10usize), (100, 7), (1, 1), (5, 0), (1000, 999)] {
            let s = sample_indices(&mut r, len, amount);
            assert_eq!(s.len(), amount);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), amount, "indices must be distinct");
            assert!(s.iter().all(|&i| i < len));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_more_than_universe_panics() {
        let mut r = rng(7);
        let _ = sample_indices(&mut r, 3, 4);
    }

    #[test]
    fn sample_indices_is_roughly_uniform() {
        // Each index of 0..6 should be included in a 3-subset with prob 1/2.
        let mut r = rng(8);
        let trials = 30_000;
        let mut counts = [0usize; 6];
        for _ in 0..trials {
            for i in sample_indices(&mut r, 6, 3) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.5).abs() < 0.02, "index {i} frequency {freq}");
        }
    }

    #[test]
    fn reservoir_sample_short_iterator() {
        let mut r = rng(9);
        let got = reservoir_sample(&mut r, 0..3usize, 10);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn reservoir_sample_inclusion_probability() {
        let mut r = rng(10);
        let trials = 20_000;
        let mut count_first = 0usize;
        let mut count_last = 0usize;
        for _ in 0..trials {
            let s = reservoir_sample(&mut r, 0..10usize, 4);
            assert_eq!(s.len(), 4);
            if s.contains(&0) {
                count_first += 1;
            }
            if s.contains(&9) {
                count_last += 1;
            }
        }
        for (name, c) in [("first", count_first), ("last", count_last)] {
            let freq = c as f64 / trials as f64;
            assert!(
                (freq - 0.4).abs() < 0.02,
                "{name} inclusion frequency {freq}"
            );
        }
    }
}
