//! SplitMix64: a tiny 64-bit generator used for seeding larger generators.

use crate::{EcsRng, SeedableEcsRng};

/// Steele, Lea & Flood's SplitMix64 generator.
///
/// The state is a single `u64`; each output is a strong 64-bit mix of an
/// incrementing Weyl sequence. It passes BigCrush when used directly, but its
/// primary role here is expanding a single user-provided seed into the 256-bit
/// state of [`crate::Xoshiro256StarStar`] (the construction recommended by the
/// xoshiro authors) and providing cheap per-element derived seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment of the underlying Weyl sequence.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator with the given raw state.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the current internal state (useful for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Derives a decorrelated seed for stream `index` without advancing `self`.
    ///
    /// This is how the workspace assigns independent seeds to parallel workers:
    /// `master.derive(i)` for worker `i`.
    pub fn derive(&self, index: u64) -> u64 {
        let mut probe = Self {
            state: self
                .state
                .wrapping_add(Self::GAMMA.wrapping_mul(index.wrapping_add(1))),
        };
        probe.next_u64() ^ probe.next_u64().rotate_left(32)
    }
}

impl EcsRng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableEcsRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // Reference values for seed 1234567, from the public-domain C
        // implementation by Sebastiano Vigna.
        let mut rng = SplitMix64::new(1234567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut rng = SplitMix64::new(0);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn derive_is_pure() {
        let rng = SplitMix64::new(99);
        assert_eq!(rng.derive(7), rng.derive(7));
        assert_ne!(rng.derive(7), rng.derive(8));
        // Deriving does not advance the parent state.
        assert_eq!(rng.state(), 99);
    }

    #[test]
    fn derived_seeds_decorrelate() {
        let master = SplitMix64::new(5);
        let mut streams: Vec<u64> = (0..64).map(|i| master.derive(i)).collect();
        streams.sort_unstable();
        streams.dedup();
        assert_eq!(streams.len(), 64, "derived seeds should be distinct");
    }
}
