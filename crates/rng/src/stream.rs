//! Splitting a single seed into many independent, reproducible streams.

use crate::{SeedableEcsRng, SplitMix64, Xoshiro256StarStar};

/// A factory that hands out decorrelated generators for numbered streams.
///
/// Experiments are parameterised by `(seed, trial, size, ...)`; every such
/// coordinate tuple must map to its own reproducible generator so that adding
/// or removing one configuration never perturbs any other. `StreamSplit`
/// hashes the coordinates through SplitMix64-derived seeds and produces a
/// fresh [`Xoshiro256StarStar`] per stream.
///
/// # Example
///
/// ```
/// use ecs_rng::{EcsRng, StreamSplit};
///
/// let split = StreamSplit::new(2016);
/// let mut trial0 = split.stream(&[0]);
/// let mut trial1 = split.stream(&[1]);
/// assert_ne!(trial0.next_u64(), trial1.next_u64());
///
/// // Streams are a pure function of (seed, coordinates).
/// let mut again = StreamSplit::new(2016).stream(&[0]);
/// assert_eq!(StreamSplit::new(2016).stream(&[0]).next_u64(), again.next_u64());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StreamSplit {
    root: SplitMix64,
}

impl StreamSplit {
    /// Creates a splitter rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            root: SplitMix64::new(seed ^ 0xA076_1D64_78BD_642F),
        }
    }

    /// Returns the root seed-derivation state (for diagnostics).
    pub fn root_state(&self) -> u64 {
        self.root.state()
    }

    /// Derives the `u64` seed for the stream addressed by `coords`.
    pub fn seed_for(&self, coords: &[u64]) -> u64 {
        let mut acc = self.root;
        let mut seed = acc.derive(coords.len() as u64);
        for (level, &c) in coords.iter().enumerate() {
            acc = SplitMix64::new(seed ^ c.rotate_left((level as u32 * 7) % 64));
            seed = acc.derive(c);
        }
        seed
    }

    /// Returns a fresh generator for the stream addressed by `coords`.
    pub fn stream(&self, coords: &[u64]) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(self.seed_for(coords))
    }

    /// Convenience: a stream addressed by a single index.
    pub fn stream_indexed(&self, index: u64) -> Xoshiro256StarStar {
        self.stream(&[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EcsRng;

    #[test]
    fn streams_are_reproducible() {
        let a = StreamSplit::new(1).stream(&[3, 5, 7]).next_u64();
        let b = StreamSplit::new(1).stream(&[3, 5, 7]).next_u64();
        assert_eq!(a, b);
    }

    #[test]
    fn different_coords_different_streams() {
        let split = StreamSplit::new(42);
        let mut seeds = std::collections::HashSet::new();
        for i in 0..50u64 {
            for j in 0..20u64 {
                seeds.insert(split.seed_for(&[i, j]));
            }
        }
        assert_eq!(
            seeds.len(),
            1000,
            "coordinate tuples must map to distinct seeds"
        );
    }

    #[test]
    fn coordinate_order_matters() {
        let split = StreamSplit::new(9);
        assert_ne!(split.seed_for(&[1, 2]), split.seed_for(&[2, 1]));
    }

    #[test]
    fn prefix_is_not_a_collision() {
        let split = StreamSplit::new(9);
        assert_ne!(split.seed_for(&[1]), split.seed_for(&[1, 0]));
    }

    #[test]
    fn different_root_seeds_differ() {
        assert_ne!(
            StreamSplit::new(1).seed_for(&[0]),
            StreamSplit::new(2).seed_for(&[0])
        );
    }

    #[test]
    fn indexed_stream_matches_slice_form() {
        let split = StreamSplit::new(77);
        assert_eq!(
            split.stream_indexed(5).next_u64(),
            split.stream(&[5]).next_u64()
        );
    }
}
