//! `xoshiro256**`: the workhorse generator of the workspace.

use crate::{EcsRng, SeedableEcsRng, SplitMix64};

/// Blackman & Vigna's `xoshiro256**` generator.
///
/// 256 bits of state, period `2^256 − 1`, excellent statistical quality, and —
/// importantly for the benchmark harness — `jump`/`long_jump` functions that
/// advance the stream by `2^128` / `2^192` steps so that many workers can draw
/// from provably non-overlapping sub-streams of a single seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator from a full 256-bit state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one forbidden state).
    pub fn from_state(state: [u64; 4]) -> Self {
        assert!(
            state.iter().any(|&w| w != 0),
            "xoshiro256** state must not be all zeros"
        );
        Self { s: state }
    }

    /// Returns a copy of the internal state.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Advances the stream by `2^128` steps.
    ///
    /// Calling `jump` `k` times on a clone of a generator yields a sub-stream
    /// that cannot overlap the first `2^128` draws of the original, which is
    /// how independent per-thread generators are produced.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        self.apply_jump(&JUMP);
    }

    /// Advances the stream by `2^192` steps.
    pub fn long_jump(&mut self) {
        const LONG_JUMP: [u64; 4] = [
            0x7674_3484_2f19_3bd7,
            0x8bdc_5d08_7625_eb47,
            0xe363_52dd_c5d6_9b1f,
            0x69b7_25b1_e034_46ae,
        ];
        self.apply_jump(&LONG_JUMP);
    }

    /// Returns a decorrelated child generator: a clone advanced by `index + 1`
    /// jumps of `2^128` steps.
    pub fn fork(&self, index: usize) -> Self {
        let mut child = self.clone();
        for _ in 0..=index {
            child.jump();
        }
        child
    }

    fn apply_jump(&mut self, table: &[u64; 4]) {
        let mut acc = [0u64; 4];
        for &word in table {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                let _ = self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl EcsRng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableEcsRng for Xoshiro256StarStar {
    /// Expands `seed` through SplitMix64 into the 256-bit state, as
    /// recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self::from_state(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Xoshiro256StarStar::seed_from_u64(7);
        let mut b = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "all zeros")]
    fn all_zero_state_rejected() {
        let _ = Xoshiro256StarStar::from_state([0; 4]);
    }

    #[test]
    fn reference_sequence_from_explicit_state() {
        // Reference values computed from the public-domain C implementation
        // (xoshiro256starstar.c) with state {1, 2, 3, 4}.
        let mut rng = Xoshiro256StarStar::from_state([1, 2, 3, 4]);
        let expected = [11520u64, 0, 1509978240, 1215971899390074240];
        for &e in &expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn jump_changes_stream() {
        let base = Xoshiro256StarStar::seed_from_u64(3);
        let mut jumped = base.clone();
        jumped.jump();
        let mut base = base;
        let collisions = (0..256)
            .filter(|_| base.next_u64() == jumped.next_u64())
            .count();
        assert!(collisions < 4);
    }

    #[test]
    fn forks_are_distinct_and_deterministic() {
        let parent = Xoshiro256StarStar::seed_from_u64(11);
        let mut a0 = parent.fork(0);
        let mut a0_again = parent.fork(0);
        let mut a1 = parent.fork(1);
        assert_eq!(a0.next_u64(), a0_again.next_u64());
        let mut differs = false;
        for _ in 0..64 {
            if a0.next_u64() != a1.next_u64() {
                differs = true;
                break;
            }
        }
        assert!(
            differs,
            "fork(0) and fork(1) must produce different streams"
        );
    }

    #[test]
    fn long_jump_differs_from_jump() {
        let base = Xoshiro256StarStar::seed_from_u64(13);
        let mut j = base.clone();
        let mut lj = base.clone();
        j.jump();
        lj.long_jump();
        assert_ne!(j.state(), lj.state());
    }

    #[test]
    fn bit_balance_is_reasonable() {
        // Each of the 64 output bit positions should be set roughly half the time.
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let draws = 20_000;
        let mut ones = [0u32; 64];
        for _ in 0..draws {
            let x = rng.next_u64();
            for (bit, count) in ones.iter_mut().enumerate() {
                *count += ((x >> bit) & 1) as u32;
            }
        }
        for (bit, &count) in ones.iter().enumerate() {
            let freq = count as f64 / draws as f64;
            assert!(
                (freq - 0.5).abs() < 0.02,
                "bit {bit} set with frequency {freq}"
            );
        }
    }
}
