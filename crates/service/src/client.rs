//! A blocking protocol client for tests, the load generator, and scripts.

use crate::protocol::{JobSpec, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One session's client endpoint: a line writer and a line reader over any
/// transport (TCP or the in-process loopback pipe).
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Wraps an already-connected transport.
    pub fn new<R, W>(reader: R, writer: W) -> Self
    where
        R: BufRead + Send + 'static,
        W: Write + Send + 'static,
    {
        Self {
            reader: Box::new(reader),
            writer: Box::new(writer),
        }
    }

    /// Connects to a TCP daemon.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self::new(reader, stream))
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        writeln!(self.writer, "{}", request.render())?;
        self.writer.flush()
    }

    /// Submits a job.
    pub fn submit(&mut self, spec: &JobSpec) -> std::io::Result<()> {
        self.send(&Request::Submit(spec.clone()))
    }

    /// Reads the next response line (`None` on EOF). Malformed daemon lines
    /// surface as [`Response::Error`].
    pub fn recv(&mut self) -> std::io::Result<Option<Response>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            return Ok(Some(
                Response::parse(&line).unwrap_or_else(|message| Response::Error { message }),
            ));
        }
    }

    /// Sends `drain` and collects every response up to (excluding) the
    /// `drained` barrier — i.e. the terminal line of every job this session
    /// submitted so far, plus any earlier acks still queued.
    pub fn drain(&mut self) -> std::io::Result<Vec<Response>> {
        self.send(&Request::Drain)?;
        let mut responses = Vec::new();
        while let Some(response) = self.recv()? {
            if response == Response::Drained {
                return Ok(responses);
            }
            responses.push(response);
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "session closed before the drain barrier",
        ))
    }

    /// Sends `shutdown` and reads until the daemon closes the session.
    /// Returns the responses seen after the request (typically just `bye`).
    pub fn shutdown(&mut self) -> std::io::Result<Vec<Response>> {
        self.send(&Request::Shutdown)?;
        let mut responses = Vec::new();
        while let Some(response) = self.recv()? {
            responses.push(response);
        }
        Ok(responses)
    }
}
