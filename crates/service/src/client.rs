//! A blocking protocol client for tests, the load generator, and scripts.

use crate::protocol::{split_seq, JobSpec, Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// One session's client endpoint: a line writer and a line reader over any
/// transport (TCP or the in-process loopback pipe).
///
/// For resumable sessions (opened with [`Client::hello`]), the client
/// tracks the sequence number of every `seq=`-prefixed line it receives:
/// [`Client::last_seq`] is what a reconnecting client passes to
/// [`Client::resume`], and [`Client::ack`] is how it lets the daemon trim
/// its retained buffer.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
    token: Option<String>,
    last_seq: u64,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client").finish_non_exhaustive()
    }
}

impl Client {
    /// Wraps an already-connected transport.
    pub fn new<R, W>(reader: R, writer: W) -> Self
    where
        R: BufRead + Send + 'static,
        W: Write + Send + 'static,
    {
        Self {
            reader: Box::new(reader),
            writer: Box::new(writer),
            token: None,
            last_seq: 0,
        }
    }

    /// Connects to a TCP daemon.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self::new(reader, stream))
    }

    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> std::io::Result<()> {
        writeln!(self.writer, "{}", request.render())?;
        self.writer.flush()
    }

    /// Submits a job.
    pub fn submit(&mut self, spec: &JobSpec) -> std::io::Result<()> {
        self.send(&Request::Submit(spec.clone()))
    }

    /// Reads the next response line (`None` on EOF). Malformed daemon lines
    /// surface as [`Response::Error`]. A `seq=` prefix (resumable sessions)
    /// is stripped and recorded as [`Client::last_seq`].
    pub fn recv(&mut self) -> std::io::Result<Option<Response>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            if line.trim().is_empty() {
                continue;
            }
            let (seq, payload) = split_seq(line.trim_end());
            if let Some(seq) = seq {
                self.last_seq = seq;
            }
            return Ok(Some(
                Response::parse(payload).unwrap_or_else(|message| Response::Error { message }),
            ));
        }
    }

    /// Opens a resumable session: sends `hello` (which must be this
    /// connection's first request) and reads until the daemon answers with
    /// the session's stable token, which is recorded and returned.
    pub fn hello(&mut self) -> std::io::Result<String> {
        self.send(&Request::Hello)?;
        while let Some(response) = self.recv()? {
            if let Response::Hello { token } = response {
                self.token = Some(token.clone());
                return Ok(token);
            }
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "session closed before hello was answered",
        ))
    }

    /// Acknowledges every line with sequence number `<= seq`, letting the
    /// daemon trim its retained buffer that far.
    pub fn ack(&mut self, seq: u64) -> std::io::Result<()> {
        self.send(&Request::Ack { seq })
    }

    /// Re-attaches to a dropped resumable session (must be the first
    /// request of a fresh connection); the daemon replays every retained
    /// line after `last_seq` through [`Client::recv`] as normal.
    pub fn resume(&mut self, token: &str, last_seq: u64) -> std::io::Result<()> {
        self.token = Some(token.to_string());
        self.last_seq = last_seq;
        self.send(&Request::Resume {
            token: token.to_string(),
            last_seq,
        })
    }

    /// The sequence number of the newest `seq=`-prefixed line received (0
    /// before any) — what a reconnect passes to [`Client::resume`].
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The session's resume token, once [`Client::hello`] or
    /// [`Client::resume`] has run.
    pub fn token(&self) -> Option<&str> {
        self.token.as_deref()
    }

    /// Sends `drain` and collects every response up to (excluding) the
    /// `drained` barrier — i.e. the terminal line of every job this session
    /// submitted so far, plus any earlier acks still queued.
    pub fn drain(&mut self) -> std::io::Result<Vec<Response>> {
        self.send(&Request::Drain)?;
        let mut responses = Vec::new();
        while let Some(response) = self.recv()? {
            if response == Response::Drained {
                return Ok(responses);
            }
            responses.push(response);
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "session closed before the drain barrier",
        ))
    }

    /// Sends `shutdown` and reads until the daemon closes the session.
    /// Returns the responses seen after the request (typically just `bye`).
    pub fn shutdown(&mut self) -> std::io::Result<Vec<Response>> {
        self.send(&Request::Shutdown)?;
        let mut responses = Vec::new();
        while let Some(response) = self.recv()? {
            responses.push(response);
        }
        Ok(responses)
    }
}
