//! Equivalence-sorting as a service.
//!
//! A long-lived daemon that accepts equivalence-sort jobs over a
//! line-delimited protocol (TCP or an in-process loopback pipe), multiplexes
//! any number of concurrent sessions onto the one shared
//! [`ecs_model::ThroughputPool`], and streams each session's results back as
//! they complete. The moving parts:
//!
//! * [`protocol`] — the wire grammar ([`Request`] / [`Response`] /
//!   [`JobSpec`]) and the single [`protocol::run_job`] /
//!   [`protocol::render_result`] pair both the daemon and any serial
//!   reference evaluate through, which is what makes daemon output
//!   byte-identical to a serial loop by construction.
//! * [`scheduler`] — weighted stride-scheduling fairness between tenants,
//!   bounded in-flight dispatch, per-tenant admission quotas
//!   ([`QuotaConfig`]: bounded queues, in-flight caps, pinned weights),
//!   cooperative cancellation, and fault isolation (a panicking or
//!   cancelled job releases its slot like any other).
//! * [`outbox`] — per-session result queues: non-blocking pushes for pool
//!   workers, reader-side admission gating for backpressure, and (for
//!   `hello` sessions) sequence-numbered retention so a dropped connection
//!   can `resume` and replay exactly its unacked suffix.
//! * [`server`] — the [`Daemon`] itself: transports, session threads, a
//!   resume registry keyed by stable session tokens, drain and shutdown
//!   lifecycle with a joined-threads guarantee.
//! * [`client`] — a blocking [`Client`] used by tests, the `ecs_load`
//!   generator, and scripts.
//!
//! # Example
//!
//! ```
//! use ecs_service::{Daemon, DaemonConfig, Request, Response};
//! use ecs_model::ThroughputPool;
//!
//! let config = DaemonConfig {
//!     pool: ThroughputPool::from_jobs(2),
//!     ..DaemonConfig::default()
//! };
//! let daemon = Daemon::loopback(config);
//! let mut client = daemon.connect();
//! client
//!     .send(&Request::parse("submit id=j0 dist=uniform:4 n=30 seed=7 algo=er-merge").unwrap())
//!     .unwrap();
//! let results = client.drain().unwrap();
//! assert!(matches!(results.last(), Some(Response::Result { .. })));
//! client.shutdown().unwrap();
//! daemon.join();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod outbox;
pub mod pipe;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use client::Client;
pub use outbox::Outbox;
pub use protocol::{
    split_seq, AlgoSpec, BackendSpec, DistSpec, JobSpec, Request, Response, TenantCounters,
};
pub use scheduler::{QuotaConfig, Scheduler, SessionHandle, TenantQuota};
pub use server::{Daemon, DaemonConfig, DaemonHandle};
