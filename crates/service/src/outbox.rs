//! The per-session result queue: backpressure, retention, and replay.
//!
//! Completions are produced by pool workers and consumed by the session's
//! writer thread. The two sides have opposite blocking rules:
//!
//! * [`Outbox::push`] **never blocks** — a pool worker finishing a job must
//!   not stall on a slow client, or one unread session would wedge the whole
//!   pool. The queue is unbounded for pushes.
//! * Admission is bounded instead: the session's *reader* thread calls
//!   [`Outbox::wait_below`] before parsing another `submit`, so a client
//!   that stops reading its results stops being read — its socket fills and
//!   the backpressure propagates to the client without costing the daemon a
//!   thread or a byte of queue growth beyond the jobs already admitted.
//!
//! Every line carries a **sequence number**, assigned at push in arrival
//! order starting from 1. Sessions opened with `hello` run the outbox in
//! *retained* mode: a delivered line stays buffered (and billed against the
//! [`Outbox::wait_below`] limit) until the client trims it with `ack N`, so
//! a dropped connection can [`Outbox::resume_from`] its last acknowledged
//! sequence number and replay exactly the unacked suffix — byte-identical
//! to an undropped run. Anonymous sessions keep the pre-resume behaviour:
//! delivery is the ack, nothing is retained, and no `seq=` prefix is
//! rendered.
//!
//! Writer threads attach with [`Outbox::attach_writer`] and identify
//! themselves by the returned epoch; a `resume` bumps the epoch, which both
//! rewinds the delivery cursor and evicts the dropped connection's writer
//! (its next [`Outbox::pop_at`] returns `None`), so two writers can never
//! split one session's stream.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct State {
    /// Buffered lines: in retained mode everything unacked (delivered or
    /// not); otherwise just the undelivered tail.
    lines: VecDeque<String>,
    /// Sequence number of `lines[0]`; the next push gets
    /// `front_seq + lines.len()`.
    front_seq: u64,
    /// Sequence number of the next line to deliver.
    cursor: u64,
    /// Whether delivered lines are retained until acked (resumable
    /// sessions).
    retain: bool,
    /// The writer attachment currently allowed to deliver lines.
    epoch: u64,
    closed: bool,
}

impl Default for State {
    fn default() -> Self {
        Self {
            lines: VecDeque::new(),
            front_seq: 1,
            cursor: 1,
            retain: false,
            epoch: 0,
            closed: false,
        }
    }
}

impl State {
    /// One past the highest sequence number assigned so far.
    fn next_seq(&self) -> u64 {
        self.front_seq + self.lines.len() as u64
    }

    /// Trims every line with `seq <= upto`, keeping the cursor in range.
    fn trim_through(&mut self, upto: u64) {
        while self.front_seq <= upto && self.lines.pop_front().is_some() {
            self.front_seq += 1;
        }
        self.cursor = self.cursor.max(self.front_seq);
    }
}

/// A multi-producer single-consumer line queue with non-blocking pushes, a
/// reader-side admission gate, and (for resumable sessions) acked retention
/// with replay.
#[derive(Debug, Default)]
pub struct Outbox {
    state: Mutex<State>,
    pushed: Condvar,
    popped: Condvar,
}

impl Outbox {
    /// An open, empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Switches the outbox to retained mode: delivered lines stay buffered
    /// (and count toward [`Outbox::wait_below`]) until [`Outbox::ack`]
    /// trims them, and delivery prefixes each line with its `seq=N` token.
    /// Call before the first push — sequence numbers are assigned either
    /// way, but already-delivered lines are not recovered retroactively.
    pub fn enable_retention(&self) {
        self.lock().retain = true;
    }

    /// Queues a line for the writer. Never blocks; silently drops the line
    /// if the outbox is already closed (the session is gone).
    pub fn push(&self, line: String) {
        let mut state = self.lock();
        if state.closed {
            return;
        }
        state.lines.push_back(line);
        self.pushed.notify_all();
    }

    /// Registers the calling writer as the session's current (only) one and
    /// returns its epoch for [`Outbox::pop_at`]. Any previously attached
    /// writer is evicted: its next pop returns `None`.
    pub fn attach_writer(&self) -> u64 {
        let mut state = self.lock();
        state.epoch += 1;
        self.pushed.notify_all();
        state.epoch
    }

    /// Detaches `epoch` if it is still the current writer (a no-op when a
    /// `resume` already attached a newer one), waking it out of a blocked
    /// pop.
    pub fn detach(&self, epoch: u64) {
        let mut state = self.lock();
        if state.epoch == epoch {
            state.epoch += 1;
            self.pushed.notify_all();
        }
    }

    /// Takes the next line, blocking until one arrives or the outbox closes.
    /// Returns `None` only when the outbox is closed **and** delivered, so a
    /// writer loop flushes every queued line before exiting. Direct
    /// consumers (tests, embedders) use this; connection writer threads use
    /// [`Outbox::pop_at`] so a resumed session can evict them.
    pub fn pop(&self) -> Option<String> {
        self.pop_inner(None)
    }

    /// [`Outbox::pop`] for an attached writer: additionally returns `None`
    /// as soon as `epoch` is no longer the current attachment.
    pub fn pop_at(&self, epoch: u64) -> Option<String> {
        self.pop_inner(Some(epoch))
    }

    fn pop_inner(&self, epoch: Option<u64>) -> Option<String> {
        let mut state = self.lock();
        loop {
            if epoch.is_some_and(|epoch| epoch != state.epoch) {
                return None;
            }
            if state.cursor < state.next_seq() {
                let seq = state.cursor;
                let at = (seq - state.front_seq) as usize;
                state.cursor += 1;
                let line = if state.retain {
                    format!("seq={seq} {}", state.lines[at])
                } else {
                    let line = state.lines.pop_front().expect("cursor < next_seq");
                    state.front_seq += 1;
                    self.popped.notify_all();
                    line
                };
                return Some(line);
            }
            if state.closed {
                return None;
            }
            state = self
                .pushed
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Trims every retained line with `seq <= upto` (the client has them)
    /// and releases [`Outbox::wait_below`] waiters accordingly.
    pub fn ack(&self, upto: u64) {
        let mut state = self.lock();
        state.trim_through(upto);
        self.popped.notify_all();
    }

    /// Rewinds delivery to `last_seq + 1` for a reconnected session and
    /// attaches the caller as the session's new writer (returning its epoch,
    /// and evicting any previous writer). `last_seq` doubles as an ack —
    /// everything at or below it is trimmed. Fails when `last_seq` predates
    /// the retained window (an earlier ack already trimmed it) or was never
    /// assigned.
    pub fn resume_from(&self, last_seq: u64) -> Result<u64, String> {
        let mut state = self.lock();
        if !state.retain {
            return Err("session does not retain results".to_string());
        }
        if last_seq + 1 < state.front_seq {
            return Err(format!(
                "seq {last_seq} already trimmed (acked through {})",
                state.front_seq - 1
            ));
        }
        if last_seq >= state.next_seq() {
            return Err(format!(
                "seq {last_seq} was never sent (next is {})",
                state.next_seq()
            ));
        }
        state.trim_through(last_seq);
        state.cursor = last_seq + 1;
        state.epoch += 1;
        self.pushed.notify_all();
        self.popped.notify_all();
        Ok(state.epoch)
    }

    /// Blocks the caller (the session reader, deciding whether to admit
    /// another `submit`) until fewer than `limit` lines are buffered or the
    /// outbox closes. In retained mode delivered-but-unacked lines still
    /// count, which is what bounds retention: a client that never acks
    /// stops being admitted.
    pub fn wait_below(&self, limit: usize) {
        let limit = limit.max(1);
        let mut state = self.lock();
        while !state.closed && state.lines.len() >= limit {
            state = self
                .popped
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Lines currently buffered — undelivered ones, plus (in retained mode)
    /// delivered-but-unacked ones (diagnostics and tests).
    pub fn len(&self) -> usize {
        self.lock().lines.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the outbox: pending lines still drain through [`Outbox::pop`],
    /// further pushes are dropped, and both waiting sides wake up.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.pushed.notify_all();
        self.popped.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lines_flow_in_order_and_drain_after_close() {
        let outbox = Outbox::new();
        outbox.push("a".into());
        outbox.push("b".into());
        outbox.close();
        outbox.push("dropped".into());
        assert_eq!(outbox.pop().as_deref(), Some("a"));
        assert_eq!(outbox.pop().as_deref(), Some("b"));
        assert_eq!(outbox.pop(), None, "closed and drained");
    }

    #[test]
    fn wait_below_blocks_until_the_consumer_catches_up() {
        let outbox = Arc::new(Outbox::new());
        outbox.push("1".into());
        outbox.push("2".into());
        let gate = Arc::clone(&outbox);
        let admitted = std::thread::spawn(move || {
            gate.wait_below(2);
            true
        });
        // The gate must still be blocked: two lines are queued.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!admitted.is_finished(), "gate opened below the limit");
        assert_eq!(outbox.pop().as_deref(), Some("1"));
        assert!(admitted.join().unwrap());
    }

    #[test]
    fn close_releases_a_blocked_gate() {
        let outbox = Arc::new(Outbox::new());
        outbox.push("only".into());
        let gate = Arc::clone(&outbox);
        let waiter = std::thread::spawn(move || gate.wait_below(1));
        outbox.close();
        waiter.join().unwrap();
    }

    #[test]
    fn retained_lines_carry_their_seq_and_survive_delivery() {
        let outbox = Outbox::new();
        outbox.enable_retention();
        outbox.push("alpha".into());
        outbox.push("beta".into());
        assert_eq!(outbox.pop().as_deref(), Some("seq=1 alpha"));
        assert_eq!(outbox.pop().as_deref(), Some("seq=2 beta"));
        assert_eq!(outbox.len(), 2, "delivered lines are retained until acked");
        outbox.ack(1);
        assert_eq!(outbox.len(), 1);
        outbox.ack(2);
        assert!(outbox.is_empty());
    }

    #[test]
    fn ack_releases_a_retained_admission_gate() {
        let outbox = Arc::new(Outbox::new());
        outbox.enable_retention();
        outbox.push("1".into());
        outbox.push("2".into());
        // Delivery alone must NOT open the gate: the lines are unacked.
        assert!(outbox.pop().is_some());
        assert!(outbox.pop().is_some());
        let gate = Arc::clone(&outbox);
        let admitted = std::thread::spawn(move || gate.wait_below(2));
        std::thread::sleep(Duration::from_millis(20));
        assert!(!admitted.is_finished(), "unacked lines must hold the gate");
        outbox.ack(1);
        admitted.join().unwrap();
    }

    #[test]
    fn resume_replays_exactly_the_unacked_suffix() {
        let outbox = Outbox::new();
        outbox.enable_retention();
        for line in ["a", "b", "c", "d"] {
            outbox.push(line.into());
        }
        let first = outbox.attach_writer();
        assert_eq!(outbox.pop_at(first).as_deref(), Some("seq=1 a"));
        assert_eq!(outbox.pop_at(first).as_deref(), Some("seq=2 b"));
        assert_eq!(outbox.pop_at(first).as_deref(), Some("seq=3 c"));
        // The client acked 2, then the connection dropped: resume rewinds
        // delivery to seq 3, trims 1..=2, and evicts the old writer.
        let second = outbox.resume_from(2).expect("resume in window");
        assert_eq!(outbox.pop_at(first), None, "old writer is evicted");
        assert_eq!(outbox.pop_at(second).as_deref(), Some("seq=3 c"));
        assert_eq!(outbox.pop_at(second).as_deref(), Some("seq=4 d"));
        // Resuming from an already-trimmed seq or the future both fail.
        assert!(outbox.resume_from(0).is_err(), "seq 1..=2 were trimmed");
        assert!(outbox.resume_from(9).is_err(), "seq 9 was never sent");
        // Resuming from the newest seq replays nothing but succeeds.
        let third = outbox.resume_from(4).expect("resume at the tip");
        outbox.close();
        assert_eq!(outbox.pop_at(third), None);
    }

    #[test]
    fn detach_is_a_noop_once_a_newer_writer_attached() {
        let outbox = Arc::new(Outbox::new());
        outbox.enable_retention();
        let first = outbox.attach_writer();
        let parked = {
            let outbox = Arc::clone(&outbox);
            std::thread::spawn(move || outbox.pop_at(first))
        };
        let second = outbox.resume_from(0).expect("resume from the start");
        assert_eq!(parked.join().unwrap(), None, "resume evicts the writer");
        // The dropped connection's epilogue runs late: it must not evict the
        // resumed writer.
        outbox.detach(first);
        outbox.push("still-delivered".into());
        assert_eq!(
            outbox.pop_at(second).as_deref(),
            Some("seq=1 still-delivered")
        );
    }

    #[test]
    fn an_anonymous_outbox_rejects_resume() {
        let outbox = Outbox::new();
        outbox.push("x".into());
        assert!(outbox.resume_from(0).is_err());
    }
}
