//! The per-session result queue and its backpressure contract.
//!
//! Completions are produced by pool workers and consumed by the session's
//! writer thread. The two sides have opposite blocking rules:
//!
//! * [`Outbox::push`] **never blocks** — a pool worker finishing a job must
//!   not stall on a slow client, or one unread session would wedge the whole
//!   pool. The queue is unbounded for pushes.
//! * Admission is bounded instead: the session's *reader* thread calls
//!   [`Outbox::wait_below`] before parsing another `submit`, so a client
//!   that stops reading its results stops being read — its socket fills and
//!   the backpressure propagates to the client without costing the daemon a
//!   thread or a byte of queue growth beyond the jobs already admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug, Default)]
struct State {
    lines: VecDeque<String>,
    closed: bool,
}

/// A multi-producer single-consumer line queue with non-blocking pushes and
/// a reader-side admission gate.
#[derive(Debug, Default)]
pub struct Outbox {
    state: Mutex<State>,
    pushed: Condvar,
    popped: Condvar,
}

impl Outbox {
    /// An open, empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a line for the writer. Never blocks; silently drops the line
    /// if the outbox is already closed (the session is gone).
    pub fn push(&self, line: String) {
        let mut state = self.lock();
        if state.closed {
            return;
        }
        state.lines.push_back(line);
        self.pushed.notify_all();
    }

    /// Takes the next line, blocking until one arrives or the outbox closes.
    /// Returns `None` only when the outbox is closed **and** drained, so a
    /// writer loop flushes every queued line before exiting.
    pub fn pop(&self) -> Option<String> {
        let mut state = self.lock();
        loop {
            if let Some(line) = state.lines.pop_front() {
                self.popped.notify_all();
                return Some(line);
            }
            if state.closed {
                return None;
            }
            state = self
                .pushed
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks the caller (the session reader, deciding whether to admit
    /// another `submit`) until fewer than `limit` lines are queued or the
    /// outbox closes.
    pub fn wait_below(&self, limit: usize) {
        let limit = limit.max(1);
        let mut state = self.lock();
        while !state.closed && state.lines.len() >= limit {
            state = self
                .popped
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Lines currently queued (diagnostics and tests).
    pub fn len(&self) -> usize {
        self.lock().lines.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the outbox: pending lines still drain through [`Outbox::pop`],
    /// further pushes are dropped, and both waiting sides wake up.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        self.pushed.notify_all();
        self.popped.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn lines_flow_in_order_and_drain_after_close() {
        let outbox = Outbox::new();
        outbox.push("a".into());
        outbox.push("b".into());
        outbox.close();
        outbox.push("dropped".into());
        assert_eq!(outbox.pop().as_deref(), Some("a"));
        assert_eq!(outbox.pop().as_deref(), Some("b"));
        assert_eq!(outbox.pop(), None, "closed and drained");
    }

    #[test]
    fn wait_below_blocks_until_the_consumer_catches_up() {
        let outbox = Arc::new(Outbox::new());
        outbox.push("1".into());
        outbox.push("2".into());
        let gate = Arc::clone(&outbox);
        let admitted = std::thread::spawn(move || {
            gate.wait_below(2);
            true
        });
        // The gate must still be blocked: two lines are queued.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!admitted.is_finished(), "gate opened below the limit");
        assert_eq!(outbox.pop().as_deref(), Some("1"));
        assert!(admitted.join().unwrap());
    }

    #[test]
    fn close_releases_a_blocked_gate() {
        let outbox = Arc::new(Outbox::new());
        outbox.push("only".into());
        let gate = Arc::clone(&outbox);
        let waiter = std::thread::spawn(move || gate.wait_below(1));
        outbox.close();
        waiter.join().unwrap();
    }
}
