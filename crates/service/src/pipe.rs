//! An in-process byte pipe: the loopback transport's stand-in for a socket.
//!
//! [`pipe`] returns a connected writer/reader pair implementing
//! [`std::io::Write`] / [`std::io::Read`] over a shared buffer, so the
//! daemon's session code runs unchanged over loopback and TCP. Dropping
//! *either* half closes the pipe — the reader sees EOF after draining, and
//! writes into a dropped reader error like writes into a dead socket, so a
//! vanished loopback client cannot leave a session writer filling an
//! unbounded buffer forever. A [`PipeCloser`] force-closes the read side
//! from a third thread, which is how daemon shutdown unblocks a session
//! reader parked on an idle client.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug, Default)]
struct Shared {
    buf: Mutex<(VecDeque<u8>, bool)>,
    filled: Condvar,
}

impl Shared {
    fn close(&self) {
        self.buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .1 = true;
        self.filled.notify_all();
    }
}

/// The write half; dropping it closes the pipe.
#[derive(Debug)]
pub struct PipeWriter(Arc<Shared>);

/// The read half; dropping it closes the pipe (writes then error, exactly
/// like writing to a socket whose peer disconnected).
#[derive(Debug)]
pub struct PipeReader(Arc<Shared>);

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// A detached handle that force-closes the pipe's read side.
#[derive(Debug, Clone)]
pub struct PipeCloser(Arc<Shared>);

impl PipeCloser {
    /// Closes the pipe: blocked readers wake with EOF (after draining any
    /// buffered bytes), subsequent writes error.
    pub fn close(&self) {
        self.0.close();
    }
}

/// A connected in-process byte pipe.
pub fn pipe() -> (PipeWriter, PipeReader) {
    let shared = Arc::new(Shared::default());
    (PipeWriter(Arc::clone(&shared)), PipeReader(shared))
}

impl PipeReader {
    /// A handle that can force-close this pipe from another thread.
    pub fn closer(&self) -> PipeCloser {
        PipeCloser(Arc::clone(&self.0))
    }
}

impl Write for PipeWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        let mut state = self
            .0
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if state.1 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe closed",
            ));
        }
        state.0.extend(bytes);
        self.0.filled.notify_all();
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.close();
    }
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let mut state = self
            .0
            .buf
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if !state.0.is_empty() {
                let take = out.len().min(state.0.len());
                for slot in out.iter_mut().take(take) {
                    *slot = state.0.pop_front().expect("len checked");
                }
                return Ok(take);
            }
            if state.1 {
                return Ok(0);
            }
            state = self
                .0
                .filled
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn lines_cross_the_pipe_and_eof_follows_the_writer() {
        let (mut tx, rx) = pipe();
        writeln!(tx, "hello").unwrap();
        writeln!(tx, "world").unwrap();
        drop(tx);
        let mut lines = BufReader::new(rx).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "hello");
        assert_eq!(lines.next().unwrap().unwrap(), "world");
        assert!(lines.next().is_none(), "EOF after the writer drops");
    }

    #[test]
    fn a_closer_unblocks_a_parked_reader() {
        let (_tx, rx) = pipe();
        let closer = rx.closer();
        let reader = std::thread::spawn(move || {
            let mut line = String::new();
            BufReader::new(rx).read_line(&mut line).unwrap()
        });
        closer.close();
        assert_eq!(reader.join().unwrap(), 0, "forced close reads as EOF");
    }

    #[test]
    fn writes_after_close_error() {
        let (mut tx, rx) = pipe();
        rx.closer().close();
        assert!(writeln!(tx, "late").is_err());
    }

    #[test]
    fn dropping_the_reader_breaks_subsequent_writes() {
        // A vanished client must look like a dead socket to the session
        // writer, not like an infinitely patient one.
        let (mut tx, rx) = pipe();
        writeln!(tx, "delivered-nowhere").unwrap();
        drop(rx);
        assert!(
            writeln!(tx, "into the void").is_err(),
            "writes into a dropped reader must error"
        );
    }
}
