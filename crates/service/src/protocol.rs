//! The line-delimited wire protocol and the one job-evaluation function.
//!
//! Every request and response is a single `\n`-terminated ASCII line of
//! space-separated tokens; valued tokens are spelled `key=value` and carry no
//! spaces. The grammar is deliberately tiny — it has to ride over a raw TCP
//! stream and an in-process loopback pipe alike, and diff byte-for-byte
//! against a serial reference run:
//!
//! ```text
//! hello
//! submit id=j0 tenant=a weight=2 dist=uniform:6 n=80 seed=7 algo=er-merge backend=seq
//! cancel id=j0
//! ack seq=5
//! resume token=sess-00000001 last_seq=5
//! status
//! drain
//! shutdown
//! ```
//!
//! Sessions opened with `hello` receive a stable token and a
//! sequence-numbered response stream (`seq=N ` prefixed, split off with
//! [`split_seq`]); `ack seq=N` trims the daemon's retained copy and
//! `resume <token> <last_seq>` re-attaches a dropped connection, replaying
//! exactly the unacked suffix.
//!
//! Determinism is by construction: the daemon and any serial reference both
//! evaluate a [`JobSpec`] through the same [`run_job`] and render it through
//! the same [`render_result`], so a result line depends only on the spec —
//! never on scheduling, session interleaving, or transport.

use ecs_core::{
    CrCompoundMerge, EcsAlgorithm, EcsRun, ErConstantRound, ErMergeSort, NaiveAllPairs,
    RepresentativeScan, RoundRobin,
};
use ecs_distributions::class_distribution::AnyDistribution;
use ecs_model::{
    BatchingOracle, CalibrationLog, CancellableOracle, CancellationToken, EquivalenceOracle,
    ExecutionBackend, Instance, InstanceOracle, TuningDecision,
};
use ecs_rng::{SeedableEcsRng, Xoshiro256StarStar};
use std::fmt;
use std::time::Duration;

/// The hidden-partition family a job's instance is drawn from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistSpec {
    /// `uniform:K` — class of each element uniform over `K` classes.
    Uniform(usize),
    /// `geometric:P` — geometric class-size profile with parameter `P`.
    Geometric(f64),
    /// `poisson:L` — Poisson class profile with mean `L`.
    Poisson(f64),
    /// `zeta:S` — power-law class profile with exponent `S`.
    Zeta(f64),
    /// `balanced:K` — exactly `K` classes of near-equal size.
    Balanced(usize),
}

impl DistSpec {
    /// Parses `uniform:6`, `geometric:0.25`, `poisson:4`, `zeta:2.5`,
    /// `balanced:8`.
    pub fn parse(text: &str) -> Result<Self, String> {
        let (kind, param) = text
            .split_once(':')
            .ok_or_else(|| format!("distribution `{text}` is missing its `:param`"))?;
        let bad = |what: &str| format!("distribution `{text}` has an unparsable {what}");
        match kind {
            "uniform" => Ok(Self::Uniform(
                param.parse().map_err(|_| bad("class count"))?,
            )),
            "geometric" => Ok(Self::Geometric(param.parse().map_err(|_| bad("p"))?)),
            "poisson" => Ok(Self::Poisson(param.parse().map_err(|_| bad("lambda"))?)),
            "zeta" => Ok(Self::Zeta(param.parse().map_err(|_| bad("s"))?)),
            "balanced" => Ok(Self::Balanced(
                param.parse().map_err(|_| bad("class count"))?,
            )),
            other => Err(format!("unknown distribution `{other}`")),
        }
    }
}

impl fmt::Display for DistSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Uniform(k) => write!(f, "uniform:{k}"),
            Self::Geometric(p) => write!(f, "geometric:{p}"),
            Self::Poisson(lambda) => write!(f, "poisson:{lambda}"),
            Self::Zeta(s) => write!(f, "zeta:{s}"),
            Self::Balanced(k) => write!(f, "balanced:{k}"),
        }
    }
}

/// Which of the six reproduction algorithms sorts the job's instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoSpec {
    /// `naive` — [`NaiveAllPairs`].
    Naive,
    /// `round-robin` — [`RoundRobin`].
    RoundRobin,
    /// `representative-scan` — [`RepresentativeScan`].
    RepresentativeScan,
    /// `er-merge` — [`ErMergeSort`].
    ErMerge,
    /// `er-constant` — [`ErConstantRound::adaptive`] seeded by the job seed.
    ErConstant,
    /// `cr-compound` — [`CrCompoundMerge`] with `k` from the ground truth.
    CrCompound,
}

impl AlgoSpec {
    /// All six algorithms, in the canonical reporting order.
    pub const ALL: [Self; 6] = [
        Self::Naive,
        Self::RoundRobin,
        Self::RepresentativeScan,
        Self::ErMerge,
        Self::ErConstant,
        Self::CrCompound,
    ];

    /// Parses the protocol name (`naive`, `round-robin`, …).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "naive" => Ok(Self::Naive),
            "round-robin" => Ok(Self::RoundRobin),
            "representative-scan" => Ok(Self::RepresentativeScan),
            "er-merge" => Ok(Self::ErMerge),
            "er-constant" => Ok(Self::ErConstant),
            "cr-compound" => Ok(Self::CrCompound),
            other => Err(format!("unknown algorithm `{other}`")),
        }
    }

    /// The protocol name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Naive => "naive",
            Self::RoundRobin => "round-robin",
            Self::RepresentativeScan => "representative-scan",
            Self::ErMerge => "er-merge",
            Self::ErConstant => "er-constant",
            Self::CrCompound => "cr-compound",
        }
    }
}

impl fmt::Display for AlgoSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Where a job's comparison rounds physically run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpec {
    /// `seq` — everything on the job's own worker.
    Seq,
    /// `threaded:N` — rounds sharded across `N` pool workers.
    Threaded(usize),
    /// `batched:W` — rounds submitted as `same_batch` waves of `W`.
    Batched(usize),
    /// `coalesced:W` — sequential evaluation through a [`BatchingOracle`]
    /// with wave budget `W` and the daemon's `--linger-us` window, so a
    /// parked caller helps drain other sessions' jobs while its wave forms.
    Coalesced(usize),
    /// `auto` — the calibration layer lowers every round to concrete
    /// threaded / batched parameters ([`ExecutionBackend::Auto`]); the
    /// recorded per-job decision trace rides back in
    /// [`JobRun::calibration`]. This is the daemon's default since the
    /// self-tuning PR — results are backend-independent by construction, so
    /// the switch is observationally invisible to clients.
    Auto,
}

impl BackendSpec {
    /// Parses `seq`, `auto`, `threaded:4`, `batched:256`, `coalesced:8`.
    pub fn parse(text: &str) -> Result<Self, String> {
        if text == "seq" {
            return Ok(Self::Seq);
        }
        if text == "auto" {
            return Ok(Self::Auto);
        }
        let (kind, param) = text
            .split_once(':')
            .ok_or_else(|| format!("unknown backend `{text}`"))?;
        let count: usize = param
            .parse()
            .map_err(|_| format!("backend `{text}` has an unparsable count"))?;
        match kind {
            "threaded" => Ok(Self::Threaded(count)),
            "batched" => Ok(Self::Batched(count)),
            "coalesced" => Ok(Self::Coalesced(count)),
            other => Err(format!("unknown backend `{other}`")),
        }
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Seq => write!(f, "seq"),
            Self::Threaded(n) => write!(f, "threaded:{n}"),
            Self::Batched(w) => write!(f, "batched:{w}"),
            Self::Coalesced(w) => write!(f, "coalesced:{w}"),
            Self::Auto => write!(f, "auto"),
        }
    }
}

/// One equivalence-sort job: everything needed to reconstruct its instance
/// and evaluation bit-for-bit, with the session-scheduling fields
/// (`tenant`, `weight`) that never influence the result.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Client-chosen identifier, unique within the submitting session.
    pub id: String,
    /// Fairness bucket this job bills to (`default` when omitted).
    pub tenant: String,
    /// Stride-scheduling weight of the tenant (`1` when omitted; floor 1).
    pub weight: u32,
    /// The instance distribution.
    pub dist: DistSpec,
    /// Number of elements.
    pub n: usize,
    /// Seed deriving the instance (and any algorithm randomness).
    pub seed: u64,
    /// The sorting algorithm.
    pub algo: AlgoSpec,
    /// The execution backend.
    pub backend: BackendSpec,
}

impl JobSpec {
    /// Renders the spec back into `submit` key=value tokens (without the
    /// leading verb).
    fn render_fields(&self) -> String {
        format!(
            "id={} tenant={} weight={} dist={} n={} seed={} algo={} backend={}",
            self.id,
            self.tenant,
            self.weight,
            self.dist,
            self.n,
            self.seed,
            self.algo,
            self.backend
        )
    }
}

/// A client-to-daemon request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a resumable session: the daemon answers `hello token=<t>` and
    /// sequence-numbers every response line from then on. Must be the first
    /// request of its connection.
    Hello,
    /// Re-attach a dropped resumable session, replaying every retained
    /// response after `last_seq`. Must be the first request of its
    /// connection.
    Resume {
        /// The token the `hello` response carried.
        token: String,
        /// The highest `seq=` this client has safely received (doubles as
        /// an ack: everything at or below it is trimmed).
        last_seq: u64,
    },
    /// Acknowledge receipt of every response line up to and including
    /// `seq`, letting the daemon trim its retained copy (resumable sessions
    /// only).
    Ack {
        /// The highest received sequence number.
        seq: u64,
    },
    /// Enqueue a job.
    Submit(JobSpec),
    /// Cancel a queued or in-flight job of this session.
    Cancel {
        /// The job to cancel.
        id: String,
    },
    /// Ask for daemon-wide queue counters.
    Status,
    /// Barrier: respond `drained` once every job this session submitted has
    /// completed (all its result lines are already queued ahead).
    Drain,
    /// Stop the daemon gracefully: refuse new submits, finish everything
    /// outstanding, then close every session and the listener.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let line = line.trim();
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or_else(|| "empty request".to_string())?;
        let fields = || -> Result<Vec<(&str, &str)>, String> {
            line.split_ascii_whitespace()
                .skip(1)
                .map(|token| {
                    token
                        .split_once('=')
                        .ok_or_else(|| format!("token `{token}` is not key=value"))
                })
                .collect()
        };
        let lookup = |fields: &[(&str, &str)], key: &str| -> Option<String> {
            fields
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, v)| v.to_string())
        };
        match verb {
            "submit" => {
                let fields = fields()?;
                let required = |key: &str| {
                    lookup(&fields, key).ok_or_else(|| format!("submit is missing `{key}=`"))
                };
                let spec = JobSpec {
                    id: required("id")?,
                    tenant: lookup(&fields, "tenant").unwrap_or_else(|| "default".to_string()),
                    weight: lookup(&fields, "weight")
                        .map(|w| w.parse().map_err(|_| format!("unparsable weight `{w}`")))
                        .transpose()?
                        .unwrap_or(1)
                        .max(1),
                    dist: DistSpec::parse(&required("dist")?)?,
                    n: required("n")?
                        .parse()
                        .map_err(|_| "unparsable n".to_string())?,
                    seed: required("seed")?
                        .parse()
                        .map_err(|_| "unparsable seed".to_string())?,
                    algo: AlgoSpec::parse(&required("algo")?)?,
                    // The self-tuning backend is the daemon default; a
                    // client that wants a fixed lowering says so explicitly.
                    backend: match lookup(&fields, "backend") {
                        Some(text) => BackendSpec::parse(&text)?,
                        None => BackendSpec::Auto,
                    },
                };
                Ok(Self::Submit(spec))
            }
            "cancel" => {
                let fields = fields()?;
                let id =
                    lookup(&fields, "id").ok_or_else(|| "cancel is missing `id=`".to_string())?;
                Ok(Self::Cancel { id })
            }
            "hello" => Ok(Self::Hello),
            "resume" => {
                let fields = fields()?;
                let token = lookup(&fields, "token")
                    .ok_or_else(|| "resume is missing `token=`".to_string())?;
                let last_seq = lookup(&fields, "last_seq")
                    .ok_or_else(|| "resume is missing `last_seq=`".to_string())?
                    .parse()
                    .map_err(|_| "unparsable last_seq".to_string())?;
                Ok(Self::Resume { token, last_seq })
            }
            "ack" => {
                let fields = fields()?;
                let seq = lookup(&fields, "seq")
                    .ok_or_else(|| "ack is missing `seq=`".to_string())?
                    .parse()
                    .map_err(|_| "unparsable seq".to_string())?;
                Ok(Self::Ack { seq })
            }
            "status" => Ok(Self::Status),
            "drain" => Ok(Self::Drain),
            "shutdown" => Ok(Self::Shutdown),
            other => Err(format!("unknown request `{other}`")),
        }
    }

    /// Renders the request as its wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Self::Hello => "hello".to_string(),
            Self::Resume { token, last_seq } => {
                format!("resume token={token} last_seq={last_seq}")
            }
            Self::Ack { seq } => format!("ack seq={seq}"),
            Self::Submit(spec) => format!("submit {}", spec.render_fields()),
            Self::Cancel { id } => format!("cancel id={id}"),
            Self::Status => "status".to_string(),
            Self::Drain => "drain".to_string(),
            Self::Shutdown => "shutdown".to_string(),
        }
    }
}

/// Per-tenant scheduler counters carried by [`Response::Status`], rendered
/// on the wire as
/// `tenants=name:queued:completed:rejected:max_queued:max_inflight,...`
/// (names have `:`, `,`, and `=` flattened to `_`, mirroring how `failed`
/// flattens whitespace; unlimited quota components render as `-`). Entries
/// from daemons predating the quota fields carry only the first three
/// components and parse with the quota fields degraded to "not reported";
/// malformed entries are skipped, never failing the whole status line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantCounters {
    /// The fairness bucket (as billed by `submit tenant=`).
    pub name: String,
    /// This tenant's jobs still waiting for a fairness slot.
    pub queued: usize,
    /// This tenant's jobs finished — result, failure, or cancellation —
    /// since the daemon started.
    pub completed: u64,
    /// Submits this tenant had rejected over quota since the daemon
    /// started (`0` on lines from daemons predating quotas).
    pub rejected: u64,
    /// The tenant's effective queue-depth quota (`None` = unlimited, or a
    /// pre-quota daemon line).
    pub max_queued: Option<usize>,
    /// The tenant's effective in-flight quota (`None` = unlimited, or a
    /// pre-quota daemon line).
    pub max_inflight: Option<usize>,
}

impl TenantCounters {
    /// Counters with no rejections and unlimited quotas — what a pre-quota
    /// daemon's `name:queued:completed` entry means.
    pub fn basic(name: &str, queued: usize, completed: u64) -> Self {
        Self {
            name: name.to_string(),
            queued,
            completed,
            rejected: 0,
            max_queued: None,
            max_inflight: None,
        }
    }

    /// Parses one packed `tenants=` entry (3-part legacy or 6-part quota
    /// form); `None` means the entry is malformed and should be skipped.
    fn parse_entry(entry: &str) -> Option<Self> {
        let quota = |text: &str| -> Option<Option<usize>> {
            if text == "-" {
                Some(None)
            } else {
                text.parse().ok().map(Some)
            }
        };
        let mut parts = entry.split(':');
        let name = parts.next()?;
        let counters = Self {
            name: name.to_string(),
            queued: parts.next()?.parse().ok()?,
            completed: parts.next()?.parse().ok()?,
            rejected: match parts.next() {
                None => 0,
                Some(text) => text.parse().ok()?,
            },
            max_queued: match parts.next() {
                None => None,
                Some(text) => quota(text)?,
            },
            max_inflight: match parts.next() {
                None => None,
                Some(text) => quota(text)?,
            },
        };
        Some(counters)
    }

    /// Renders the packed `tenants=` entry.
    fn render_entry(&self) -> String {
        let quota = |limit: Option<usize>| match limit {
            Some(limit) => limit.to_string(),
            None => "-".to_string(),
        };
        format!(
            "{}:{}:{}:{}:{}:{}",
            flatten_name(&self.name),
            self.queued,
            self.completed,
            self.rejected,
            quota(self.max_queued),
            quota(self.max_inflight)
        )
    }
}

/// Per-tenant completed-job latency histogram carried by
/// [`Response::Status`], rendered on the wire as
/// `latency_us=name:lo.hi.count;lo.hi.count,...` — the non-empty
/// power-of-two microsecond buckets of an
/// [`ecs_model::RoundSizeHistogram`]-shaped histogram, exactly as
/// [`ecs_model::RoundSizeHistogram::nonzero_buckets`] reports them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantLatency {
    /// The fairness bucket (flattened like [`TenantCounters::name`]).
    pub name: String,
    /// `(smallest µs in bucket, largest µs in bucket, jobs)` triples,
    /// smallest first.
    pub buckets: Vec<(usize, usize, u64)>,
}

/// Flattens a tenant name for the wire: `:`, `,`, and `=` become `_`
/// (mirroring how `failed` flattens whitespace), so packed per-tenant fields
/// stay splittable.
fn flatten_name(name: &str) -> String {
    name.chars()
        .map(|c| if matches!(c, ':' | ',' | '=') { '_' } else { c })
        .collect()
}

/// A daemon-to-client response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The session is resumable; `token` re-attaches it after a drop.
    Hello {
        /// The stable session token for `resume`.
        token: String,
    },
    /// The submit was queued.
    Accepted {
        /// The submitted job.
        id: String,
    },
    /// The submit was refused by admission control (over quota); the job
    /// was never enqueued and produces no terminal line.
    Rejected {
        /// The rejected job.
        id: String,
        /// Why admission refused it (whitespace flattened to `_`).
        reason: String,
    },
    /// A completed job's rendered outcome (see [`render_result`]).
    Result {
        /// The completed job.
        id: String,
        /// The full result line, exactly as rendered.
        line: String,
    },
    /// The job was cancelled (while queued, or in flight via its token).
    Cancelled {
        /// The cancelled job.
        id: String,
    },
    /// An in-flight cancel was requested; the `cancelled` line follows when
    /// the job actually unwinds.
    Cancelling {
        /// The job being cancelled.
        id: String,
    },
    /// The job panicked.
    Failed {
        /// The failed job.
        id: String,
        /// The panic message (whitespace flattened to `_`).
        message: String,
    },
    /// Daemon-wide queue counters.
    Status {
        /// Jobs waiting for a fairness slot.
        queued: usize,
        /// Jobs currently running on the pool.
        inflight: usize,
        /// Jobs finished since the daemon started.
        completed: u64,
        /// Whether the daemon is refusing new submits.
        draining: bool,
        /// Per-tenant counters, in tenant-name order. Absent from older
        /// daemons' lines, so parsing tolerates a missing field.
        tenants: Vec<TenantCounters>,
        /// Per-tenant completed-job latency histograms, in tenant-name
        /// order. Absent from older daemons' lines (parsed as empty), and
        /// malformed entries are skipped rather than failing the line.
        latency: Vec<TenantLatency>,
        /// Daemon-wide completed-job rate since startup, in millijobs per
        /// second (integer, so the line stays ASCII-token friendly). Absent
        /// from older daemons' lines.
        rate_mjps: Option<u64>,
        /// The most recently lowered `auto` [`TuningDecision`] per tenant,
        /// in tenant-name order — what "currently tuned to" means for a
        /// tenant's jobs. Tenants that never ran an `auto` job are absent,
        /// as is the whole field on older daemons.
        tuning: Vec<(String, TuningDecision)>,
    },
    /// Every job this session submitted has completed.
    Drained,
    /// The daemon is closing this session.
    Bye,
    /// A request was rejected; the job (if any) was not enqueued.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Response {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let line = line.trim();
        let mut tokens = line.split_ascii_whitespace();
        let verb = tokens.next().ok_or_else(|| "empty response".to_string())?;
        let field = |key: &str| -> Result<String, String> {
            line.split_ascii_whitespace()
                .skip(1)
                .find_map(|token| token.strip_prefix(&format!("{key}=")))
                .map(str::to_string)
                .ok_or_else(|| format!("`{verb}` response is missing `{key}=`"))
        };
        match verb {
            "hello" => Ok(Self::Hello {
                token: field("token")?,
            }),
            "accepted" => Ok(Self::Accepted { id: field("id")? }),
            "rejected" => Ok(Self::Rejected {
                id: field("id")?,
                reason: field("reason").unwrap_or_default(),
            }),
            "result" => Ok(Self::Result {
                id: field("id")?,
                line: line.to_string(),
            }),
            "cancelled" => Ok(Self::Cancelled { id: field("id")? }),
            "cancelling" => Ok(Self::Cancelling { id: field("id")? }),
            "failed" => Ok(Self::Failed {
                id: field("id")?,
                message: field("message").unwrap_or_default(),
            }),
            "status" => Ok(Self::Status {
                queued: field("queued")?.parse().map_err(|_| "bad queued")?,
                inflight: field("inflight")?.parse().map_err(|_| "bad inflight")?,
                completed: field("completed")?.parse().map_err(|_| "bad completed")?,
                draining: field("draining")?.parse().map_err(|_| "bad draining")?,
                // Older daemons do not emit the field; treat absence as
                // empty. A malformed or truncated entry is skipped — one bad
                // tenant must never abort the whole status line.
                tenants: match field("tenants") {
                    Ok(packed) => packed
                        .split(',')
                        .filter(|entry| !entry.is_empty())
                        .filter_map(TenantCounters::parse_entry)
                        .collect(),
                    Err(_) => Vec::new(),
                },
                // The three self-tuning fields are newer still; absence *and*
                // malformed entries both degrade to "not reported" so a new
                // client keeps working against any daemon vintage.
                latency: match field("latency_us") {
                    Ok(packed) => packed
                        .split(',')
                        .filter_map(|entry| {
                            let (name, buckets) = entry.split_once(':')?;
                            let buckets = buckets
                                .split(';')
                                .filter_map(|triple| {
                                    let mut parts = triple.split('.');
                                    let lo = parts.next()?.parse().ok()?;
                                    let hi = parts.next()?.parse().ok()?;
                                    let count = parts.next()?.parse().ok()?;
                                    Some((lo, hi, count))
                                })
                                .collect();
                            Some(TenantLatency {
                                name: name.to_string(),
                                buckets,
                            })
                        })
                        .collect(),
                    Err(_) => Vec::new(),
                },
                rate_mjps: field("rate_mjps").ok().and_then(|t| t.parse().ok()),
                tuning: match field("tuning") {
                    Ok(packed) => packed
                        .split(',')
                        .filter_map(|entry| {
                            let (name, decision) = entry.split_once(':')?;
                            Some((name.to_string(), TuningDecision::parse(decision)?))
                        })
                        .collect(),
                    Err(_) => Vec::new(),
                },
            }),
            "drained" => Ok(Self::Drained),
            "bye" => Ok(Self::Bye),
            "error" => Ok(Self::Error {
                message: line.strip_prefix("error").unwrap_or("").trim().to_string(),
            }),
            other => Err(format!("unknown response `{other}`")),
        }
    }

    /// Renders the response as its wire line (no trailing newline).
    pub fn render(&self) -> String {
        match self {
            Self::Hello { token } => format!("hello token={token}"),
            Self::Accepted { id } => format!("accepted id={id}"),
            Self::Rejected { id, reason } => {
                format!(
                    "rejected id={id} reason={}",
                    reason.replace(char::is_whitespace, "_")
                )
            }
            Self::Result { line, .. } => line.clone(),
            Self::Cancelled { id } => format!("cancelled id={id}"),
            Self::Cancelling { id } => format!("cancelling id={id}"),
            Self::Failed { id, message } => {
                format!(
                    "failed id={id} message={}",
                    message.replace(char::is_whitespace, "_")
                )
            }
            Self::Status {
                queued,
                inflight,
                completed,
                draining,
                tenants,
                latency,
                rate_mjps,
                tuning,
            } => {
                let mut line = format!(
                    "status queued={queued} inflight={inflight} completed={completed} draining={draining}"
                );
                if !tenants.is_empty() {
                    let packed: Vec<String> =
                        tenants.iter().map(TenantCounters::render_entry).collect();
                    line.push_str(&format!(" tenants={}", packed.join(",")));
                }
                if !latency.is_empty() {
                    let packed: Vec<String> = latency
                        .iter()
                        .map(|t| {
                            let buckets: Vec<String> = t
                                .buckets
                                .iter()
                                .map(|(lo, hi, count)| format!("{lo}.{hi}.{count}"))
                                .collect();
                            format!("{}:{}", flatten_name(&t.name), buckets.join(";"))
                        })
                        .collect();
                    line.push_str(&format!(" latency_us={}", packed.join(",")));
                }
                if let Some(rate) = rate_mjps {
                    line.push_str(&format!(" rate_mjps={rate}"));
                }
                if !tuning.is_empty() {
                    let packed: Vec<String> = tuning
                        .iter()
                        .map(|(name, decision)| {
                            format!("{}:{}", flatten_name(name), decision.render())
                        })
                        .collect();
                    line.push_str(&format!(" tuning={}", packed.join(",")));
                }
                line
            }
            Self::Drained => "drained".to_string(),
            Self::Bye => "bye".to_string(),
            Self::Error { message } => format!("error {message}"),
        }
    }
}

/// Splits a resumable session's `seq=N ` prefix off a response line,
/// returning `(Some(N), payload)` — or `(None, line)` unchanged for
/// anonymous-session lines, which carry no sequence numbers. A leading
/// `seq=` token with an unparsable number is left in place (the line is
/// then malformed and surfaces as a parse error downstream).
pub fn split_seq(line: &str) -> (Option<u64>, &str) {
    if let Some(rest) = line.trim_start().strip_prefix("seq=") {
        if let Some((number, payload)) = rest.split_once(' ') {
            if let Ok(seq) = number.parse() {
                return (Some(seq), payload);
            }
        }
    }
    (None, line)
}

/// Evaluates one job exactly as a serial reference loop would.
///
/// The partition and [`ecs_model::Metrics`] depend only on the spec and the
/// linger-independent model invariants — every backend (and the optional
/// cancellation wrapper, while untripped) is observationally transparent, so
/// the daemon and a serial caller produce bit-identical [`EcsRun`]s. Panics
/// with [`ecs_model::Cancelled`] if `token` trips mid-run.
pub fn run_job(spec: &JobSpec, linger: Duration, token: Option<&CancellationToken>) -> EcsRun {
    run_job_traced(spec, linger, token).run
}

/// A completed job evaluation: the run itself, plus — for
/// [`BackendSpec::Auto`] jobs — the calibration decision trace the daemon
/// persists and reports.
#[derive(Debug, Clone)]
pub struct JobRun {
    /// The partition and metrics, bit-identical across every backend.
    pub run: EcsRun,
    /// The recorded [`CalibrationLog`] of an `auto` job (`None` for fixed
    /// backends). Replaying it through
    /// [`ExecutionBackend::auto_replay`] reproduces the run's exact
    /// threshold / wave schedule.
    pub calibration: Option<CalibrationLog>,
}

/// [`run_job`] with the calibration trace kept: what the daemon's dispatch
/// path calls, so an `auto` job's lowered parameters can be persisted and
/// surfaced through `status`.
pub fn run_job_traced(
    spec: &JobSpec,
    linger: Duration,
    token: Option<&CancellationToken>,
) -> JobRun {
    let mut rng = Xoshiro256StarStar::seed_from_u64(spec.seed);
    let n = spec.n.max(1);
    let instance = match spec.dist {
        DistSpec::Uniform(k) => {
            Instance::from_distribution(&AnyDistribution::uniform(k.max(1)), n, &mut rng)
        }
        DistSpec::Geometric(p) => {
            Instance::from_distribution(&AnyDistribution::geometric(p), n, &mut rng)
        }
        DistSpec::Poisson(lambda) => {
            Instance::from_distribution(&AnyDistribution::poisson(lambda), n, &mut rng)
        }
        DistSpec::Zeta(s) => Instance::from_distribution(&AnyDistribution::zeta(s), n, &mut rng),
        DistSpec::Balanced(k) => Instance::balanced(n, k.clamp(1, n), &mut rng),
    };
    let k = instance.ground_truth().num_classes().max(1);
    let oracle = InstanceOracle::new(&instance);
    let untraced = |run: EcsRun| JobRun {
        run,
        calibration: None,
    };
    match (spec.backend, token) {
        (BackendSpec::Coalesced(wave), Some(token)) => untraced(execute(
            spec,
            k,
            &CancellableOracle::new(
                BatchingOracle::with_linger(oracle, wave, linger),
                token.clone(),
            ),
            ExecutionBackend::Sequential,
        )),
        (BackendSpec::Coalesced(wave), None) => untraced(execute(
            spec,
            k,
            &BatchingOracle::with_linger(oracle, wave, linger),
            ExecutionBackend::Sequential,
        )),
        (BackendSpec::Auto, token) => {
            // One fresh calibration handle per job: the recorded trace is the
            // job's own schedule, not a process-wide aggregate.
            let backend = ExecutionBackend::auto();
            let run = match token {
                Some(token) => execute(
                    spec,
                    k,
                    &CancellableOracle::new(oracle, token.clone()),
                    backend,
                ),
                None => execute(spec, k, &oracle, backend),
            };
            JobRun {
                run,
                calibration: backend.calibration().map(|handle| handle.finish()),
            }
        }
        (backend, Some(token)) => untraced(execute(
            spec,
            k,
            &CancellableOracle::new(oracle, token.clone()),
            plain_backend(backend),
        )),
        (backend, None) => untraced(execute(spec, k, &oracle, plain_backend(backend))),
    }
}

fn plain_backend(spec: BackendSpec) -> ExecutionBackend {
    match spec {
        BackendSpec::Seq => ExecutionBackend::Sequential,
        BackendSpec::Threaded(n) => ExecutionBackend::from_threads(n.max(1)),
        BackendSpec::Batched(w) => ExecutionBackend::batched(w),
        BackendSpec::Coalesced(_) | BackendSpec::Auto => {
            unreachable!("coalesced and auto are handled by the caller")
        }
    }
}

fn execute<O: EquivalenceOracle>(
    spec: &JobSpec,
    k: usize,
    oracle: &O,
    backend: ExecutionBackend,
) -> EcsRun {
    match spec.algo {
        AlgoSpec::Naive => NaiveAllPairs::new().sort_with_backend(oracle, backend),
        AlgoSpec::RoundRobin => RoundRobin::new().sort_with_backend(oracle, backend),
        AlgoSpec::RepresentativeScan => {
            RepresentativeScan::new().sort_with_backend(oracle, backend)
        }
        AlgoSpec::ErMerge => ErMergeSort::new().sort_with_backend(oracle, backend),
        AlgoSpec::ErConstant => {
            ErConstantRound::adaptive(spec.seed).sort_with_backend(oracle, backend)
        }
        AlgoSpec::CrCompound => CrCompoundMerge::new(k).sort_with_backend(oracle, backend),
    }
}

/// Renders a completed run as its canonical `result` line. Both the daemon
/// and any serial reference must go through this function — byte-for-byte
/// result comparison relies on it.
pub fn render_result(spec: &JobSpec, run: &EcsRun) -> String {
    let labels: Vec<String> = run.partition.labels().iter().map(u32::to_string).collect();
    format!(
        "result id={} algo={} dist={} n={} seed={} classes={} comparisons={} rounds={} labels={}",
        spec.id,
        spec.algo,
        spec.dist,
        spec.n,
        spec.seed,
        run.partition.num_classes(),
        run.metrics.comparisons(),
        run.metrics.rounds(),
        labels.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: &str) -> JobSpec {
        JobSpec {
            id: id.to_string(),
            tenant: "t0".to_string(),
            weight: 2,
            dist: DistSpec::Uniform(5),
            n: 40,
            seed: 11,
            algo: AlgoSpec::ErMerge,
            backend: BackendSpec::Seq,
        }
    }

    #[test]
    fn submit_round_trips_through_parse_and_render() {
        let request = Request::Submit(spec("j3"));
        let again = Request::parse(&request.render()).expect("rendered lines must parse");
        assert_eq!(request, again);
    }

    #[test]
    fn submit_defaults_tenant_weight_and_backend() {
        let parsed = Request::parse("submit id=a dist=zeta:2.5 n=10 seed=3 algo=naive").unwrap();
        let Request::Submit(spec) = parsed else {
            panic!("expected a submit");
        };
        assert_eq!(spec.tenant, "default");
        assert_eq!(spec.weight, 1);
        assert_eq!(
            spec.backend,
            BackendSpec::Auto,
            "the daemon default is the self-tuning backend"
        );
        assert_eq!(spec.dist, DistSpec::Zeta(2.5));
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for line in [
            "",
            "frobnicate",
            "submit id=a",
            "submit id=a dist=uniform n=5 seed=1 algo=naive",
            "submit id=a dist=uniform:4 n=5 seed=1 algo=quantum",
            "submit id=a dist=uniform:4 n=5 seed=1 algo=naive backend=warp:9",
            "cancel",
        ] {
            assert!(Request::parse(line).is_err(), "`{line}` must not parse");
        }
    }

    #[test]
    fn session_requests_round_trip() {
        for request in [
            Request::Hello,
            Request::Resume {
                token: "sess-00000007".into(),
                last_seq: 42,
            },
            Request::Ack { seq: 9 },
        ] {
            let again = Request::parse(&request.render()).expect("rendered lines must parse");
            assert_eq!(request, again);
        }
        assert!(
            Request::parse("resume token=t").is_err(),
            "last_seq required"
        );
        assert!(
            Request::parse("resume last_seq=3").is_err(),
            "token required"
        );
        assert!(Request::parse("ack").is_err(), "seq required");
    }

    #[test]
    fn responses_round_trip() {
        let lines = [
            Response::Hello {
                token: "sess-00000001".into(),
            },
            Response::Accepted { id: "a".into() },
            Response::Rejected {
                id: "a".into(),
                reason: "queue_full:2".into(),
            },
            Response::Cancelled { id: "a".into() },
            Response::Cancelling { id: "a".into() },
            Response::Drained,
            Response::Bye,
            Response::Status {
                queued: 3,
                inflight: 1,
                completed: 9,
                draining: true,
                tenants: Vec::new(),
                latency: Vec::new(),
                rate_mjps: None,
                tuning: Vec::new(),
            },
            Response::Status {
                queued: 2,
                inflight: 1,
                completed: 7,
                draining: false,
                tenants: vec![
                    TenantCounters {
                        name: "alpha".into(),
                        queued: 2,
                        completed: 4,
                        rejected: 3,
                        max_queued: Some(8),
                        max_inflight: Some(2),
                    },
                    TenantCounters::basic("beta", 0, 3),
                ],
                latency: vec![TenantLatency {
                    name: "alpha".into(),
                    buckets: vec![(0, 0, 1), (513, 1024, 3)],
                }],
                rate_mjps: Some(1500),
                tuning: vec![
                    (
                        "alpha".into(),
                        TuningDecision {
                            threads: 2,
                            threshold: 4096,
                            wave: None,
                        },
                    ),
                    (
                        "beta".into(),
                        TuningDecision {
                            threads: 1,
                            threshold: 64,
                            wave: Some(256),
                        },
                    ),
                ],
            },
            Response::Error {
                message: "queue is draining".into(),
            },
        ];
        for response in lines {
            let again = Response::parse(&response.render()).unwrap();
            assert_eq!(response, again);
        }
    }

    #[test]
    fn status_lines_without_tenant_counters_still_parse() {
        // Wire compatibility with daemons predating the per-tenant field.
        let old = "status queued=3 inflight=1 completed=9 draining=false";
        let parsed = Response::parse(old).unwrap();
        assert_eq!(
            parsed,
            Response::Status {
                queued: 3,
                inflight: 1,
                completed: 9,
                draining: false,
                tenants: Vec::new(),
                latency: Vec::new(),
                rate_mjps: None,
                tuning: Vec::new(),
            }
        );
        // A PR 8 daemon's line (tenants, but no self-tuning fields) and a
        // line with malformed self-tuning entries both still parse, with the
        // unusable parts degraded to "not reported".
        let pr8 = "status queued=0 inflight=0 completed=2 draining=false tenants=a:0:2";
        let Response::Status {
            tenants,
            latency,
            rate_mjps,
            tuning,
            ..
        } = Response::parse(pr8).unwrap()
        else {
            panic!("status must parse");
        };
        assert_eq!(
            tenants,
            vec![TenantCounters::basic("a", 0, 2)],
            "a pre-quota entry parses with no rejections and unlimited quotas"
        );
        assert_eq!((latency, rate_mjps, tuning), (Vec::new(), None, Vec::new()));
        let mangled = "status queued=0 inflight=0 completed=2 draining=false \
                       latency_us=a:junk;1.2.3 rate_mjps=fast tuning=a:1:2";
        let Response::Status {
            latency,
            rate_mjps,
            tuning,
            ..
        } = Response::parse(mangled).unwrap()
        else {
            panic!("status must parse");
        };
        assert_eq!(latency[0].buckets, vec![(1, 2, 3)], "bad triples skipped");
        assert_eq!(rate_mjps, None);
        assert!(tuning.is_empty(), "a truncated decision is skipped");
    }

    #[test]
    fn tenant_names_are_flattened_on_the_wire() {
        let status = Response::Status {
            queued: 1,
            inflight: 0,
            completed: 2,
            draining: false,
            tenants: vec![TenantCounters::basic("a:b,c=d", 1, 2)],
            latency: Vec::new(),
            rate_mjps: None,
            tuning: Vec::new(),
        };
        let line = status.render();
        assert!(line.ends_with("tenants=a_b_c_d:1:2:0:-:-"), "{line}");
        let Response::Status { tenants, .. } = Response::parse(&line).unwrap() else {
            panic!("status must parse");
        };
        assert_eq!(tenants[0].name, "a_b_c_d");
    }

    #[test]
    fn malformed_tenant_entries_are_skipped_not_fatal() {
        // A mangled `tenants=` field (truncated entry, non-numeric counter,
        // garbage quota) must degrade to "those entries not reported" while
        // the rest of the line — including well-formed neighbours of both
        // vintages — still parses.
        let mixed = "status queued=1 inflight=0 completed=9 draining=false \
                     tenants=old:1:2,chopped,bad:x:y,new:0:3:4:8:-,q:0:1:0:junk:2,trail:2";
        let Response::Status {
            queued, tenants, ..
        } = Response::parse(mixed).unwrap()
        else {
            panic!("a status line with mangled tenant entries must still parse");
        };
        assert_eq!(queued, 1);
        assert_eq!(
            tenants,
            vec![
                TenantCounters::basic("old", 1, 2),
                TenantCounters {
                    name: "new".into(),
                    queued: 0,
                    completed: 3,
                    rejected: 4,
                    max_queued: Some(8),
                    max_inflight: None,
                },
            ],
            "only the well-formed entries survive"
        );
    }

    #[test]
    fn seq_prefixes_split_off_and_absent_prefixes_pass_through() {
        let (seq, payload) = split_seq("seq=17 result id=a classes=2");
        assert_eq!(seq, Some(17));
        assert_eq!(payload, "result id=a classes=2");
        let (seq, payload) = split_seq("result id=a seq=5");
        assert_eq!(seq, None, "only a LEADING seq token is a prefix");
        assert_eq!(payload, "result id=a seq=5");
        let (seq, payload) = split_seq("seq=abc result id=a");
        assert_eq!(seq, None, "unparsable seq is left for the parser to flag");
        assert_eq!(payload, "seq=abc result id=a");
        // The round trip a resumable client performs on every line.
        let line = format!("seq=3 {}", Response::Accepted { id: "j".into() }.render());
        let (seq, payload) = split_seq(&line);
        assert_eq!(seq, Some(3));
        assert_eq!(
            Response::parse(payload).unwrap(),
            Response::Accepted { id: "j".into() }
        );
    }

    #[test]
    fn every_backend_spec_is_observationally_identical() {
        // The core model invariant, restated at the protocol layer: one spec,
        // every backend, one result line.
        let mut base = spec("same");
        base.backend = BackendSpec::Seq;
        let reference = render_result(&base, &run_job(&base, Duration::ZERO, None));
        for backend in [
            BackendSpec::Threaded(2),
            BackendSpec::Batched(16),
            BackendSpec::Coalesced(4),
            BackendSpec::Auto,
        ] {
            let mut other = base.clone();
            other.backend = backend;
            let line = render_result(&base, &run_job(&other, Duration::ZERO, None));
            assert_eq!(line, reference, "{backend} diverged from seq");
        }
    }

    #[test]
    fn auto_jobs_carry_a_replayable_calibration_trace() {
        let mut job = spec("auto");
        job.backend = BackendSpec::Auto;
        let traced = run_job_traced(&job, Duration::ZERO, None);
        let log = traced.calibration.expect("auto jobs record a trace");
        assert_eq!(
            CalibrationLog::parse_line(&log.render_line()),
            Some(log.clone()),
            "the persisted trace line must round-trip"
        );
        // Fixed backends carry no trace, and the auto result is the seq one.
        let mut fixed = job.clone();
        fixed.backend = BackendSpec::Seq;
        let reference = run_job_traced(&fixed, Duration::ZERO, None);
        assert!(reference.calibration.is_none());
        assert_eq!(
            render_result(&job, &traced.run),
            render_result(&fixed, &reference.run)
        );
    }

    #[test]
    fn an_untripped_token_never_changes_the_result() {
        let spec = spec("tok");
        let token = CancellationToken::new();
        let with = render_result(&spec, &run_job(&spec, Duration::ZERO, Some(&token)));
        let without = render_result(&spec, &run_job(&spec, Duration::ZERO, None));
        assert_eq!(with, without);
    }

    #[test]
    fn result_lines_verify_against_the_ground_truth() {
        for algo in AlgoSpec::ALL {
            let mut job = spec(algo.name());
            job.algo = algo;
            let run = run_job(&job, Duration::ZERO, None);
            let mut rng = Xoshiro256StarStar::seed_from_u64(job.seed);
            let instance =
                Instance::from_distribution(&AnyDistribution::uniform(5), job.n, &mut rng);
            assert!(
                instance.verify(&run.partition),
                "{algo} misclassified its instance"
            );
        }
    }
}
